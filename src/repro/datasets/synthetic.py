"""The paper's synthetic dataset (Section 4, "Synthetic").

"The data generator is based conceptually on a tree of height k where
each node has j sub nodes.  We generate a subtree of L nodes.  First we
select the root node, then we randomly select the next node x from the
tree, under the condition that x has not been selected, and x is a child
node of a selected node.  We repeat this process N times to generate N
data sequences of length L.  Random queries can be generated in the same
way.  Since no semantic meaning is associated with this synthetic
dataset, we collect statistics during data generation for dynamic
labeling purposes."

Conceptual-tree nodes are labelled by their child position (``e0`` ..
``e{j-1}``), so different subtrees share labels the way real markup
does.  The generator never materialises the conceptual tree (it has
``j**k`` nodes); documents grow by expanding a random frontier slot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.doc.model import XmlNode
from repro.doc.stats import CorpusStats
from repro.errors import DatasetError
from repro.query.ast import QueryNode

ROOT_LABEL = "r"

__all__ = ["SyntheticConfig", "SyntheticGenerator", "ROOT_LABEL"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the conceptual tree and of the generated subtrees.

    Defaults are the paper's: ``k = 10``, ``j = 8``; Figure 10(a) uses
    ``doc_size = 30``, Figure 10(b) ``doc_size = 60``, Figure 11(b)
    ``doc_size = 32``.
    """

    height: int = 10
    fanout: int = 8
    doc_size: int = 30
    seed: int = 0

    def __post_init__(self) -> None:
        if self.height < 1:
            raise DatasetError(f"height must be >= 1, got {self.height}")
        if self.fanout < 1:
            raise DatasetError(f"fanout must be >= 1, got {self.fanout}")
        if self.doc_size < 1:
            raise DatasetError(f"doc_size must be >= 1, got {self.doc_size}")
        max_nodes = self._capacity(self.height, self.fanout)
        if self.doc_size > max_nodes:
            raise DatasetError(
                f"doc_size {self.doc_size} exceeds the conceptual tree "
                f"capacity {max_nodes} for height {self.height}"
            )

    @staticmethod
    def _capacity(height: int, fanout: int) -> int:
        total = 0
        layer = 1
        for _ in range(height):
            total += layer
            if total > 10**9:
                return 10**9  # effectively unbounded
            layer *= fanout
        return total


class SyntheticGenerator:
    """Generates random-subtree documents and queries, collecting stats."""

    def __init__(self, config: Optional[SyntheticConfig] = None) -> None:
        self.config = config if config is not None else SyntheticConfig()
        self._rng = random.Random(self.config.seed)
        self.stats = CorpusStats()

    def document(self, size: Optional[int] = None) -> XmlNode:
        """One random subtree of the conceptual tree, as an XML document."""
        return self._random_subtree(size if size is not None else self.config.doc_size)

    def documents(self, count: int) -> Iterator[XmlNode]:
        """``count`` documents; statistics accumulate in :attr:`stats`."""
        from repro.doc.model import XmlDocument

        for _ in range(count):
            doc = self.document()
            self.stats.observe(XmlDocument(doc))
            yield doc

    def query(self, size: int) -> QueryNode:
        """A random structural query: a subtree converted to a query tree."""
        subtree = self._random_subtree(size)
        return self._to_query(subtree)

    def queries(self, count: int, size: int) -> list[QueryNode]:
        return [self.query(size) for _ in range(count)]

    def query_from_document(self, document: XmlNode, size: int) -> QueryNode:
        """A random query guaranteed to match ``document``.

        Samples a random connected subtree (containing the root) of the
        document and converts it to a query tree — the workload the
        Figure 10 experiments need, where longer queries must still have
        answers.
        """
        qroot = QueryNode(document.label)
        frontier: list[tuple[QueryNode, XmlNode]] = [
            (qroot, child) for child in document.children
        ]
        remaining = size - 1
        while remaining > 0 and frontier:
            slot = self._rng.randrange(len(frontier))
            qparent, dnode = frontier.pop(slot)
            qchild = qparent.add(QueryNode(dnode.label))
            frontier.extend((qchild, grandchild) for grandchild in dnode.children)
            remaining -= 1
        return qroot

    def matching_queries(
        self, documents: list[XmlNode], count: int, size: int
    ) -> list[QueryNode]:
        """``count`` queries, each derived from a random document."""
        return [
            self.query_from_document(self._rng.choice(documents), size)
            for _ in range(count)
        ]

    def nested_queries_from_document(
        self, document: XmlNode, sizes: list[int]
    ) -> dict[int, QueryNode]:
        """Queries of several sizes where each smaller one is a prefix of
        the larger (one random growth order, truncated per size) — the
        Figure 10(a) workload, where query *length* is the only variable.
        """
        max_size = max(sizes)
        attachments: list[tuple[int, str]] = []  # (parent node index, label)
        frontier: list[tuple[int, XmlNode]] = [
            (0, child) for child in document.children
        ]
        while frontier and len(attachments) < max_size - 1:
            slot = self._rng.randrange(len(frontier))
            parent_idx, dnode = frontier.pop(slot)
            attachments.append((parent_idx, dnode.label))
            node_idx = len(attachments)  # root is 0; k-th attachment is k
            frontier.extend((node_idx, grandchild) for grandchild in dnode.children)
        out: dict[int, QueryNode] = {}
        for size in sizes:
            nodes = [QueryNode(document.label)]
            for parent_idx, label in attachments[: size - 1]:
                nodes.append(nodes[parent_idx].add(QueryNode(label)))
            out[size] = nodes[0]
        return out

    # -- internals -----------------------------------------------------------

    def _random_subtree(self, size: int) -> XmlNode:
        cfg = self.config
        root = XmlNode(ROOT_LABEL)
        # frontier entries: (parent_node, child_position, depth_of_child)
        frontier: list[tuple[XmlNode, int, int]] = []
        if cfg.height > 1:
            frontier.extend((root, pos, 1) for pos in range(cfg.fanout))
        for _ in range(size - 1):
            if not frontier:
                break
            slot = self._rng.randrange(len(frontier))
            parent, position, depth = frontier.pop(slot)
            child = parent.element(f"e{position}")
            if depth + 1 < cfg.height:
                frontier.extend((child, pos, depth + 1) for pos in range(cfg.fanout))
        return root

    def _to_query(self, node: XmlNode) -> QueryNode:
        qnode = QueryNode(node.label)
        for child in node.children:
            qnode.add(self._to_query(child))
        return qnode
