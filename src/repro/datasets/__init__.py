"""Dataset generators: synthetic (Section 4), DBLP-like, XMark-like."""

from repro.datasets.dblp import (
    MAIER_KEY,
    RECORD_LABELS as DBLP_RECORD_LABELS,
    DblpConfig,
    DblpGenerator,
    dblp_schema,
)
from repro.datasets.synthetic import ROOT_LABEL, SyntheticConfig, SyntheticGenerator
from repro.datasets.xmark import (
    RECORD_LABELS as XMARK_RECORD_LABELS,
    TARGET_DATE,
    XmarkConfig,
    XmarkGenerator,
    xmark_schema,
)

__all__ = [
    "SyntheticConfig",
    "SyntheticGenerator",
    "ROOT_LABEL",
    "DblpConfig",
    "DblpGenerator",
    "dblp_schema",
    "MAIER_KEY",
    "DBLP_RECORD_LABELS",
    "XmarkConfig",
    "XmarkGenerator",
    "xmark_schema",
    "TARGET_DATE",
    "XMARK_RECORD_LABELS",
]
