"""XMark-like auction-site corpus generator.

The paper indexes an XMark (scale 1.0) dataset by breaking its single
huge record "into a set of sub structures, including item (objects for
sale), person (buyers and sellers), open auction, closed auction, etc"
and indexing one structure-encoded sequence per instance.  This generator
produces those substructure records directly, each rooted at ``site`` so
Table 3's ``/site//...`` queries bind naturally:

* ``site/regions/<continent>/item`` — location, quantity, name, payment,
  and mail correspondence with dates;
* ``site/people/person`` — name, email, address (street, city, country);
* ``site/open_auctions/open_auction`` — initial price, bidders, itemref;
* ``site/closed_auctions/closed_auction`` — buyer/seller person refs,
  price, date, quantity, annotation.

The Table 3 query targets (location ``'US'``, date ``'12/15/1999'``,
city ``'Pocatello'``, person ``'person1'``) are planted at controlled
rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.doc.model import XmlNode
from repro.doc.schema import ChildSpec, Occurs, Schema
from repro.errors import DatasetError

__all__ = [
    "XmarkConfig",
    "XmarkGenerator",
    "xmark_schema",
    "write_corpus",
    "TARGET_DATE",
    "RECORD_LABELS",
]

TARGET_DATE = "12/15/1999"

# every substructure record is rooted at `site`; splitting a serialised
# corpus on it recovers the records exactly (one <site> wrapper each)
RECORD_LABELS = ("site",)

_CONTINENTS = ["africa", "asia", "australia", "europe", "namerica", "samerica"]
_COUNTRIES = ["US", "Germany", "Korea", "Japan", "France", "Brazil", "Canada"]
_CITIES = [
    "Pocatello", "Seattle", "Busan", "Berlin", "Lyon", "Osaka", "Toronto",
    "Denver", "Austin", "Recife",
]
_ITEM_WORDS = [
    "vintage", "rare", "gold", "silver", "antique", "mint", "boxed",
    "camera", "watch", "guitar", "lamp", "atlas", "stamp", "coin",
]
_PAYMENTS = ["Cash", "Check", "Creditcard", "Money-order"]


def xmark_schema() -> Schema:
    """Schema for sibling order and clue-based labelling."""
    schema = Schema("site")
    schema.element(
        "site",
        [
            ChildSpec("regions", Occurs.OPT),
            ChildSpec("people", Occurs.OPT),
            ChildSpec("open_auctions", Occurs.OPT),
            ChildSpec("closed_auctions", Occurs.OPT),
        ],
    )
    schema.element("regions", [ChildSpec(c, Occurs.OPT) for c in _CONTINENTS])
    for continent in _CONTINENTS:
        schema.element(continent, [ChildSpec("item", Occurs.MANY)])
    schema.element(
        "item",
        [
            ChildSpec("id", is_attribute=True),
            ChildSpec("location"),
            ChildSpec("quantity"),
            ChildSpec("name"),
            ChildSpec("payment", Occurs.OPT),
            ChildSpec("mail", Occurs.MANY, mean_repeats=2.0),
        ],
    )
    schema.element(
        "mail", [ChildSpec("from"), ChildSpec("to"), ChildSpec("date")]
    )
    schema.element("people", [ChildSpec("person", Occurs.MANY)])
    # `person` is both the people substructure element and the buyer/seller
    # reference attribute (as in real XMark); has_text covers the latter.
    schema.element(
        "person",
        [
            ChildSpec("id", is_attribute=True),
            ChildSpec("name"),
            ChildSpec("emailaddress", Occurs.OPT),
            ChildSpec("phone", Occurs.OPT),
            ChildSpec("address", Occurs.OPT),
        ],
        has_text=True,
        value_cardinality=25_000,
    )
    schema.element(
        "address", [ChildSpec("street"), ChildSpec("city"), ChildSpec("country")]
    )
    schema.element("open_auctions", [ChildSpec("open_auction", Occurs.MANY)])
    schema.element(
        "open_auction",
        [
            ChildSpec("id", is_attribute=True),
            ChildSpec("initial"),
            ChildSpec("bidder", Occurs.MANY, mean_repeats=2.5),
            ChildSpec("current"),
            ChildSpec("itemref"),
        ],
    )
    schema.element("bidder", [ChildSpec("date"), ChildSpec("increase")])
    schema.element("closed_auctions", [ChildSpec("closed_auction", Occurs.MANY)])
    schema.element(
        "closed_auction",
        [
            ChildSpec("seller"),
            ChildSpec("buyer"),
            ChildSpec("itemref"),
            ChildSpec("price"),
            ChildSpec("date"),
            ChildSpec("quantity"),
            ChildSpec("annotation", Occurs.OPT),
        ],
    )
    schema.element("seller", [ChildSpec("person", is_attribute=True)])
    schema.element("buyer", [ChildSpec("person", is_attribute=True)])
    schema.element("annotation", [ChildSpec("author"), ChildSpec("description", Occurs.OPT)])
    for leaf, cardinality in [
        ("location", len(_COUNTRIES)),
        ("quantity", 10),
        ("name", 50_000),
        ("payment", len(_PAYMENTS)),
        ("from", 10_000),
        ("to", 10_000),
        ("date", 1_500),
        ("emailaddress", 10_000),
        ("phone", 10_000),
        ("street", 10_000),
        ("city", len(_CITIES)),
        ("country", len(_COUNTRIES)),
        ("initial", 1_000),
        ("current", 1_000),
        ("increase", 100),
        ("itemref", 50_000),
        ("price", 1_000),
        ("author", 10_000),
        ("description", 50_000),
        ("id", 1_000_000),
    ]:
        schema.element(leaf, has_text=True, value_cardinality=cardinality)
    return schema


def write_corpus(
    path,
    count: int,
    config: Optional["XmarkConfig"] = None,
    kind: Optional[str] = None,
) -> int:
    """Module-level convenience for :meth:`XmarkGenerator.write_corpus`."""
    return XmarkGenerator(config).write_corpus(path, count, kind=kind)


@dataclass(frozen=True)
class XmarkConfig:
    """Mix and selectivity parameters (rates of the Table 3 targets)."""

    seed: int = 0
    us_rate: float = 0.25
    target_date_rate: float = 0.02
    pocatello_rate: float = 0.05
    person1_rate: float = 0.01

    def __post_init__(self) -> None:
        for name in ("us_rate", "target_date_rate", "pocatello_rate", "person1_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise DatasetError(f"{name} must be in [0, 1], got {rate}")


class XmarkGenerator:
    """Generates substructure records in the paper's proportions."""

    KINDS = ["item", "person", "open_auction", "closed_auction"]
    KIND_WEIGHTS = [40, 30, 15, 15]

    def __init__(self, config: Optional[XmarkConfig] = None) -> None:
        self.config = config if config is not None else XmarkConfig()
        self._rng = random.Random(self.config.seed)
        self.schema = xmark_schema()

    def records(self, count: int, kind: Optional[str] = None) -> Iterator[XmlNode]:
        """``count`` substructure records (all kinds mixed, or one kind)."""
        for i in range(count):
            chosen = kind or self._rng.choices(self.KINDS, self.KIND_WEIGHTS, k=1)[0]
            yield self.record(chosen, i)

    def write_corpus(self, path, count: int, kind: Optional[str] = None) -> int:
        """Stream a ``count``-record XMark corpus to ``path``, one XML file.

        One `<site>` element per substructure record under a `<corpus>`
        wrapper, written record-by-record (O(record) memory at any
        corpus size).  Ingest it back with ``repro ingest PATH --split
        site --no-spine`` so the records root at ``site`` again and the
        Table 3 ``/site//...`` queries bind exactly as over the
        generator's records.
        """
        written = 0
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('<?xml version="1.0" encoding="UTF-8"?>\n')
            fh.write("<corpus>\n")
            for record in self.records(count, kind=kind):
                fh.write(record.to_xml())
                fh.write("\n")
                written += 1
            fh.write("</corpus>\n")
        return written

    def record(self, kind: str, index: int) -> XmlNode:
        if kind == "item":
            return self._item(index)
        if kind == "person":
            return self._person(index)
        if kind == "open_auction":
            return self._open_auction(index)
        if kind == "closed_auction":
            return self._closed_auction(index)
        raise DatasetError(f"unknown substructure kind {kind!r}")

    # -- substructures -----------------------------------------------------

    def _site(self, *chain: str) -> tuple[XmlNode, XmlNode]:
        root = XmlNode("site")
        node = root
        for label in chain:
            node = node.element(label)
        return root, node

    def _date(self) -> str:
        rng = self._rng
        if rng.random() < self.config.target_date_rate:
            return TARGET_DATE
        return f"{rng.randint(1, 12):02d}/{rng.randint(1, 28):02d}/{rng.randint(1998, 2001)}"

    def _person_ref(self) -> str:
        rng = self._rng
        if rng.random() < self.config.person1_rate:
            return "person1"
        return f"person{rng.randint(2, 20000)}"

    def _item(self, index: int) -> XmlNode:
        rng = self._rng
        root, parent = self._site("regions", rng.choice(_CONTINENTS))
        item = parent.element("item", id=f"item{index}")
        location = (
            "US" if rng.random() < self.config.us_rate else rng.choice(_COUNTRIES[1:])
        )
        item.element("location", text=location)
        item.element("quantity", text=str(rng.randint(1, 10)))
        item.element("name", text=" ".join(rng.choices(_ITEM_WORDS, k=3)))
        if rng.random() < 0.5:
            item.element("payment", text=rng.choice(_PAYMENTS))
        for _ in range(rng.choices([0, 1, 2, 3], weights=[30, 40, 20, 10], k=1)[0]):
            mail = item.element("mail")
            mail.element("from", text=f"user{rng.randint(1, 9999)}")
            mail.element("to", text=f"user{rng.randint(1, 9999)}")
            mail.element("date", text=self._date())
        return root

    def _person(self, index: int) -> XmlNode:
        rng = self._rng
        root, parent = self._site("people")
        person = parent.element("person", id=f"person{index}")
        person.element("name", text=f"user {rng.randint(1, 99999)}")
        if rng.random() < 0.7:
            person.element("emailaddress", text=f"mailto:u{rng.randint(1, 99999)}@x.net")
        if rng.random() < 0.4:
            person.element("phone", text=f"+{rng.randint(1, 99)} {rng.randint(1000000, 9999999)}")
        if rng.random() < 0.8:
            address = person.element("address")
            address.element("street", text=f"{rng.randint(1, 99)} main st")
            city = (
                "Pocatello"
                if rng.random() < self.config.pocatello_rate
                else rng.choice(_CITIES[1:])
            )
            address.element("city", text=city)
            address.element("country", text=rng.choice(_COUNTRIES))
        return root

    def _open_auction(self, index: int) -> XmlNode:
        rng = self._rng
        root, parent = self._site("open_auctions")
        auction = parent.element("open_auction", id=f"open_auction{index}")
        auction.element("initial", text=f"{rng.randint(1, 500)}.00")
        for _ in range(rng.choices([0, 1, 2, 3], weights=[20, 35, 30, 15], k=1)[0]):
            bidder = auction.element("bidder")
            bidder.element("date", text=self._date())
            bidder.element("increase", text=f"{rng.randint(1, 50)}.00")
        auction.element("current", text=f"{rng.randint(1, 999)}.00")
        auction.element("itemref", text=f"item{rng.randint(0, 99999)}")
        return root

    def _closed_auction(self, index: int) -> XmlNode:
        rng = self._rng
        root, parent = self._site("closed_auctions")
        auction = parent.element("closed_auction")
        auction.element("seller", person=self._person_ref())
        auction.element("buyer", person=self._person_ref())
        auction.element("itemref", text=f"item{rng.randint(0, 99999)}")
        auction.element("price", text=f"{rng.randint(1, 999)}.00")
        auction.element("date", text=self._date())
        auction.element("quantity", text=str(rng.randint(1, 5)))
        if rng.random() < 0.5:
            annotation = auction.element("annotation")
            annotation.element("author", text=self._person_ref())
            if rng.random() < 0.5:
                annotation.element("description", text="happy with the deal")
        return root
