"""DBLP-like bibliography corpus generator.

The paper benchmarks against the real DBLP dump (289,627 records, maximum
depth 6, average structure-encoded sequence length ≈ 31).  With no network
access we generate a schema-faithful corpus instead: the same record types
(``article``, ``inproceedings``, ``book``, ``incollection``, ``phdthesis``),
the same fields, Zipf-ish value distributions, and *planted targets* so
Table 3's DBLP queries (author ``'David'``, book key
``'books/bc/MaierW88'``) have non-empty, controlled answers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.doc.model import XmlNode
from repro.doc.schema import ChildSpec, Occurs, Schema
from repro.errors import DatasetError

__all__ = [
    "DblpConfig",
    "DblpGenerator",
    "dblp_schema",
    "write_corpus",
    "MAIER_KEY",
    "RECORD_LABELS",
]

MAIER_KEY = "books/bc/MaierW88"

_RECORD_TYPES = ["article", "inproceedings", "book", "incollection", "phdthesis"]
# record roots of a serialised corpus — pass to `repro ingest --split`
# (or iter_stream_records) to get one indexed record per publication
RECORD_LABELS = tuple(_RECORD_TYPES)
_RECORD_WEIGHTS = [40, 35, 10, 10, 5]

_FIRST_NAMES = [
    "David", "Michael", "Wei", "Haixun", "Sanghyun", "Philip", "Jennifer",
    "Rakesh", "Hector", "Serge", "Dan", "Divesh", "Mary", "Laura", "Jim",
]
_LAST_NAMES = [
    "Smith", "Wang", "Park", "Yu", "Fan", "Ullman", "Widom", "Agrawal",
    "Garcia-Molina", "Abiteboul", "Suciu", "Srivastava", "Maier", "Chen",
]
_TITLE_WORDS = [
    "indexing", "querying", "xml", "semistructured", "data", "dynamic",
    "structures", "trees", "sequences", "databases", "efficient", "adaptive",
    "mining", "streams", "optimization", "views", "joins", "paths", "graphs",
    "storage",
]
_JOURNALS = ["TODS", "VLDBJ", "TKDE", "SIGMOD-Record", "Computing-Surveys"]
_VENUES = ["SIGMOD", "VLDB", "ICDE", "EDBT", "PODS", "WebDB", "CIKM"]
_PUBLISHERS = ["Morgan-Kaufmann", "Springer", "ACM-Press", "Prentice-Hall"]
_SCHOOLS = ["Stanford", "Wisconsin", "POSTECH", "Columbia", "Maryland"]


def dblp_schema() -> Schema:
    """Schema used for sibling order and for clue-based labelling."""
    schema = Schema("dblp")
    authors = ChildSpec("author", Occurs.PLUS, mean_repeats=2.0)
    common = [ChildSpec("key", is_attribute=True), authors, ChildSpec("title")]
    schema.element(
        "article",
        common + [ChildSpec("journal"), ChildSpec("year"), ChildSpec("pages", Occurs.OPT)],
    )
    schema.element(
        "inproceedings",
        common + [ChildSpec("booktitle"), ChildSpec("year"), ChildSpec("pages", Occurs.OPT)],
    )
    schema.element(
        "book",
        common + [ChildSpec("publisher"), ChildSpec("year"), ChildSpec("isbn", Occurs.OPT)],
    )
    schema.element(
        "incollection",
        common + [ChildSpec("booktitle"), ChildSpec("year"), ChildSpec("publisher", Occurs.OPT)],
    )
    schema.element(
        "phdthesis", common + [ChildSpec("school"), ChildSpec("year")]
    )
    for leaf, cardinality in [
        ("author", 400),
        ("title", 100_000),
        ("journal", 16),
        ("booktitle", 16),
        ("publisher", 8),
        ("school", 8),
        ("year", 40),
        ("pages", 2_000),
        ("isbn", 10_000),
        ("key", 1_000_000),
    ]:
        schema.element(leaf, has_text=True, value_cardinality=cardinality)
    return schema


def write_corpus(path, count: int, config: Optional["DblpConfig"] = None) -> int:
    """Module-level convenience for :meth:`DblpGenerator.write_corpus`."""
    return DblpGenerator(config).write_corpus(path, count)


@dataclass(frozen=True)
class DblpConfig:
    """Corpus shape parameters.

    ``david_rate`` controls the selectivity of Table 3's author queries;
    ``plant_targets`` guarantees the ``MAIER_KEY`` book exists.
    """

    seed: int = 0
    david_rate: float = 0.02
    plant_targets: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.david_rate <= 1.0:
            raise DatasetError("david_rate must be in [0, 1]")


class DblpGenerator:
    """Generates bibliography records (one record = one indexed document)."""

    def __init__(self, config: Optional[DblpConfig] = None) -> None:
        self.config = config if config is not None else DblpConfig()
        self._rng = random.Random(self.config.seed)
        self.schema = dblp_schema()
        # Zipf-ish weights over the title vocabulary
        self._title_weights = [1.0 / rank for rank in range(1, len(_TITLE_WORDS) + 1)]

    def records(self, count: int) -> Iterator[XmlNode]:
        """``count`` records; the planted Maier book is record 0."""
        start = 0
        if self.config.plant_targets and count > 0:
            yield self._maier_book()
            start = 1
        for i in range(start, count):
            yield self.record(i)

    def record(self, index: int) -> XmlNode:
        rng = self._rng
        rtype = rng.choices(_RECORD_TYPES, weights=_RECORD_WEIGHTS, k=1)[0]
        node = XmlNode(rtype, attributes={"key": f"{rtype}/x/{index}"})
        for _ in range(rng.choices([1, 2, 3], weights=[45, 40, 15], k=1)[0]):
            node.element("author", text=self._author())
        node.element("title", text=self._title())
        if rtype == "article":
            node.element("journal", text=rng.choice(_JOURNALS))
        elif rtype in ("inproceedings", "incollection"):
            node.element("booktitle", text=rng.choice(_VENUES))
        elif rtype == "book":
            node.element("publisher", text=rng.choice(_PUBLISHERS))
        elif rtype == "phdthesis":
            node.element("school", text=rng.choice(_SCHOOLS))
        node.element("year", text=str(rng.randint(1970, 2003)))
        if rtype != "phdthesis" and rng.random() < 0.6:
            lo = rng.randint(1, 800)
            node.element("pages", text=f"{lo}-{lo + rng.randint(2, 30)}")
        return node

    # -- value samplers -----------------------------------------------------

    def _author(self) -> str:
        rng = self._rng
        if rng.random() < self.config.david_rate:
            return "David"  # the Table 3 query target
        return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"

    def _title(self) -> str:
        rng = self._rng
        words = rng.choices(_TITLE_WORDS, weights=self._title_weights, k=rng.randint(3, 7))
        return " ".join(words)

    def write_corpus(self, path, count: int) -> int:
        """Stream a ``count``-record DBLP corpus to ``path`` as one XML file.

        Records are rendered and written one at a time — the corpus never
        exists in memory, so paper-size files (100MB+) cost O(record).
        The result round-trips through ``repro ingest PATH --split
        article,inproceedings,... --no-spine`` back into exactly the
        same records (``--no-spine`` drops the ``<dblp>`` wrapper).
        """
        written = 0
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('<?xml version="1.0" encoding="UTF-8"?>\n')
            fh.write("<dblp>\n")
            for record in self.records(count):
                fh.write(record.to_xml())
                fh.write("\n")
                written += 1
            fh.write("</dblp>\n")
        return written

    def _maier_book(self) -> XmlNode:
        node = XmlNode("book", attributes={"key": MAIER_KEY})
        node.element("author", text="David Maier")
        node.element("author", text="David")
        node.element("title", text="computing with logic")
        node.element("publisher", text="Morgan-Kaufmann")
        node.element("year", text="1988")
        return node
