"""Document → structure-encoded sequence transform (paper Section 2).

The transform expands a document tree (attributes and values become
nodes), enforces the paper's sibling order, and emits the preorder list of
``(symbol, prefix)`` items:

* sibling *elements/attributes* are ordered by the schema's linear order
  when a schema is given, else lexicographically by label;
* multiple occurrences of the same label keep document order (the paper
  orders them "arbitrarily" — document order makes the transform
  deterministic);
* value leaves sort before sibling elements, so a node's value
  immediately follows the node, as in paper Figure 4 where ``(N, PS)`` is
  followed by ``(v1, PSN)``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.doc.model import XmlDocument, XmlNode
from repro.doc.schema import Schema
from repro.sequence.encoding import Item, StructureEncodedSequence
from repro.sequence.vocabulary import ValueHasher

__all__ = ["SequenceEncoder"]


class SequenceEncoder:
    """Reusable document-to-sequence transformer.

    ``schema`` fixes the sibling order (optional); ``hasher`` is the
    paper's ``h()`` and defaults to unbucketed 64-bit FNV-1a.  Queries
    must be translated with the *same* encoder configuration
    (:class:`repro.query.translate.QueryTranslator` takes one).
    """

    def __init__(
        self,
        schema: Optional[Schema] = None,
        hasher: Optional[ValueHasher] = None,
    ) -> None:
        self.schema = schema
        self.hasher = hasher if hasher is not None else ValueHasher()

    def encode_document(self, document: XmlDocument) -> StructureEncodedSequence:
        """Encode a whole document (its root subtree)."""
        return self.encode_node(document.root)

    def encode_node(self, node: XmlNode) -> StructureEncodedSequence:
        """Encode the subtree rooted at ``node``."""
        items: list[Item] = []
        self._walk(node.expanded(), (), items)
        return StructureEncodedSequence(items)

    def sibling_sort_key(self, parent_label: str) -> Callable[[tuple[int, XmlNode]], tuple]:
        """Sort key for ``(document_position, node)`` pairs under a parent.

        Values first (document order), then schema/lexicographic label
        order, then document order for equal labels.
        """

        def key(entry: tuple[int, XmlNode]) -> tuple:
            position, child = entry
            if child.is_value:
                return (0, (0, ""), position)
            if self.schema is not None:
                label_key = self.schema.sibling_position(parent_label, child.label)
            else:
                label_key = (0, child.label)
            return (1, label_key, position)

        return key

    def _walk(self, node: XmlNode, prefix: tuple[str, ...], items: list[Item]) -> None:
        if node.is_value:
            items.append(Item(self.hasher(node.value), prefix))
            return
        items.append(Item(node.label, prefix))
        child_prefix = prefix + (node.label,)
        ordered = sorted(
            enumerate(node.children), key=self.sibling_sort_key(node.label)
        )
        for _, child in ordered:
            self._walk(child, child_prefix, items)
