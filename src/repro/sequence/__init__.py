"""Structure-encoded sequences: items, codecs, and the document transform."""

from repro.sequence.encoding import (
    Item,
    StructureEncodedSequence,
    item_key,
    item_key_prefix,
)
from repro.sequence.transform import SequenceEncoder
from repro.sequence.vocabulary import ValueHasher, fnv1a_64

__all__ = [
    "Item",
    "StructureEncodedSequence",
    "item_key",
    "item_key_prefix",
    "SequenceEncoder",
    "ValueHasher",
    "fnv1a_64",
]
