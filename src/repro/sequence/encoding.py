"""Structure-encoded sequences (paper Definition 1) and their byte codecs.

A structure-encoded sequence is a list of ``(symbol, prefix)`` pairs in
preorder: ``symbol`` is an element/attribute label (``str``) or a hashed
value (``int``); ``prefix`` is the tuple of *labels* on the path from the
root to the node (values never appear in prefixes — they are leaves).

Two byte encodings live here:

* :func:`item_key` / :func:`item_key_prefix` — the D-Ancestor B+Tree key
  of an item.  Section 3.3 prescribes the key order "first by the Symbol,
  then by the length of the Prefix, and lastly by the content of the
  Prefix", which makes ``*`` one contiguous range (same symbol, prefix one
  longer than the known part, same known content) and ``//`` a short
  series of such ranges — so the key is ``(symbol, len(prefix), *prefix)``.
* :meth:`StructureEncodedSequence.to_bytes` — a compact document payload
  for the doc store.  Prefixes are redundant given preorder + depths
  (exactly the paper's observation that "the prefix can be encoded
  easily"), so the payload stores ``(symbol, depth)`` pairs and
  reconstruction replays the label stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from repro.errors import CodecError
from repro.storage.serialization import (
    decode_str,
    decode_uint,
    encode_str,
    encode_tuple,
    encode_uint,
)

Symbol = Union[str, int]
Prefix = tuple[str, ...]

__all__ = ["Item", "StructureEncodedSequence", "item_key", "item_key_prefix"]


@dataclass(frozen=True)
class Item:
    """One ``(symbol, prefix)`` pair of a structure-encoded sequence."""

    symbol: Symbol
    prefix: Prefix

    @property
    def depth(self) -> int:
        """Length of the prefix (the root element has depth 0)."""
        return len(self.prefix)

    @property
    def is_value(self) -> bool:
        """True when the symbol is a hashed value rather than a label."""
        return isinstance(self.symbol, int)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        sym = f"v:{self.symbol:x}" if self.is_value else self.symbol
        return f"({sym},{''.join(self.prefix)})"


def item_key(item: Item) -> bytes:
    """D-Ancestor B+Tree key: ``(symbol, len(prefix), *prefix)``."""
    return encode_tuple((item.symbol, len(item.prefix), *item.prefix))


def item_key_prefix(symbol: Symbol, prefix_len: int, known: Iterable[str] = ()) -> bytes:
    """Key prefix for a range scan over D-Ancestor keys.

    ``known`` is the leading part of the prefix that is already concrete;
    the remaining ``prefix_len - len(known)`` labels are left open, which
    is how the matcher expands ``*`` (one open label) and ``//`` (any
    number of open labels, one scan per plausible length).
    """
    return encode_tuple((symbol, prefix_len, *known))


class StructureEncodedSequence:
    """An immutable sequence of :class:`Item` with document payload codecs."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Item]) -> None:
        object.__setattr__(self, "items", tuple(items))

    def __setattr__(self, *_args) -> None:  # pragma: no cover - guard
        raise AttributeError("StructureEncodedSequence is immutable")

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self.items)

    def __getitem__(self, index: int) -> Item:
        return self.items[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StructureEncodedSequence):
            return NotImplemented
        return self.items == other.items

    def __hash__(self) -> int:
        return hash(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StructureEncodedSequence({' '.join(map(str, self.items))})"

    def preorder_string(self) -> str:
        """Compact rendering in the style of paper Table 1."""
        parts = []
        for item in self.items:
            parts.append(f"[{item.symbol:x}]" if item.is_value else str(item.symbol))
        return "".join(parts)

    # -- payload codec ---------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize for the doc store (symbols + depths only)."""
        out = bytearray()
        out += encode_uint(len(self.items))
        for item in self.items:
            if item.is_value:
                out += b"\x01" + encode_uint(item.symbol)
            else:
                out += b"\x00" + encode_str(item.symbol)
            out += encode_uint(len(item.prefix))
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "StructureEncodedSequence":
        """Rebuild a sequence, replaying the prefix label stack."""
        count, offset = decode_uint(data)
        stack: list[str] = []
        items: list[Item] = []
        for _ in range(count):
            if offset >= len(data):
                raise CodecError("truncated sequence payload")
            kind = data[offset]
            offset += 1
            symbol: Symbol
            if kind == 0x01:
                symbol, offset = decode_uint(data, offset)
            elif kind == 0x00:
                symbol, offset = decode_str(data, offset)
            else:
                raise CodecError(f"bad symbol kind byte {kind:#x}")
            depth, offset = decode_uint(data, offset)
            if depth > len(stack):
                raise CodecError(
                    f"invalid preorder payload: depth {depth} exceeds stack {len(stack)}"
                )
            del stack[depth:]
            items.append(Item(symbol, tuple(stack)))
            if isinstance(symbol, str):
                stack.append(symbol)
        if offset != len(data):
            raise CodecError("trailing bytes after sequence payload")
        return cls(items)
