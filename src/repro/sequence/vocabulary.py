"""Value hashing — the paper's ``h()`` function.

Section 2: "we use a hash function, h(), to encode attribute values into
integers".  The hash must be *stable* across processes (index files
persist), so Python's randomised ``hash()`` is out; we use 64-bit FNV-1a.

:class:`ValueHasher` optionally folds hashes into a bucket count.  Fewer
buckets mean smaller keys but hash collisions, which — like the structural
ambiguities discussed in DESIGN.md — produce false positives that the
verification filter removes; the collision ablation benchmark exercises
exactly this trade-off.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CodecError

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1

__all__ = ["fnv1a_64", "ValueHasher", "CapturingHasher"]


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash of a byte string."""
    acc = _FNV_OFFSET
    for byte in data:
        acc ^= byte
        acc = (acc * _FNV_PRIME) & _MASK64
    return acc


class ValueHasher:
    """Maps attribute/text values to integers, ``h()`` of the paper."""

    def __init__(self, buckets: Optional[int] = None) -> None:
        if buckets is not None and buckets < 1:
            raise CodecError(f"bucket count must be >= 1, got {buckets}")
        self.buckets = buckets

    def __call__(self, value: str) -> int:
        h = fnv1a_64(value.strip().encode("utf-8"))
        if self.buckets is not None:
            h %= self.buckets
        return h

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ValueHasher(buckets={self.buckets})"


class CapturingHasher:
    """Wraps a hasher, recording each raw value in emission order.

    The sequence transform calls the hasher exactly once per value leaf,
    in preorder, so :attr:`raw` aligns positionally with the value items
    of the produced sequence — which is how the verifier recovers raw
    strings for range predicates (they cannot be answered from hashes).
    """

    def __init__(self, base: ValueHasher) -> None:
        self.base = base
        self.raw: list[str] = []

    def __call__(self, value: str) -> int:
        self.raw.append(value.strip())
        return self.base(value)
