"""Offline corruption assessment and repair: ``scrub`` and ``salvage``.

**Scrub** walks every byte of an on-disk index directory without trusting
any of it: each page slot of the tree file is read raw and its CRC
trailer recomputed, each docstore record's CRC is verified, and — when
all checksums are clean — the structural invariant checkers
(:mod:`repro.testing.invariants`) are run over the opened index.  Scrub
never mutates the database (it deliberately bypasses the pager/docstore
classes, whose *open* paths would migrate legacy files in place).

**Salvage** rebuilds the ViST index from the intact document store: the
stored sequences are re-inserted through :class:`~repro.index.vist.VistIndex`
into fresh side files (preserving document ids positionally, tombstones
included), the rebuilt index must pass every invariant checker, and only
then do the side files atomically replace the damaged originals.  The
docstore is the source of truth — its records carry their own checksums —
so salvage refuses to run when the docstore itself is damaged.
``sources.dat`` (original XML text) is untouched: ids are preserved, so
it stays aligned.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import CorruptionError, PageError, StorageError
from repro.storage.bptree import reachable_page_ids
from repro.storage.checksums import CHECKSUM_SIZE, page_checksum, verify_trailer
from repro.storage.pager import peek_header, slot_size, unpack_header_page

__all__ = [
    "FileScrubReport",
    "ScrubReport",
    "SalvageReport",
    "scrub_page_file",
    "scrub_page_reachability",
    "scrub_record_file",
    "scrub_db",
    "salvage_db",
]

_LEN_FMT = "<I"
_LEN_SIZE = struct.calcsize(_LEN_FMT)
_TOMBSTONE = 0xFFFFFFFF
_DOC_MAGIC = b"ViSTDOC2"

# Files a ViST database directory may contain (see repro.cli.open_index).
TREE_FILE = "vist.db"
DOC_FILE = "docs.dat"
SOURCE_FILE = "sources.dat"


@dataclass
class FileScrubReport:
    """Checksum walk of one file (page file or record file)."""

    path: str
    kind: str  # "pages" | "records"
    checked: int = 0  # page slots / records verified
    errors: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def fail(self, message: str) -> None:
        self.errors.append(message)

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.errors)} error(s)"
        lines = [f"{self.path}: {self.checked} {self.kind} checked, {status}"]
        lines.extend(f"  {err}" for err in self.errors)
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


@dataclass
class ScrubReport:
    """Everything ``repro scrub`` found in one database directory."""

    dbdir: str
    files: list[FileScrubReport] = field(default_factory=list)
    invariant_violations: list[str] = field(default_factory=list)
    invariants_checked: bool = False
    notes: list[str] = field(default_factory=list)

    @property
    def checksums_ok(self) -> bool:
        return all(report.ok for report in self.files)

    @property
    def ok(self) -> bool:
        return self.checksums_ok and not self.invariant_violations

    def summary(self) -> str:
        lines = [f"scrub {self.dbdir}:"]
        for report in self.files:
            lines.append(report.summary())
        if self.invariants_checked:
            if self.invariant_violations:
                lines.append(f"{len(self.invariant_violations)} invariant violation(s):")
                lines.extend(f"  {v}" for v in self.invariant_violations)
            else:
                lines.append("structural invariants: ok")
        for note in self.notes:
            lines.append(f"note: {note}")
        lines.append("scrub result: " + ("clean" if self.ok else "DAMAGED"))
        return "\n".join(lines)


@dataclass
class SalvageReport:
    """Outcome of ``repro salvage``: what was rebuilt and from what."""

    dbdir: str
    documents: int = 0  # live documents re-inserted
    tombstones: int = 0  # deleted ids preserved positionally
    replaced: bool = False  # side files promoted over the originals
    notes: list[str] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"salvage {self.dbdir}: rebuilt {self.documents} document(s) "
            f"(+{self.tombstones} tombstone(s)), "
            + ("index replaced" if self.replaced else "originals left untouched")
        ]
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# scrub


def _sharded_layout(dbdir: Path) -> Optional[list[Path]]:
    """The shard directories of a sharded database, or None for plain ones."""
    from repro.shard.routing import is_sharded, read_manifest, shard_dir

    if not is_sharded(dbdir):
        return None
    manifest = read_manifest(dbdir)
    return [shard_dir(dbdir, k) for k in range(manifest["nshards"])]


def scrub_page_file(path: str | os.PathLike) -> FileScrubReport:
    """Verify the CRC trailer of every page slot in a page file.

    The walk is raw (no pager): a corrupt page is reported and the walk
    continues, so one report covers *all* damage, not just the first
    page hit.  Legacy v1 files carry no trailers and are reported as a
    note instead of being migrated.
    """
    path = os.fspath(path)
    report = FileScrubReport(path=path, kind="pages")
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        report.fail(f"unreadable: {exc}")
        return report
    try:
        page_size, version = peek_header(raw, path)
    except PageError as exc:
        report.fail(str(exc))
        return report
    if version == 1:
        report.notes.append(
            "legacy v1 page file (no checksums); open it once with FilePager "
            "to migrate, then re-scrub"
        )
        return report
    slot = slot_size(page_size)
    npages, tail = divmod(len(raw), slot)
    if tail:
        report.fail(
            f"{path}: trailing {tail} byte(s) after page {npages - 1} "
            f"(file not slot-aligned; truncated write?)"
        )
    for page_id in range(npages):
        offset = page_id * slot
        payload = raw[offset : offset + page_size]
        trailer = raw[offset + page_size : offset + slot]
        ok, stored, computed = verify_trailer(payload, trailer)
        report.checked += 1
        if not ok:
            report.fail(
                f"page {page_id}: checksum mismatch at offset {offset} "
                f"(stored 0x{stored:08x}, computed 0x{computed:08x})"
            )
    return report


def scrub_page_reachability(path: str | os.PathLike) -> FileScrubReport:
    """Account for every allocated page slot: live, freelisted, or LEAKED.

    A crash between :meth:`FilePager.free`'s slot write and its header
    write leaves a page that is neither referenced by any B+Tree nor
    reachable from the freelist head — permanently lost space that no
    checksum walk can see (its CRC is fine).  This walk parses the header
    raw, follows the freelist chain, walks every tree root in the slot
    directory, and reports any slot in neither set.

    Only meaningful after the checksum walk came back clean (it trusts
    page payloads); :func:`scrub_db` gates it accordingly.
    """
    path = os.fspath(path)
    report = FileScrubReport(path=path, kind="page slots")
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        report.fail(f"unreadable: {exc}")
        return report
    try:
        page_size, version = peek_header(raw, path)
        if version == 1:
            report.notes.append("legacy v1 page file: reachability walk skipped")
            return report
        slot = slot_size(page_size)

        def payload(pid: int) -> bytes:
            return raw[pid * slot : pid * slot + page_size]

        _, npages, freelist, meta, _ = unpack_header_page(payload(0), path)
        freed: set[int] = set()
        pid = freelist
        while pid != 0:
            if pid < 1 or pid > npages or pid in freed:
                report.fail(
                    f"corrupt freelist chain at page {pid} "
                    f"(range 1..{npages}, {len(freed)} walked)"
                )
                return report
            freed.add(pid)
            (pid,) = struct.unpack_from("<Q", payload(pid))
        live = reachable_page_ids(meta, payload)
    except PageError as exc:
        report.fail(str(exc))
        return report
    report.checked = npages
    overlap = live & freed
    for pid in sorted(overlap):
        report.fail(f"page {pid}: on the freelist but still referenced by a tree")
    leaked = sorted(set(range(1, npages + 1)) - live - freed)
    for pid in leaked:
        report.fail(
            f"page {pid}: LEAKED — neither referenced by any tree nor on "
            f"the freelist (interrupted free()?); run `repro salvage` to reclaim"
        )
    if not report.errors:
        report.notes.append(
            f"{len(live)} live + {len(freed)} freelisted page(s), no leaks"
        )
    return report


def scrub_record_file(path: str | os.PathLike) -> FileScrubReport:
    """Verify the CRC of every record in a docstore file.

    Structural damage (bad magic, truncated header or payload) ends the
    walk — record boundaries downstream of it cannot be trusted — but is
    itself reported, so the file never scrubs clean while damaged.
    """
    path = os.fspath(path)
    report = FileScrubReport(path=path, kind="records")
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        report.fail(f"unreadable: {exc}")
        return report
    if len(raw) == 0:
        return report  # a store that never saw a document
    if not raw.startswith(_DOC_MAGIC):
        report.fail(
            f"{path}: bad docstore magic {raw[:len(_DOC_MAGIC)]!r} "
            "(legacy v1 file or corrupt header)"
        )
        return report
    pos = len(_DOC_MAGIC)
    doc_id = 0
    while pos < len(raw):
        header = raw[pos : pos + 2 * _LEN_SIZE]
        if len(header) != 2 * _LEN_SIZE:
            report.fail(f"record {doc_id}: truncated header at offset {pos}")
            return report
        length, second = struct.unpack("<2I", header)
        body_start = pos + 2 * _LEN_SIZE
        if length == _TOMBSTONE:
            pos = body_start + second
            if pos > len(raw):
                report.fail(f"record {doc_id}: truncated tombstone at offset {body_start}")
                return report
        else:
            payload = raw[body_start : body_start + length]
            if len(payload) != length:
                report.fail(
                    f"record {doc_id}: truncated payload at offset {body_start} "
                    f"(wanted {length} bytes, got {len(payload)})"
                )
                return report
            computed = page_checksum(payload)
            report.checked += 1
            if second != computed:
                report.fail(
                    f"record {doc_id}: checksum mismatch at offset {pos} "
                    f"(stored 0x{second:08x}, computed 0x{computed:08x})"
                )
            pos = body_start + length
        doc_id += 1
    return report


def scrub_db(dbdir: str | os.PathLike, *, invariants: bool = True) -> ScrubReport:
    """Scrub every file of a database directory; optionally check invariants.

    The invariant pass opens the index normally and is only attempted
    when every checksum verified — structural checkers walking corrupt
    pages would drown the real signal (and the open itself may fail).
    """
    dbdir = Path(os.fspath(dbdir))
    sharded = _sharded_layout(dbdir)
    if sharded is not None:
        # sharded database: every shard is a complete directory; scrub
        # each and aggregate so one report covers all the damage
        report = ScrubReport(dbdir=str(dbdir))
        report.notes.append(f"sharded database: {len(sharded)} shard(s) scrubbed")
        for k, shard_path in enumerate(sharded):
            sub = scrub_db(shard_path, invariants=invariants)
            report.files.extend(sub.files)
            if sub.invariants_checked:
                report.invariants_checked = True
            report.invariant_violations.extend(
                f"shard {k}: {v}" for v in sub.invariant_violations
            )
            report.notes.extend(f"shard {k}: {n}" for n in sub.notes)
        return report
    report = ScrubReport(dbdir=str(dbdir))
    tree_path = dbdir / TREE_FILE
    if tree_path.exists():
        report.files.append(scrub_page_file(tree_path))
    else:
        report.notes.append(f"no {TREE_FILE} (nothing indexed yet?)")
    wal_path = dbdir / (TREE_FILE + ".wal")
    if wal_path.exists():
        report.notes.append(
            f"{wal_path.name} present: an interrupted commit will replay or "
            "be discarded on next open"
        )
    for name in (DOC_FILE, SOURCE_FILE):
        record_path = dbdir / name
        if record_path.exists():
            report.files.append(scrub_record_file(record_path))
    checksums_clean = report.checksums_ok
    if tree_path.exists() and checksums_clean:
        # storage accounting (leaked pages) needs trustworthy payloads,
        # so it only runs over a checksum-clean tree file
        report.files.append(scrub_page_reachability(tree_path))
    if invariants and tree_path.exists():
        if not checksums_clean:
            report.notes.append("invariant check skipped: checksum errors above")
        else:
            report.invariants_checked = True
            report.invariant_violations = _check_invariants(dbdir)
    return report


def _check_invariants(dbdir: Path) -> list[str]:
    from repro.cli import open_index
    from repro.testing.invariants import check_index

    try:
        index = open_index(dbdir)
    except (StorageError, OSError) as exc:
        return [f"index failed to open: {exc}"]
    try:
        return [
            violation
            for checker in check_index(index)
            for violation in checker.violations
        ]
    except (StorageError, OSError) as exc:
        return [f"invariant walk aborted: {exc}"]
    finally:
        _close_quietly(index)


def _close_quietly(index) -> None:
    for closer in (
        lambda: index.close(),
        lambda: index.docstore.close(),
        lambda: (index.source_store.close() if index.source_store else None),
    ):
        try:
            closer()
        except (StorageError, OSError):
            pass


# ---------------------------------------------------------------------------
# salvage


def salvage_db(dbdir: str | os.PathLike) -> SalvageReport:
    """Rebuild the ViST index of ``dbdir`` from its document store.

    Preconditions: ``docs.dat`` must scrub clean (it is the source of
    truth).  The rebuild re-inserts every stored sequence through
    :class:`~repro.index.vist.VistIndex` into side files, preserving
    document ids positionally (tombstoned ids get a placeholder
    add+remove), asserts every structural invariant on the result, and
    atomically promotes the side files.  A stale WAL journal of the old
    index is removed — it describes pages that no longer exist.

    Raises :class:`~repro.errors.CorruptionError` when the docstore is
    damaged, and whatever :func:`repro.testing.invariants.assert_invariants`
    raises when the rebuilt index is not clean (the originals are left
    untouched in both cases).
    """
    from repro.cli import load_schema
    from repro.index.vist import VistIndex
    from repro.sequence.transform import SequenceEncoder
    from repro.storage.cache import BufferPool
    from repro.storage.docstore import FileDocStore
    from repro.storage.pager import FilePager
    from repro.testing.invariants import assert_invariants

    dbdir = Path(os.fspath(dbdir))
    sharded = _sharded_layout(dbdir)
    if sharded is not None:
        report = SalvageReport(dbdir=str(dbdir))
        report.notes.append(f"sharded database: {len(sharded)} shard(s) salvaged")
        replaced_all = True
        for k, shard_path in enumerate(sharded):
            sub = salvage_db(shard_path)
            report.documents += sub.documents
            report.tombstones += sub.tombstones
            replaced_all = replaced_all and sub.replaced
            report.notes.extend(f"shard {k}: {n}" for n in sub.notes)
        report.replaced = replaced_all
        return report
    report = SalvageReport(dbdir=str(dbdir))
    doc_path = dbdir / DOC_FILE
    if not doc_path.exists():
        raise StorageError(f"{doc_path}: no document store to salvage from")
    doc_scrub = scrub_record_file(doc_path)
    if not doc_scrub.ok:
        raise CorruptionError(
            f"{doc_path} is damaged; salvage needs an intact document store:\n"
            + "\n".join(doc_scrub.errors)
        )

    # Account for leaked pages before the rebuild: the fresh index never
    # inherits them, so salvage is also the reclamation path for slots an
    # interrupted free() orphaned (see scrub_page_reachability).
    old_tree = dbdir / TREE_FILE
    if old_tree.exists():
        reach = scrub_page_reachability(old_tree)
        leaked = sum(1 for err in reach.errors if "LEAKED" in err)
        if leaked:
            report.notes.append(
                f"reclaimed {leaked} leaked page(s) the old index could "
                "neither use nor reuse"
            )

    tree_side = dbdir / (TREE_FILE + ".salvage")
    doc_side = dbdir / (DOC_FILE + ".salvage")
    for side in (tree_side, doc_side):
        if side.exists():
            side.unlink()  # leftovers of an interrupted salvage

    old_docs = FileDocStore(doc_path)
    rebuilt = VistIndex(
        SequenceEncoder(schema=load_schema(dbdir)),
        docstore=FileDocStore(doc_side),
        pager=BufferPool(FilePager(tree_side), capacity=512),
    )
    try:
        for doc_id in range(old_docs.id_bound):
            if doc_id in old_docs:
                # _parse_payload strips the old insert-path labels; the
                # re-insert assigns fresh ones and persists a new payload
                sequence, _ = rebuilt._parse_payload(old_docs.get(doc_id))
                new_id = rebuilt.add_sequence(sequence)
                report.documents += 1
            else:
                # keep ids positional: burn the id with an empty record
                new_id = rebuilt.docstore.add(b"")
                rebuilt.docstore.remove(new_id)
                report.tombstones += 1
            if new_id != doc_id:
                raise StorageError(
                    f"salvage id drift: stored doc {doc_id} re-inserted as "
                    f"{new_id}; aborting before replacing anything"
                )
        assert_invariants(rebuilt)
        rebuilt.flush()
    finally:
        _close_quietly(rebuilt)
        old_docs.close()

    os.replace(tree_side, dbdir / TREE_FILE)
    os.replace(doc_side, doc_path)
    wal_path = dbdir / (TREE_FILE + ".wal")
    if wal_path.exists():
        wal_path.unlink()
        report.notes.append("removed stale WAL journal of the damaged index")
    report.replaced = True
    return report
