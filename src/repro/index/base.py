"""Shared index interface and helpers.

Every index in this package (Naive, RIST, ViST, and the two baselines)
answers *document-membership* queries: given a structural query, return
the ids of the documents that contain a match — exactly what the paper's
experiments measure.  :class:`XmlIndexBase` holds the common plumbing:
the sequence encoder, the query translator, the document store, and the
optional tree-embedding verification pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable, Optional, Union

from repro.doc.model import XmlDocument, XmlNode
from repro.errors import CorruptionError, IndexStateError
from repro.exec.locks import RWLock
from repro.index.guard import IndexHealth, QueryGuard
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import QueryTrace
from repro.query.ast import QueryNode, QuerySequence
from repro.query.translate import QueryTranslator
from repro.query.xpath import parse_xpath
from repro.sequence.encoding import StructureEncodedSequence
from repro.sequence.transform import SequenceEncoder
from repro.storage.docstore import DocStore, MemoryDocStore

Query = Union[str, QueryNode]

__all__ = ["XmlIndexBase", "Query", "QueryPlan"]


@dataclass
class QueryPlan:
    """What :meth:`XmlIndexBase.explain` reports about a query.

    ``alternatives`` are the translated query sequences (empty for the
    join-based baselines, which do not translate); the boolean flags
    mirror the routing decisions :meth:`XmlIndexBase.query` makes.
    """

    index_type: str
    xpath: str
    alternatives: list[str] = field(default_factory=list)
    auto_verified: bool = False  # unexpressible constraint => verification
    relaxed_candidates: bool = False  # same-label branches in exact mode
    needs_raw_values: bool = False  # range/inequality predicates
    translation_error: Optional[str] = None  # cap exceeded => fallback
    notes: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        lines = [f"query plan ({self.index_type}): {self.xpath}"]
        if self.alternatives:
            lines.append(f"  sequence alternatives: {len(self.alternatives)}")
            for alt in self.alternatives:
                lines.append(f"    {alt}")
        if self.translation_error:
            lines.append(f"  translation fallback: {self.translation_error}")
        for flag, label in [
            (self.auto_verified, "auto-verified (constraint not expressible raw)"),
            (self.relaxed_candidates, "exact mode uses relaxed candidates"),
            (self.needs_raw_values, "needs raw values (source_store)"),
        ]:
            if flag:
                lines.append(f"  {label}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


class XmlIndexBase:
    """Base class for the document-membership indexes."""

    def __init__(
        self,
        encoder: Optional[SequenceEncoder] = None,
        docstore: Optional[DocStore] = None,
        *,
        source_store: Optional[DocStore] = None,
        max_alternatives: int = 24,
    ) -> None:
        self.encoder = encoder if encoder is not None else SequenceEncoder()
        self.translator = QueryTranslator(self.encoder, max_alternatives=max_alternatives)
        self.docstore = docstore if docstore is not None else MemoryDocStore()
        # optional: keep the original XML text so query results can be
        # materialised back into documents (see get_document)
        self.source_store = source_store
        # corruption defense: health flips to "read-suspect" when a query
        # hits a checksum failure, and (with degraded_fallback) the
        # in-flight query is re-answered through the docstore
        self.health = IndexHealth()
        self.degraded_fallback = True
        # concurrency: queries run under the read side of this lock,
        # mutations (add/remove/finalize/flush) under the write side, so
        # every query sees the index as of its read-lock acquisition
        # (snapshot isolation at the index boundary; see docs/INTERNALS.md
        # section 11 and repro.exec.locks)
        self.rwlock = RWLock()
        # observability: the per-index metrics registry.  Components add
        # their stat bundles as pull-only sources (nothing on the hot path
        # changes); `repro stats --json` dumps registry.snapshot().
        self.metrics = MetricsRegistry()
        self.metrics.register("health", self.health.report)
        self._m_queries = self.metrics.counter("queries.total")
        self._m_degraded = self.metrics.counter("queries.degraded")
        self._m_latency = self.metrics.histogram("queries.latency_ms")

    # -- ingestion ---------------------------------------------------------

    def add(self, document: Union[XmlDocument, XmlNode]) -> int:
        """Index one document (or record subtree); returns its doc id."""
        if isinstance(document, XmlNode):
            root = document
        else:
            root = document.root
        with self.rwlock.write():
            return self._add_one_locked(root)

    def _add_one_locked(self, root: XmlNode) -> int:
        """One atomic document insert; the caller holds the write lock.

        The sequence insert and the source append succeed or fail
        together: a source-store failure rolls the sequence insert back
        before the exception escapes, so no doc id is ever published
        with a sequence but no source text (an orphan only scrub would
        notice and salvage could never restore).
        """
        doc_id = self.add_sequence(self.encoder.encode_node(root))
        if self.source_store is not None:
            try:
                source_id = self.source_store.add(root.to_xml().encode("utf-8"))
            except BaseException:
                self._rollback_insert(doc_id)
                raise
            if source_id != doc_id:
                self._rollback_insert(doc_id)
                raise IndexStateError(
                    f"source store id {source_id} diverged from doc id {doc_id}; "
                    "the stores must be used by exactly one index"
                )
        return doc_id

    def _rollback_insert(self, doc_id: int) -> None:
        """Undo the sequence insert of ``doc_id`` — necessarily the most
        recent add, still under the same write lock.

        The base implementation covers the trie-backed in-memory indexes
        (detach the doc id from its trie node, un-assign the docstore
        id); structure-specific indexes override it.
        """
        trie = getattr(self, "trie", None)
        if trie is not None:
            node = trie.root
            for item in self._payload_to_sequence(self.docstore.get(doc_id)):
                node = node.children[item]
            node.doc_ids.remove(doc_id)
        self.docstore.pop_last(doc_id)

    def add_all(self, documents: Iterable[Union[XmlDocument, XmlNode]]) -> list[int]:
        """Index many documents; returns their doc ids.

        Routed through :meth:`add_batch`: one write-lock section per
        chunk instead of per document, with doc-id assignment identical
        to a loop of :meth:`add` calls.  Durability stays what it always
        was for ``add_all`` — the caller owns the eventual
        :meth:`flush`; opt into per-chunk commits with
        ``add_batch(..., durability="batch")``.
        """
        return self.add_batch(documents, durability="none")

    def add_batch(
        self,
        documents: Iterable[Union[XmlDocument, XmlNode]],
        *,
        batch_size: int = 1000,
        durability: str = "batch",
    ) -> list[int]:
        """Bulk ingest: chunked lock sections and per-chunk commits.

        ``documents`` may be any iterable — a streaming record source
        included — and is consumed lazily, ``batch_size`` documents at a
        time, so peak memory stays flat in the corpus size.  Each chunk
        takes the write lock once and inserts its documents through the
        same per-document atomic path as :meth:`add`.

        ``durability="batch"`` (the default) makes each chunk durable in
        one commit: on a WAL-backed index a crash loses at most the open
        chunk and recovery lands exactly on a chunk boundary (the
        contract docs/INTERNALS.md section 14 spells out).
        ``durability="none"`` skips the per-chunk commit entirely; the
        caller owns the eventual :meth:`flush`.
        """
        if durability not in ("batch", "none"):
            raise IndexStateError(
                f"unknown durability mode {durability!r} (use 'batch' or 'none')"
            )
        if batch_size < 1:
            raise IndexStateError(f"batch_size must be >= 1, got {batch_size}")
        doc_ids: list[int] = []
        it = iter(documents)
        while True:
            chunk = list(islice(it, batch_size))
            if not chunk:
                return doc_ids
            with self.rwlock.write():
                self._begin_batch()
                try:
                    for document in chunk:
                        if isinstance(document, XmlNode):
                            root = document
                        else:
                            root = document.root
                        doc_ids.append(self._add_one_locked(root))
                finally:
                    self._end_batch()
                if durability == "batch":
                    self._commit_batch()

    # batch hooks: a chunk of add_batch runs between _begin_batch and
    # _end_batch (the latter on the error path too), then _commit_batch
    # when the durability mode asks for one.  VistIndex uses them to
    # buffer DocId-tree insertions and to fence the commit.

    def _begin_batch(self) -> None:
        """Hook: a batch chunk is starting (write lock held)."""

    def _end_batch(self) -> None:
        """Hook: the batch chunk ended — also called when it failed."""

    def _commit_batch(self) -> None:
        """Make the finished chunk durable.  Defaults to :meth:`flush`
        when the index has one; in-memory indexes have nothing to do."""
        flush = getattr(self, "flush", None)
        if flush is not None:
            flush()

    def add_sequence(self, sequence: StructureEncodedSequence) -> int:
        """Index an already-encoded sequence; returns its doc id."""
        raise NotImplementedError

    def remove(self, doc_id: int) -> None:
        """Remove a document.  Indexes without dynamic deletion raise."""
        raise IndexStateError(
            f"{type(self).__name__} does not support dynamic deletion"
        )

    # -- querying ------------------------------------------------------------

    def query(
        self,
        query: Query,
        *,
        verify: bool = False,
        fallback: bool = True,
        guard: Optional[QueryGuard] = None,
        trace: Optional[QueryTrace] = None,
    ) -> list[int]:
        """Evaluate a structural query; returns sorted matching doc ids.

        ``query`` is an XPath-subset string or a pre-built query tree.
        With ``verify=True``, candidate documents are re-checked by tree
        embedding against their stored sequences, removing the
        false positives the raw ViST semantics admits (see DESIGN.md).

        ``fallback`` enables the paper's footnote-2 escape hatch: a query
        whose branch permutations exceed ``max_alternatives`` is
        *relaxed* (same-label branches deduplicated), raw-matched, and
        then always verified against the original tree — exact results
        at verification cost instead of a :class:`TranslationError`.

        ``guard`` bounds the evaluation (deadline, step and page-read
        budgets, cancellation); see :class:`~repro.index.guard.QueryGuard`.

        **Degraded mode.**  When stored pages or records fail their
        checksum mid-query and ``degraded_fallback`` is on (the default),
        the index is marked read-suspect in :attr:`health` and this query
        is re-answered exactly through the docstore-backed reference
        evaluation — slower, but never silently wrong.  With the fallback
        off, the :class:`~repro.errors.CorruptionError` propagates.

        ``trace`` (a :class:`~repro.obs.trace.QueryTrace`) records the
        evaluation as a span tree — translation, per-level matching,
        DocId output, verification, degraded fallback — with per-stage
        times and counter deltas (``repro query --explain``).
        """
        root = parse_xpath(query) if isinstance(query, str) else query
        # lazy structural work (e.g. RIST's first-query finalize) must run
        # under the *write* lock, so it happens before the read section
        self._prepare_for_query()
        if guard is not None:
            # started before the lock so the deadline covers lock wait:
            # a query stuck behind a long write still dies on time
            guard.start(self._page_read_counter())
        self._m_queries.inc()
        with self.rwlock.read():
            t0 = time.perf_counter()
            qspan = None
            if trace is not None:
                qspan = trace.begin(
                    "query", xpath=root.to_xpath(), engine=type(self).__name__
                )
            try:
                result = self._query_indexed(root, verify, fallback, guard, trace)
            except CorruptionError as exc:
                if not self.degraded_fallback:
                    if qspan is not None:
                        trace.end(qspan, error=type(exc).__name__)
                    raise
                self.health.record_corruption(exc)
                self._m_degraded.inc()
                if trace is not None:
                    # the error unwound past open match/level spans; close them
                    # so the fallback span attaches to the query span itself
                    trace.unwind_to(qspan)
                    with trace.span(
                        "degraded-fallback", reason=type(exc).__name__
                    ) as dspan:
                        result = self._degraded_query(root, guard)
                        dspan.annotate(results=len(result))
                else:
                    result = self._degraded_query(root, guard)
            except BaseException as exc:
                if qspan is not None:
                    trace.end(qspan, error=type(exc).__name__)
                raise
            self._m_latency.observe((time.perf_counter() - t0) * 1000.0)
            if qspan is not None:
                meta: dict = {"results": len(result)}
                if guard is not None:
                    meta["guard_steps"] = guard.steps
                    meta["guard_page_reads"] = guard.page_reads
                trace.end(qspan, **meta)
            return result

    def _prepare_for_query(self) -> None:
        """Hook run by :meth:`query` *before* taking the read lock.

        Indexes whose first query triggers structural work override this
        to do that work under the write lock (RIST's lazy ``finalize``),
        so nothing mutates shared structures inside a read section.
        """

    def _query_indexed(
        self,
        root: QueryNode,
        verify: bool,
        fallback: bool,
        guard: Optional[QueryGuard],
        trace: Optional[QueryTrace] = None,
    ) -> list[int]:
        """The normal (index-backed) evaluation path of :meth:`query`."""
        from repro.errors import TranslationError
        from repro.query.translate import relax_query_tree

        from repro.index.verification import query_needs_raw_values

        # range/inequality value predicates are never expressible over
        # hashes, on any index type: always verify (with raw values)
        verify = verify or query_needs_raw_values(root) or self._needs_verification(root)
        if all(node.is_wildcard for node in root.preorder()):
            # e.g. "/*": no concrete item survives translation; every
            # document is a candidate and verification decides
            span = (
                trace.begin("scan-all-documents", documents=len(self.docstore))
                if trace is not None
                else None
            )
            matched = []
            for doc_id in self.docstore.ids():
                if guard is not None:
                    guard.step()
                if self._verify_one(doc_id, root):
                    matched.append(doc_id)
            if span is not None:
                trace.end(span, matched=len(matched))
            return sorted(matched)
        if verify and self._needs_relaxed_candidates(root):
            # same-label sibling branches demand duplicate (symbol, prefix)
            # items that one data node may satisfy alone — raw matching
            # loses such answers (the Q5 caveat), so exact mode draws its
            # candidates from the relaxed query instead
            doc_ids = self._execute(relax_query_tree(root), guard, trace)
        else:
            try:
                doc_ids = self._execute(root, guard, trace)
            except TranslationError:
                if not fallback:
                    raise
                doc_ids = self._execute(relax_query_tree(root), guard, trace)
                verify = True
        if verify:
            span = (
                trace.begin("verify", candidates=len(doc_ids))
                if trace is not None
                else None
            )
            verified = set()
            for d in doc_ids:
                if guard is not None:
                    guard.step()
                if self._verify_one(d, root):
                    verified.add(d)
            doc_ids = verified
            if span is not None:
                trace.end(span, verified=len(verified))
        if guard is not None:
            guard.check()  # reads issued since the last tick still count
        return sorted(doc_ids)

    def _degraded_query(
        self, root: QueryNode, guard: Optional[QueryGuard] = None
    ) -> list[int]:
        """Answer a query without trusting the index structures.

        Every live document is evaluated directly: against its original
        XML text via the reference evaluator when a ``source_store``
        exists (full fidelity, including range predicates), otherwise by
        tree-embedding verification of its stored sequence.  Docstore
        records carry their own checksums, so a corrupt record raises
        rather than contributing a silently wrong answer.
        """
        from repro.testing.reference import reference_matches

        self.health.degraded_queries += 1
        matched = []
        for doc_id in self.docstore.ids():
            if guard is not None:
                guard.step()
            if self.source_store is not None:
                document = self.get_document(doc_id)
                ok = reference_matches(document.root, root, self.encoder.hasher)
            else:
                ok = self._verify_one(doc_id, root)
            if ok:
                matched.append(doc_id)
        return sorted(matched)

    def _page_read_counter(self):
        """Callable reporting cumulative pager reads, for page budgets.

        Counts logical reads at the pager the index talks to (a
        :class:`~repro.storage.cache.BufferPool` counts cache hits too,
        keeping budgets deterministic regardless of cache temperature).
        Indexes without a pager return ``None`` — page budgets are then
        inert.
        """
        pager = getattr(self, "_pager", None)
        if pager is None:
            return None
        return lambda: pager.read_count

    def explain(self, query: Query) -> QueryPlan:
        """Describe how :meth:`query` would evaluate ``query`` — the
        translated sequence alternatives and every routing decision —
        without touching the data."""
        from repro.errors import TranslationError
        from repro.index.verification import query_needs_raw_values

        root = parse_xpath(query) if isinstance(query, str) else query
        plan = QueryPlan(index_type=type(self).__name__, xpath=root.to_xpath())
        plan.needs_raw_values = query_needs_raw_values(root)
        plan.auto_verified = plan.needs_raw_values or self._needs_verification(root)
        plan.relaxed_candidates = self._needs_relaxed_candidates(root)
        if all(node.is_wildcard for node in root.preorder()):
            plan.notes.append("all-wildcard query: every document is a candidate")
            return plan
        if type(self)._execute is not XmlIndexBase._execute:
            plan.notes.append("join-based evaluation (no sequence translation)")
            return plan
        try:
            for alternative in self.translator.translate(root):
                plan.alternatives.append(" ".join(str(i) for i in alternative))
        except TranslationError as exc:
            plan.translation_error = str(exc)
            plan.auto_verified = True
        return plan

    def _verify_one(self, doc_id: int, root: QueryNode) -> bool:
        from repro.index.verification import query_needs_raw_values, verify_document

        if query_needs_raw_values(root):
            sequence, raw = self._load_raw_sequence(doc_id)
            return verify_document(sequence, root, self.encoder.hasher, raw)
        return verify_document(self.load_sequence(doc_id), root, self.encoder.hasher)

    def _load_raw_sequence(self, doc_id: int):
        """Re-encode a document from its source, capturing raw values.

        The captured strings align with the stored sequence's value items
        (same transform, same sibling order), which range-predicate
        verification relies on.
        """
        from repro.sequence.vocabulary import CapturingHasher

        if self.source_store is None:
            raise IndexStateError(
                "range/inequality predicates need the original text: create "
                "the index with a source_store"
            )
        capture = CapturingHasher(self.encoder.hasher)
        encoder = SequenceEncoder(self.encoder.schema, capture)
        sequence = encoder.encode_document(self.get_document(doc_id))
        return sequence, capture.raw

    def query_nodes(self, query: Query) -> dict[int, list[int]]:
        """Node-granularity results: doc id → matched node positions.

        Positions are preorder indices into the document's
        structure-encoded sequence (equivalently, its expanded tree).
        The matched nodes are the bindings of the query's *result node*
        (the deepest step of the main location path), as an XPath engine
        would return.  Always exact: candidates come from the verified
        evaluation path.
        """
        from repro.index.verification import find_result_nodes, query_needs_raw_values

        root = parse_xpath(query) if isinstance(query, str) else query
        needs_raw = query_needs_raw_values(root)
        out: dict[int, list[int]] = {}
        self._prepare_for_query()
        with self.rwlock.read():  # candidate query + per-doc reload, one snapshot
            for doc_id in self.query(root, verify=True):
                if needs_raw:
                    sequence, raw = self._load_raw_sequence(doc_id)
                else:
                    sequence, raw = self.load_sequence(doc_id), None
                positions = find_result_nodes(sequence, root, self.encoder.hasher, raw)
                if positions:
                    out[doc_id] = positions
        return out

    def _needs_verification(self, root: QueryNode) -> bool:
        """Queries the sequence encoding cannot express exactly.

        A wildcard step with no children *and no value predicate*
        (``/a/*``) is discarded by translation with nothing left to
        carry its placeholder, so its existence constraint vanishes from
        the query sequence; such queries are verified automatically.
        The join-based baselines evaluate wildcards directly and
        override this to ``False``.
        """
        return any(
            node.is_wildcard and not node.children and node.value is None
            for node in root.preorder()
        )

    def _needs_relaxed_candidates(self, root: QueryNode) -> bool:
        """True when raw matching can lose answers the verifier expects.

        Same-label sibling branches translate to duplicate ``(symbol,
        prefix)`` items, but XPath lets a single data node satisfy
        several predicates — e.g. ``/A[B/C]/B/D`` against one ``B``
        holding both ``C`` and ``D``.  A *wildcard* branch beside any
        other branch has the same problem (the wildcard may bind the very
        node its sibling branch binds).  Exact mode then matches the
        relaxed query (a superset) and verifies.  Join-based baselines
        are exact natively and override this to ``False``.
        """
        for node in root.preorder():
            if len(node.children) > 1 and any(
                child.is_wildcard for child in node.children
            ):
                return True
            seen: set[str] = set()
            for child in node.children:
                if child.is_wildcard:
                    continue
                if child.label in seen:
                    return True
                seen.add(child.label)
        return False

    def _execute(
        self,
        root: QueryNode,
        guard: Optional[QueryGuard] = None,
        trace: Optional[QueryTrace] = None,
    ) -> set[int]:
        """Evaluate a parsed query tree.  Default: sequence matching over
        every translation alternative; the join-based baselines override
        this with their own evaluation strategy."""
        doc_ids: set[int] = set()
        if trace is None:
            for alternative in self.translator.translate(root):
                doc_ids.update(self.match_sequence(alternative, guard))
            return doc_ids
        span = trace.begin("translate")
        alternatives = list(self.translator.translate(root))
        trace.end(span, alternatives=len(alternatives))
        for i, alternative in enumerate(alternatives):
            aspan = trace.begin(
                f"match alt {i}",
                sequence=" ".join(str(item) for item in alternative),
            )
            found = self.match_sequence(alternative, guard, trace)
            trace.end(aspan, doc_ids=len(found))
            doc_ids.update(found)
        return doc_ids

    def match_sequence(
        self,
        query_sequence: QuerySequence,
        guard: Optional[QueryGuard] = None,
        trace: Optional[QueryTrace] = None,
    ) -> set[int]:
        """Raw subsequence matching for one query-sequence alternative."""
        raise NotImplementedError

    # -- document access -------------------------------------------------------

    def load_sequence(self, doc_id: int) -> StructureEncodedSequence:
        """Reload the structure-encoded sequence of an indexed document."""
        return self._payload_to_sequence(self.docstore.get(doc_id))

    def get_document(self, doc_id: int) -> XmlDocument:
        """Materialise an indexed document from its stored XML source.

        Requires the index to have been created with a ``source_store``
        and the document to have been added via :meth:`add` (sequences
        indexed directly carry no source text).
        """
        if self.source_store is None:
            raise IndexStateError(
                "get_document needs a source_store (pass one to the index "
                "constructor); only sequences were retained"
            )
        from repro.doc.parser import parse_document

        text = self.source_store.get(doc_id).decode("utf-8")
        return parse_document(text)

    def _remove_source(self, doc_id: int) -> None:
        """Hook for deleting indexes: drop the stored source, if any."""
        if self.source_store is not None and doc_id in self.source_store:
            self.source_store.remove(doc_id)

    def __len__(self) -> int:
        return len(self.docstore)

    # -- payload hooks ----------------------------------------------------------

    def _sequence_to_payload(self, sequence: StructureEncodedSequence) -> bytes:
        return sequence.to_bytes()

    def _payload_to_sequence(self, payload: bytes) -> StructureEncodedSequence:
        return StructureEncodedSequence.from_bytes(payload)
