"""The "suffix-tree-like structure" of paper Figure 5.

Structure-encoded sequences are inserted root-downwards into a trie: each
trie node corresponds to one ``(symbol, prefix)`` item, branches are
shared between sequences with a common item prefix, and each document's
id is attached to the node its insertion ends at.

The trie serves two roles:

* the :class:`~repro.index.naive.NaiveIndex` matches directly on it
  (Algorithm 1);
* RIST labels it *statically* — ``n`` = preorder number, ``size`` =
  descendant count (Section 3.3, Figure 5's ``<n, size>`` pairs) — and
  then moves matching onto B+Trees.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.labeling.scope import Scope
from repro.sequence.encoding import Item, StructureEncodedSequence

__all__ = ["TrieNode", "SequenceTrie"]


class TrieNode:
    """One node of the sequence trie."""

    __slots__ = ("item", "children", "doc_ids", "scope")

    def __init__(self, item: Optional[Item]) -> None:
        self.item = item  # None for the root
        self.children: dict[Item, "TrieNode"] = {}
        self.doc_ids: list[int] = []
        self.scope: Optional[Scope] = None  # set by assign_static_labels

    def descendants(self) -> Iterator["TrieNode"]:
        """Every node strictly below this one, in preorder."""
        stack = list(reversed(list(self.children.values())))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(list(node.children.values())))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrieNode({self.item}, children={len(self.children)})"


class SequenceTrie:
    """A trie over structure-encoded sequences."""

    def __init__(self) -> None:
        self.root = TrieNode(None)
        self.node_count = 0  # excluding the root
        self.max_depth = 0  # longest item prefix seen

    def insert(self, sequence: StructureEncodedSequence, doc_id: int) -> TrieNode:
        """Insert a sequence; returns the node the document ends at.

        "The insertion process is much like that of inserting a sequence
        into a suffix tree – we follow the branches, and when there is no
        branch to follow, we create one."  (paper Section 3.4.2)
        """
        node = self.root
        for item in sequence:
            child = node.children.get(item)
            if child is None:
                child = TrieNode(item)
                node.children[item] = child
                self.node_count += 1
                self.max_depth = max(self.max_depth, len(item.prefix))
            node = child
        node.doc_ids.append(doc_id)
        return node

    def nodes(self) -> Iterator[TrieNode]:
        """All nodes except the root, in preorder."""
        return self.root.descendants()

    def assign_static_labels(self, start: int = 0) -> int:
        """RIST labelling: preorder number + descendant count.

        Returns the total number of labelled nodes (including the root,
        which receives ``<start, total_descendants>``).
        """
        counter = start

        def label(node: TrieNode) -> int:
            nonlocal counter
            my_n = counter
            counter += 1
            descendants = 0
            for child in node.children.values():
                descendants += label(child)
            node.scope = Scope(my_n, descendants)
            return descendants + 1

        total = label(self.root)
        return total
