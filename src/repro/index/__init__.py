"""The paper's index structures: Naive (Alg. 1), RIST (§3.3), ViST (§3.4)."""

from repro.index.base import Query, XmlIndexBase
from repro.index.matching import SequenceMatcher, match_prefix_pattern
from repro.index.naive import NaiveIndex
from repro.index.rist import RistIndex
from repro.index.store import decode_node_key, node_key
from repro.index.trie import SequenceTrie, TrieNode
from repro.index.verification import rebuild_tree, verify_document
from repro.index.vist import VistIndex

__all__ = [
    "XmlIndexBase",
    "Query",
    "NaiveIndex",
    "RistIndex",
    "VistIndex",
    "SequenceTrie",
    "TrieNode",
    "SequenceMatcher",
    "match_prefix_pattern",
    "verify_document",
    "rebuild_tree",
    "node_key",
    "decode_node_key",
]
