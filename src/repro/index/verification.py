"""Tree-embedding verification of candidate documents.

ViST's subsequence matching admits **false positives** (DESIGN.md §2):
two query branches can be satisfied by *different* sibling subtrees that
share identical prefixes, ``//`` bindings can mix levels, and bucketed
value hashing can collide.  This module re-checks a candidate document —
reconstructed from its stored structure-encoded sequence — against the
original query tree under XPath's existential semantics:

* a concrete query node matches a data node with the same label;
* ``*`` matches any one element/attribute node;
* a ``//`` node's children may match any (proper or direct) descendant;
* a value predicate requires a value leaf with the same hash;
* every query child must be satisfied, each independently (two branches
  may embed onto the same data node, as in XPath).

Note the converse direction: raw ViST also has *false negatives* relative
to XPath for queries like ``/A[B/C]/B/D`` when a single ``B`` carries both
``C`` and ``D`` (the query sequence demands two ``(B, A)`` items).  The
exact mode (``query(..., verify=True)``) therefore draws its candidates
from the *relaxed* query for same-label-branch queries (see
``XmlIndexBase._needs_relaxed_candidates``) before filtering here, which
makes it both sound and complete under these XPath semantics.  The
false-positive benchmark quantifies both directions.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import IndexStateError
from repro.query.ast import QueryNode
from repro.sequence.encoding import StructureEncodedSequence
from repro.sequence.vocabulary import ValueHasher

__all__ = [
    "verify_document",
    "find_result_nodes",
    "query_needs_raw_values",
    "SequenceTreeNode",
    "rebuild_tree",
]


class SequenceTreeNode:
    """A node of the tree reconstructed from a structure-encoded sequence.

    ``position`` is the node's index in the sequence (preorder order);
    the super-root carries ``-1``.
    """

    __slots__ = ("symbol", "children", "position", "raw")

    def __init__(self, symbol: Union[str, int, None], position: int = -1) -> None:
        self.symbol = symbol  # None for the super-root
        self.position = position
        self.raw: Union[str, None] = None  # original text of a value leaf
        self.children: list["SequenceTreeNode"] = []

    @property
    def is_value(self) -> bool:
        return isinstance(self.symbol, int)

    def descendants(self):
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))


def rebuild_tree(
    sequence: StructureEncodedSequence,
    raw_values: Optional[list[str]] = None,
) -> SequenceTreeNode:
    """Reconstruct the document tree (under a super-root) from a sequence.

    ``raw_values`` — produced by a
    :class:`~repro.sequence.vocabulary.CapturingHasher` — carries the
    original text of every value leaf in emission order; with it the tree
    supports range predicates, without it only hash equality.
    """
    super_root = SequenceTreeNode(None)
    stack: list[SequenceTreeNode] = [super_root]
    value_index = 0
    for position, item in enumerate(sequence):
        depth = len(item.prefix) + 1  # stack position under the super-root
        del stack[depth:]
        node = SequenceTreeNode(item.symbol, position)
        stack[-1].children.append(node)
        if item.is_value:
            if raw_values is not None:
                node.raw = raw_values[value_index]
            value_index += 1
        else:
            stack.append(node)
    return super_root


def verify_document(
    sequence: StructureEncodedSequence,
    query: QueryNode,
    hasher: ValueHasher,
    raw_values: Optional[list[str]] = None,
) -> bool:
    """True when the query tree embeds into the document tree."""
    super_root = rebuild_tree(sequence, raw_values)
    return _child_matches(query, super_root, hasher)


def query_needs_raw_values(query: QueryNode) -> bool:
    """True when the query compares values with anything but equality —
    hashes cannot answer those, so verification needs the source text."""
    return any(
        node.value is not None and node.op != "=" for node in query.preorder()
    )


def _value_satisfies(
    qnode: QueryNode, dnode: SequenceTreeNode, hasher: ValueHasher
) -> bool:
    """Does some value leaf of ``dnode`` satisfy ``qnode``'s predicate?"""
    for child in dnode.children:
        if not child.is_value:
            continue
        if child.raw is not None:
            if _compare(child.raw, qnode.op, qnode.value):
                return True
        elif qnode.op == "=":
            if child.symbol == hasher(qnode.value):
                return True
        else:
            raise IndexStateError(
                f"predicate {qnode.op}{qnode.value!r} needs raw values; "
                "index with a source_store so verification can read them"
            )
    return False


def _compare(raw: str, op: str, operand: str) -> bool:
    """Numeric comparison when both sides parse as numbers, else string."""
    left: Union[str, float]
    right: Union[str, float]
    try:
        left, right = float(raw), float(operand.strip())
    except ValueError:
        left, right = raw, operand.strip()
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def find_result_nodes(
    sequence: StructureEncodedSequence,
    query: QueryNode,
    hasher: ValueHasher,
    raw_values: Optional[list[str]] = None,
) -> list[int]:
    """Preorder positions of the data nodes the query's *result node*
    binds to — the node set an XPath engine would return.

    Walks the query's main location path top-down; at every step the
    surviving data nodes must match the step's label/value and embed all
    of its ``[...]`` predicate branches.  Returns sorted positions (empty
    when the document does not match at all).
    """
    super_root = rebuild_tree(sequence, raw_values)

    def bind(qnode: QueryNode, pool: list[SequenceTreeNode]) -> list[SequenceTreeNode]:
        if qnode.is_dslash:
            inner = qnode.main_child()
            if inner is None:
                return pool  # degenerate `//` with nothing below it
            descendants: list[SequenceTreeNode] = []
            seen: set[int] = set()
            for dnode in pool:
                for descendant in dnode.descendants():
                    if not descendant.is_value and descendant.position not in seen:
                        seen.add(descendant.position)
                        descendants.append(descendant)
            return bind(inner, descendants)
        matched: list[SequenceTreeNode] = []
        main = qnode.main_child()
        for dnode in pool:
            if dnode.is_value:
                continue
            if not qnode.is_star and dnode.symbol != qnode.label:
                continue
            if qnode.value is not None and not _value_satisfies(qnode, dnode, hasher):
                continue
            predicates_ok = all(
                _child_matches(child, dnode, hasher)
                for child in qnode.children
                if child is not main
            )
            if predicates_ok:
                matched.append(dnode)
        if main is None:
            return matched
        if main.is_dslash:
            return bind(main, matched)
        next_pool: list[SequenceTreeNode] = []
        for dnode in matched:
            next_pool.extend(c for c in dnode.children if not c.is_value)
        return bind(main, next_pool)

    if query.is_dslash:
        results = bind(query, [super_root])
    else:
        results = bind(query, [c for c in super_root.children if not c.is_value])
    return sorted({node.position for node in results})


def _child_matches(
    qnode: QueryNode, parent: SequenceTreeNode, hasher: ValueHasher
) -> bool:
    """Does some admissible data node under ``parent`` satisfy ``qnode``?"""
    if qnode.is_dslash:
        # `//`'s own children may land on any descendant of `parent`
        return all(
            any(
                _node_matches(qchild, dnode, hasher)
                for dnode in parent.descendants()
                if not dnode.is_value
            )
            for qchild in qnode.children
        )
    candidates = (child for child in parent.children if not child.is_value)
    return any(_node_matches(qnode, dnode, hasher) for dnode in candidates)


def _node_matches(
    qnode: QueryNode, dnode: SequenceTreeNode, hasher: ValueHasher
) -> bool:
    if qnode.is_dslash:
        # a `//` standing in a child position: delegate to descendants
        return _child_matches(qnode, dnode, hasher)
    if not qnode.is_star and dnode.symbol != qnode.label:
        return False
    if qnode.value is not None and not _value_satisfies(qnode, dnode, hasher):
        return False
    return all(_child_matches(qchild, dnode, hasher) for qchild in qnode.children)
