"""B+Tree key plumbing shared by the RIST and ViST indexes.

Both indexes keep two logical structures in B+Trees (paper Figure 6):

* the **combined D-Ancestor + S-Ancestor tree**: one entry per virtual
  suffix-tree node, key ``(symbol, prefix_len, *prefix_labels, n)``.
  The key order is exactly Section 3.3's D-Ancestor order (symbol, then
  prefix length, then prefix content) with the S-Ancestor label ``n``
  appended, so a D-Ancestor lookup is a key-prefix range and the
  S-Ancestor range ``(n, n + size]`` is a sub-range of it;
* the **DocId tree**: key ``n``, one duplicate entry per document id
  attached to node ``n``.

Entry values differ per index (RIST stores a bare size, ViST a full
:class:`~repro.labeling.dynamic.NodeState`), so hosts provide
``_scope_of(n, value)``.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from repro.index.postings import PostingCache, PostingGroup
from repro.labeling.scope import Scope
from repro.sequence.encoding import Item, Prefix
from repro.storage.bptree import BPlusTree
from repro.storage.cache import BufferPool
from repro.storage.serialization import (
    decode_items,
    decode_tuple,
    decode_uint,
    encode_tuple,
    encode_uint,
    prefix_range_end,
)

Symbol = Union[str, int]

# Reserved keys in the combined tree.  Real symbols are non-empty labels
# or non-negative value hashes, so a leading empty-string component can
# never collide with a data key.
ROOT_KEY = encode_tuple(("", 0, "root"))
META_MAX_DEPTH_KEY = encode_tuple(("", 0, "max-depth"))
# committed byte lengths of the doc/source stores, stamped at every
# durable commit so reopening can truncate uncommitted trailing appends
# (see VistIndex._record_store_bounds / _recover_store_bounds)
META_STORE_BOUNDS_KEY = encode_tuple(("", 0, "store-bounds"))

__all__ = [
    "ROOT_KEY",
    "META_MAX_DEPTH_KEY",
    "META_STORE_BOUNDS_KEY",
    "node_key",
    "node_key_len",
    "decode_node_key",
    "CombinedTreeHost",
]


# node_key is the hottest function of the insert path (one call per
# sequence item for validation alone, several more per descent step).
# encode_tuple parts are self-delimiting, so the key factors into a
# (symbol, prefix) stem and an ``n`` suffix — both highly repetitive in
# any real corpus (documents share element paths; labels are reused in
# every range bound).  Capped memos turn the common call into two dict
# hits and a concat.
_STEM_CACHE: dict[tuple, bytes] = {}
_N_CACHE: dict[int, bytes] = {}
_KEY_CACHE_CAP = 1 << 16


def node_key(symbol: Symbol, prefix: Prefix, n: int) -> bytes:
    """Combined-tree key of the node for ``(symbol, prefix)`` labelled ``n``."""
    stem = _STEM_CACHE.get((symbol, prefix))
    if stem is None:
        stem = encode_tuple((symbol, len(prefix), *prefix))
        if len(_STEM_CACHE) < _KEY_CACHE_CAP:
            _STEM_CACHE[symbol, prefix] = stem
    suffix = _N_CACHE.get(n)
    if suffix is None:
        suffix = encode_tuple((n,))
        if len(_N_CACHE) < _KEY_CACHE_CAP:
            _N_CACHE[n] = suffix
    return stem + suffix


def node_key_len(symbol: Symbol, prefix: Prefix, n: int) -> int:
    """``len(node_key(...))`` without materialising the key.

    Key-size validation runs over every item of every sequence; the
    lengths come straight from the memoised parts."""
    stem = _STEM_CACHE.get((symbol, prefix))
    if stem is None:
        stem = encode_tuple((symbol, len(prefix), *prefix))
        if len(_STEM_CACHE) < _KEY_CACHE_CAP:
            _STEM_CACHE[symbol, prefix] = stem
    suffix = _N_CACHE.get(n)
    if suffix is None:
        suffix = encode_tuple((n,))
        if len(_N_CACHE) < _KEY_CACHE_CAP:
            _N_CACHE[n] = suffix
    return len(stem) + len(suffix)


def decode_node_key(key: bytes) -> tuple[Symbol, Prefix, int]:
    """Inverse of :func:`node_key`."""
    parts = decode_tuple(key)
    symbol = parts[0]
    plen = parts[1]
    return symbol, tuple(parts[2 : 2 + plen]), parts[2 + plen]


def _group_key_tail(
    key: bytes, stem: bytes, leading: tuple[str, ...], extra: int
) -> tuple[Prefix, int]:
    """``(prefix, n)`` of one key from a D-Ancestor group scan.

    Every key of the scanned range shares the ``(symbol, prefix_len,
    *leading)`` stem (the scan bounds guarantee it for well-formed keys),
    so only the per-key tail — ``extra`` wildcard labels plus ``n`` — is
    decoded, instead of re-decoding the whole tuple per entry.  The
    stem-mismatch fallback keeps malformed keys on the slow exact path.
    """
    if key.startswith(stem):
        base = len(stem)
        if extra:
            tail, off = decode_items(key, base, extra)
            return leading + tail, decode_items(key, off, 1)[0][0]
        return leading, decode_items(key, base, 1)[0][0]
    _, prefix, n = decode_node_key(key)
    return prefix, n


class CombinedTreeHost:
    """Matching-host implementation over the two B+Trees.

    Subclasses (RIST/ViST indexes) own ``self.tree`` (combined) and
    ``self.docid_tree`` and implement :meth:`_scope_of`.

    When ``self.postings`` holds a :class:`PostingCache`, D-Ancestor key
    groups are decoded once and kept resident, and every lookup becomes
    two bisects over the cached group (the on-disk layout is untouched;
    hosts must call :meth:`_invalidate_postings` when entries appear or
    disappear).  With ``postings = None`` every lookup is a fresh B+Tree
    range scan — the paper's original access path.
    """

    tree: BPlusTree
    docid_tree: BPlusTree
    postings: Optional[PostingCache] = None

    # -- MatchingHost ------------------------------------------------------

    def root_scope(self) -> Scope:
        raise NotImplementedError

    def _scope_of(self, n: int, value: bytes) -> Optional[Scope]:
        """Decode an entry value to its scope; ``None`` to hide the entry."""
        raise NotImplementedError

    def max_prefix_len(self) -> int:
        value = self.tree.get(META_MAX_DEPTH_KEY)
        if value is None:
            return 0
        return decode_uint(value)[0]

    def _bump_max_prefix_len(self, depth: int) -> None:
        if depth > self.max_prefix_len():
            self.tree.put(META_MAX_DEPTH_KEY, encode_uint(depth))

    def iter_candidates(
        self,
        symbol: Symbol,
        prefix_len: int,
        leading: tuple[str, ...],
        within: Scope,
    ) -> Iterator[tuple[Prefix, Scope]]:
        if self.postings is not None:
            yield from self.fetch_postings(symbol, prefix_len, leading).select(within)
            return
        stem = encode_tuple((symbol, prefix_len, *leading))
        if prefix_len == len(leading):
            # concrete prefix: bound the scan by the S-Ancestor range too
            lo = stem + encode_tuple((within.n + 1,))
            hi = stem + encode_tuple((within.end,))
            for key, value in self.tree.range(lo, hi, include_hi=True):
                prefix, n = _group_key_tail(key, stem, leading, 0)
                scope = self._scope_of(n, value)
                if scope is not None:
                    yield prefix, scope
            return
        extra = prefix_len - len(leading)
        for key, value in self.tree.range(stem, prefix_range_end(stem)):
            prefix, n = _group_key_tail(key, stem, leading, extra)
            if not within.contains_descendant_id(n):
                continue
            scope = self._scope_of(n, value)
            if scope is not None:
                yield prefix, scope

    def fetch_postings(
        self, symbol: Symbol, prefix_len: int, leading: tuple[str, ...]
    ) -> PostingGroup:
        """The whole D-Ancestor key group, sorted by ``n`` (cached if enabled).

        This is the batched-matching entry point: one fetch serves every
        scope restriction over the group via :meth:`PostingGroup.select`.
        """
        if self.postings is None:
            return PostingGroup(self._load_postings(symbol, prefix_len, leading))
        return self.postings.lookup(
            symbol,
            prefix_len,
            leading,
            lambda: self._load_postings(symbol, prefix_len, leading),
        )

    def _load_postings(
        self, symbol: Symbol, prefix_len: int, leading: tuple[str, ...]
    ) -> Iterator[tuple[Prefix, Scope]]:
        """Range-scan one D-Ancestor key group out of the combined tree."""
        stem = encode_tuple((symbol, prefix_len, *leading))
        extra = prefix_len - len(leading)
        for key, value in self.tree.range(stem, prefix_range_end(stem)):
            prefix, n = _group_key_tail(key, stem, leading, extra)
            scope = self._scope_of(n, value)
            if scope is not None:
                yield prefix, scope

    def _invalidate_postings(self, symbol: Symbol, prefix: Prefix) -> None:
        """Drop cached groups covering ``(symbol, prefix)`` entries."""
        if self.postings is not None:
            self.postings.invalidate_entry(symbol, prefix)

    def _register_host_metrics(self) -> None:
        """Attach the host's cache/tree/pager counters to ``self.metrics``.

        Called by the index constructors once the trees, matcher and
        posting cache exist.  Everything is registered as a pull-only
        source: the registry reads these objects at snapshot time and the
        hot paths keep their plain attribute increments.
        """
        metrics = getattr(self, "metrics", None)
        if metrics is None:  # host built without XmlIndexBase plumbing
            return
        matcher = getattr(self, "_matcher", None)
        if matcher is not None:
            # read through the matcher, not the stats object: each match
            # publishes a fresh MatchStats bundle (swapped by reference),
            # so a captured object would go stale after the first query
            metrics.register("match", lambda: matcher.stats.snapshot())
        if self.postings is not None:
            postings = self.postings
            metrics.register("postings", postings.stats)
            metrics.register("postings.groups", lambda: len(postings))
        pager = self.tree.pager
        metrics.register("pager.reads", lambda: pager.read_count)
        pool_stats = getattr(pager, "stats", None)
        if pool_stats is not None:
            metrics.register("buffer_pool", pool_stats)
        for name, tree in (("combined", self.tree), ("docid", self.docid_tree)):
            # tree.stats() walks the tree, so it joins the dump as a lazy
            # callable — paid only when somebody snapshots the registry
            metrics.register(
                f"tree.{name}", lambda tree=tree: tree.stats().snapshot()
            )

    def cache_stats(self) -> dict:
        """Query-path cache counters: postings, B+Tree descents, buffer pool."""
        out: dict = {}
        if self.postings is not None:
            stats = self.postings.stats
            out["postings"] = {
                "groups": len(self.postings),
                "hits": stats.hits,
                "misses": stats.misses,
                "invalidations": stats.invalidations,
                "evictions": stats.evictions,
                "hit_rate": stats.hit_rate,
            }
        out["descent"] = {
            name: {
                "hits": tree.descent_hits,
                "misses": tree.descent_misses,
                "hit_rate": tree.descent_hit_rate,
            }
            for name, tree in (("combined", self.tree), ("docid", self.docid_tree))
        }
        pager = self.tree.pager
        if isinstance(pager, BufferPool):
            stats = pager.stats
            out["buffer_pool"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "writebacks": stats.writebacks,
                "hit_rate": stats.hit_rate,
            }
        return out

    def iter_doc_ids(self, within: Scope) -> Iterator[int]:
        lo, hi = within.doc_range()
        for _, value in self.docid_tree.range(
            encode_tuple((lo,)), encode_tuple((hi,)), include_hi=True
        ):
            yield decode_uint(value)[0]

    # -- DocId tree helpers --------------------------------------------------

    def _attach_doc(self, n: int, doc_id: int) -> None:
        self.docid_tree.insert(encode_tuple((n,)), encode_uint(doc_id))

    def _detach_doc(self, n: int, doc_id: int) -> int:
        return self.docid_tree.delete(encode_tuple((n,)), encode_uint(doc_id))
