"""Non-contiguous subsequence matching (paper Algorithm 2).

Matching walks the query sequence left to right.  At each step the
current match position is a virtual-suffix-tree scope; the next query
item is resolved through the D-Ancestor keys (symbol + prefix), the
matching nodes are narrowed to descendants of the current scope via the
S-Ancestor range ``(n, n + size]``, and the walk recurses.  At the end,
every document id in the closed range ``[n, n + size]`` of the final
node is an answer.

Wildcards: a ``*`` or ``//`` in a query prefix makes the D-Ancestor
lookup a *range* scan — same symbol, prefix length fixed (``*``) or swept
over the plausible lengths (``//``), known leading labels as the scan
prefix (Section 3.3, "Handling Wild Cards").  The first match binds the
wildcard; later items reuse the binding ("the matching of ``(L, P*)``
will instantiate the ``*`` in ``(v2, P*L)``").

:class:`SequenceMatcher` is shared by RIST and ViST — they differ only in
how entries were labelled, which the host index hides behind
:meth:`MatchingHost.iter_candidates` / :meth:`MatchingHost.iter_doc_ids`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Protocol

from repro.index.postings import PostingGroup
from repro.kernels import packed_enabled
from repro.labeling.scope import Scope
from repro.obs.metrics import MetricSet
from repro.query.ast import Dslash, PrefixToken, QueryItem, QuerySequence, Star
from repro.sequence.encoding import Prefix

Bindings = tuple[tuple[int, tuple[str, ...]], ...]  # wid -> bound labels, sorted

__all__ = [
    "MatchingHost",
    "SequenceMatcher",
    "MatchStats",
    "match_prefix_pattern",
    "resolve_pattern",
]


@dataclass
class MatchStats(MetricSet):
    """Index-traversal effort of the most recent match.

    ``range_queries`` counts D/S-Ancestor lookups issued (the paper's
    "index traversals" — one per search state and prefix length, whether
    or not the batching layer had to touch the index for it);
    ``candidates`` counts nodes those lookups yielded; ``search_states``
    counts distinct ``(item, scope)`` positions visited; ``final_nodes``
    is the size of the answer frontier.

    The query-path performance layer adds three counters:
    ``batched_states`` — lookups served from a group another state at the
    same frontier level already fetched; ``cache_hits``/``cache_misses``
    — posting-cache traffic of this match (zero when the host has no
    posting cache).
    """

    range_queries: int = 0
    candidates: int = 0
    search_states: int = 0
    final_nodes: int = 0
    batched_states: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def reset(self) -> None:
        self.range_queries = 0
        self.candidates = 0
        self.search_states = 0
        self.final_nodes = 0
        self.batched_states = 0
        self.cache_hits = 0
        self.cache_misses = 0


def _bind(bindings: Bindings, wid: int, labels: tuple[str, ...]) -> Bindings:
    return tuple(sorted(dict(bindings) | {wid: labels}.items()))


def match_prefix_pattern(
    pattern: tuple[PrefixToken, ...],
    data_prefix: Prefix,
    bindings: Bindings = (),
) -> list[Bindings]:
    """All binding sets under which ``pattern`` matches ``data_prefix``.

    ``str`` tokens must match exactly; a bound :class:`Star`/:class:`Dslash`
    must reproduce its labels; an unbound ``Star`` binds one label and an
    unbound ``Dslash`` binds zero or more.  Multiple unbound ``//`` can
    split the data prefix several ways, so a list is returned.
    """
    bound = dict(bindings)
    results: list[Bindings] = []

    def walk(ti: int, di: int, current: dict[int, tuple[str, ...]]) -> None:
        if ti == len(pattern):
            if di == len(data_prefix):
                results.append(tuple(sorted(current.items())))
            return
        token = pattern[ti]
        if isinstance(token, str):
            if di < len(data_prefix) and data_prefix[di] == token:
                walk(ti + 1, di + 1, current)
            return
        if isinstance(token, Star):
            if token.wid in current:
                labels = current[token.wid]
                if data_prefix[di : di + len(labels)] == labels:
                    walk(ti + 1, di + len(labels), current)
                return
            if di < len(data_prefix):
                nxt = dict(current)
                nxt[token.wid] = (data_prefix[di],)
                walk(ti + 1, di + 1, nxt)
            return
        assert isinstance(token, Dslash)
        if token.wid in current:
            labels = current[token.wid]
            if data_prefix[di : di + len(labels)] == labels:
                walk(ti + 1, di + len(labels), current)
            return
        for take in range(len(data_prefix) - di + 1):
            nxt = dict(current)
            nxt[token.wid] = tuple(data_prefix[di : di + take])
            walk(ti + 1, di + take, nxt)

    walk(0, 0, bound)
    # Dedupe: distinct walks can yield identical binding sets.
    seen: set[Bindings] = set()
    unique = []
    for binding in results:
        if binding not in seen:
            seen.add(binding)
            unique.append(binding)
    return unique


def resolve_pattern(
    pattern: tuple[PrefixToken, ...], bindings: Bindings
) -> tuple[tuple[str, ...], tuple[PrefixToken, ...]]:
    """Split a pattern into its concrete leading labels and the open tail.

    Bound wildcards are substituted first, so the leading part is as long
    as the current bindings allow — it becomes the D-Ancestor scan prefix.
    """
    bound = dict(bindings)
    leading: list[str] = []
    tail: list[PrefixToken] = []
    open_tail = False
    for token in pattern:
        if not open_tail:
            if isinstance(token, str):
                leading.append(token)
                continue
            if token.wid in bound:
                leading.extend(bound[token.wid])
                continue
            open_tail = True
        if isinstance(token, (Star, Dslash)) and token.wid in bound:
            tail.extend(bound[token.wid])
        else:
            tail.append(token)
    return tuple(leading), tuple(tail)


class MatchingHost(Protocol):
    """What an index must expose for :class:`SequenceMatcher` to run."""

    def root_scope(self) -> Scope:
        """Scope of the virtual suffix tree root."""

    def max_prefix_len(self) -> int:
        """Longest item prefix in the index (bounds ``//`` sweeps)."""

    def iter_candidates(
        self,
        symbol,
        prefix_len: int,
        leading: tuple[str, ...],
        within: Scope,
    ) -> Iterator[tuple[Prefix, Scope]]:
        """Nodes with the given symbol/prefix-length whose prefix starts
        with ``leading`` and whose id lies in ``(within.n, within.end]``."""

    def iter_doc_ids(self, within: Scope) -> Iterator[int]:
        """Document ids attached in the closed range ``[n, n + size]``."""


GroupMemo = dict[tuple, PostingGroup]


class SequenceMatcher:
    """Algorithm 2, parameterised by a :class:`MatchingHost`.

    By default the walk is a *batched level-by-level frontier*: all live
    states at one query position are expanded together, and states that
    resolve to the same D-Ancestor key ``(symbol, prefix_len, leading)``
    share a single posting fetch per level (turning O(states × scans)
    into O(distinct keys) index traversals).  ``batched=False`` keeps the
    original depth-first recursion — same answers, used as the reference
    implementation in equivalence tests.

    ``packed`` selects the *columnar* frontier for the batched walk: the
    per-level expansion consumes :class:`PostingGroup`'s packed columns
    directly (``select_span`` + index arithmetic over ``ns``/``ends``/
    ``prefixes``) and carries states as ``(n, end, bindings)`` int
    triples, never materialising ``(Prefix, Scope)`` tuples per posting.
    ``packed=None`` (default) follows the ``REPRO_PACKED`` environment
    toggle at query time; both settings produce identical answers and
    identical :class:`MatchStats`.
    """

    def __init__(
        self,
        host: MatchingHost,
        *,
        batched: bool = True,
        packed: Optional[bool] = None,
    ) -> None:
        self.host = host
        self.batched = batched
        self.packed = packed
        # Effort of the most recent *completed* match.  Each match runs
        # against its own private MatchStats (threaded through the call
        # chain, never stored on self mid-flight) and publishes it here
        # in one reference assignment at the end — concurrent matches
        # cannot clobber each other's counters, and readers of
        # `match_stats` always see one internally consistent bundle.
        self.stats = MatchStats()

    def match(self, query: QuerySequence, guard=None, trace=None) -> set[int]:
        """All document ids containing the query sequence."""
        finals = self.final_scopes(query, guard, trace)
        if trace is not None:
            pager = getattr(self.host, "_pager", None)
            pages0 = pager.read_count if pager is not None else 0
            span = trace.begin("docid-output", final_scopes=len(finals))
        results: set[int] = set()
        for scope in finals:
            if guard is not None:
                guard.step()
            results.update(self.host.iter_doc_ids(scope))
        if guard is not None:
            guard.check()  # count the reads of the trailing DocId fetches
        if trace is not None:
            trace.end(
                span,
                doc_ids=len(results),
                page_reads=(pager.read_count - pages0) if pager is not None else 0,
            )
        return results

    def final_scopes(self, query: QuerySequence, guard=None, trace=None) -> list[Scope]:
        """Scopes of the nodes matching the query's last item.

        This is the matching phase *without* the DocId output phase —
        the quantity the paper times in Figure 10 ("does not include the
        time spent in data output after each range query on the DocId
        B+Tree").  ``match`` unions the DocId ranges of these scopes.
        """
        stats = MatchStats()  # private to this call; published at the end
        if guard is not None:
            guard.check()
        postings = getattr(self.host, "postings", None)
        # cache-delta attribution is approximate under concurrency (the
        # posting cache is shared, so other in-flight matches' traffic
        # lands in the window too); exact for single-threaded runs
        before = (
            (postings.stats.hits, postings.stats.misses)
            if postings is not None
            else None
        )
        if self.batched:
            packed = packed_enabled() if self.packed is None else self.packed
            if packed:
                finals = self._final_scopes_packed(query, stats, guard, trace)
            else:
                finals = self._final_scopes_batched(query, stats, guard, trace)
        else:
            finals = self._final_scopes_recursive(query, stats, guard, trace)
        if before is not None:
            stats.cache_hits = postings.stats.hits - before[0]
            stats.cache_misses = postings.stats.misses - before[1]
        stats.final_nodes = len(finals)
        self.stats = stats  # one reference assignment: match_stats readers
        return finals  # never see a half-filled bundle

    def _final_scopes_batched(
        self, query: QuerySequence, stats: MatchStats, guard, trace
    ) -> list[Scope]:
        """Level-by-level frontier expansion with shared posting fetches."""
        items = query.items
        max_len = self.host.max_prefix_len()
        if trace is not None:
            pager = getattr(self.host, "_pager", None)
            postings = getattr(self.host, "postings", None)
        frontier: list[tuple[Scope, Bindings]] = [(self.host.root_scope(), ())]
        for level, qi in enumerate(items):
            if trace is not None:
                span = trace.begin(
                    f"level {level}", item=str(qi), frontier_in=len(frontier)
                )
                rq0, cand0 = stats.range_queries, stats.candidates
                bat0 = stats.batched_states
                pages0 = pager.read_count if pager is not None else 0
                if postings is not None:
                    hits0, misses0 = postings.stats.hits, postings.stats.misses
            groups: GroupMemo = {}
            next_frontier: list[tuple[Scope, Bindings]] = []
            seen: set[tuple[int, Bindings]] = set()
            for scope, bindings in frontier:
                stats.search_states += 1
                if guard is not None:
                    guard.step()
                for child, new_bindings in self._candidates(
                    qi, scope, bindings, max_len, stats, guard, groups
                ):
                    stats.candidates += 1
                    state = (child.n, new_bindings)
                    if state not in seen:
                        seen.add(state)
                        next_frontier.append((child, new_bindings))
            frontier = next_frontier
            if trace is not None:
                meta = {
                    "frontier_out": len(frontier),
                    "range_queries": stats.range_queries - rq0,
                    "candidates": stats.candidates - cand0,
                    "batched": stats.batched_states - bat0,
                }
                if pager is not None:
                    meta["page_reads"] = pager.read_count - pages0
                if postings is not None:
                    meta["cache_hits"] = postings.stats.hits - hits0
                    meta["cache_misses"] = postings.stats.misses - misses0
                trace.end(span, **meta)
            if not frontier:
                break
        finals: list[Scope] = []
        seen_finals: set[int] = set()
        for scope, _ in frontier:
            if scope.n not in seen_finals:
                seen_finals.add(scope.n)
                finals.append(scope)
        return finals

    def _final_scopes_packed(
        self, query: QuerySequence, stats: MatchStats, guard, trace
    ) -> list[Scope]:
        """Columnar variant of the batched frontier (same answers/stats).

        States are ``(n, end, bindings)`` int triples and expansion reads
        the posting columns in place — no per-posting ``Scope``/tuple
        allocation until the final frontier is turned back into scopes.
        """
        items = query.items
        max_len = self.host.max_prefix_len()
        if trace is not None:
            pager = getattr(self.host, "_pager", None)
            postings = getattr(self.host, "postings", None)
        root = self.host.root_scope()
        frontier: list[tuple[int, int, Bindings]] = [(root.n, root.end, ())]
        for level, qi in enumerate(items):
            if trace is not None:
                span = trace.begin(
                    f"level {level}", item=str(qi), frontier_in=len(frontier)
                )
                rq0, cand0 = stats.range_queries, stats.candidates
                bat0 = stats.batched_states
                pages0 = pager.read_count if pager is not None else 0
                if postings is not None:
                    hits0, misses0 = postings.stats.hits, postings.stats.misses
            groups: GroupMemo = {}
            next_frontier: list[tuple[int, int, Bindings]] = []
            seen: set[tuple[int, Bindings]] = set()
            for n, end, bindings in frontier:
                stats.search_states += 1
                if guard is not None:
                    guard.step()
                self._expand_packed(
                    qi, n, end, bindings, max_len, stats, guard, groups, seen,
                    next_frontier,
                )
            frontier = next_frontier
            if trace is not None:
                meta = {
                    "frontier_out": len(frontier),
                    "range_queries": stats.range_queries - rq0,
                    "candidates": stats.candidates - cand0,
                    "batched": stats.batched_states - bat0,
                }
                if pager is not None:
                    meta["page_reads"] = pager.read_count - pages0
                if postings is not None:
                    meta["cache_hits"] = postings.stats.hits - hits0
                    meta["cache_misses"] = postings.stats.misses - misses0
                trace.end(span, **meta)
            if not frontier:
                break
        finals: list[Scope] = []
        seen_finals: set[int] = set()
        for n, end, _ in frontier:
            if n not in seen_finals:
                seen_finals.add(n)
                finals.append(Scope(n, end - n))
        return finals

    def _expand_packed(
        self,
        qi: QueryItem,
        n: int,
        end: int,
        bindings: Bindings,
        max_len: int,
        stats: MatchStats,
        guard,
        groups: GroupMemo,
        seen: set[tuple[int, Bindings]],
        out: list[tuple[int, int, Bindings]],
    ) -> None:
        """Expand one packed state over the posting columns, in place.

        Mirrors ``_candidates`` + the dedup loop of the tuple frontier:
        identical counter increments, identical candidate order, identical
        ``(child_n, bindings)`` dedup — only the representation differs.
        """
        leading, tail = resolve_pattern(qi.prefix, bindings)
        if not tail:
            # fully concrete prefix: a single D-Ancestor key, scope range
            stats.range_queries += 1
            if guard is not None:
                guard.step()
            group = self._group(qi.symbol, len(leading), leading, groups, stats)
            lo, hi = group.select_span(n, end)
            ns, ends = group.ns, group.ends
            for i in range(lo, hi):
                stats.candidates += 1
                child_n = ns[i]
                state = (child_n, bindings)
                if state not in seen:
                    seen.add(state)
                    out.append((child_n, ends[i], bindings))
            return
        min_extra = sum(1 for t in tail if isinstance(t, (str, Star)))
        if all(not isinstance(t, Dslash) for t in tail):
            lengths = [len(leading) + min_extra]
        else:
            lengths = range(len(leading) + min_extra, max_len + 1)
        nlead = len(leading)
        for plen in lengths:
            stats.range_queries += 1
            if guard is not None:
                guard.step()
            group = self._group(qi.symbol, plen, leading, groups, stats)
            lo, hi = group.select_span(n, end)
            ns, ends, prefixes = group.ns, group.ends, group.prefixes
            for i in range(lo, hi):
                child_n = ns[i]
                child_end = ends[i]
                for new_bindings in match_prefix_pattern(
                    tail, prefixes[i][nlead:], bindings
                ):
                    stats.candidates += 1
                    state = (child_n, new_bindings)
                    if state not in seen:
                        seen.add(state)
                        out.append((child_n, child_end, new_bindings))

    def _final_scopes_recursive(
        self, query: QuerySequence, stats: MatchStats, guard, trace
    ) -> list[Scope]:
        """The paper's depth-first recursion (reference implementation)."""
        finals: list[Scope] = []
        seen_finals: set[int] = set()
        visited: set[tuple[int, int, Bindings]] = set()
        items = query.items
        max_len = self.host.max_prefix_len()
        if trace is not None:
            pager = getattr(self.host, "_pager", None)
            pages0 = pager.read_count if pager is not None else 0
            walk_span = trace.begin("recursive-walk", items=len(items))

        def search(scope: Scope, i: int, bindings: Bindings) -> None:
            if i == len(items):
                if scope.n not in seen_finals:
                    seen_finals.add(scope.n)
                    finals.append(scope)
                return
            state = (i, scope.n, bindings)
            if state in visited:
                return
            visited.add(state)
            stats.search_states += 1
            if guard is not None:
                guard.step()
            qi = items[i]
            for child_scope, new_bindings in self._candidates(
                qi, scope, bindings, max_len, stats, guard
            ):
                stats.candidates += 1
                search(child_scope, i + 1, new_bindings)

        try:
            search(self.host.root_scope(), 0, ())
        finally:
            if trace is not None:
                trace.end(
                    walk_span,
                    search_states=stats.search_states,
                    range_queries=stats.range_queries,
                    candidates=stats.candidates,
                    final_scopes=len(finals),
                    page_reads=(
                        (pager.read_count - pages0) if pager is not None else 0
                    ),
                )
        return finals

    # -- candidate generation ---------------------------------------------

    def _candidates(
        self,
        qi: QueryItem,
        scope: Scope,
        bindings: Bindings,
        max_len: int,
        stats: MatchStats,
        guard,
        groups: Optional[GroupMemo] = None,
    ) -> Iterator[tuple[Scope, Bindings]]:
        leading, tail = resolve_pattern(qi.prefix, bindings)
        if not tail:
            # fully concrete prefix: a single D-Ancestor key, scope range
            stats.range_queries += 1
            if guard is not None:
                guard.step()
            for _, child in self._lookup(
                qi.symbol, len(leading), leading, scope, groups, stats
            ):
                yield child, bindings
            return
        min_extra = sum(1 for t in tail if isinstance(t, (str, Star)))
        if all(not isinstance(t, Dslash) for t in tail):
            lengths = [len(leading) + min_extra]
        else:
            lengths = range(len(leading) + min_extra, max_len + 1)
        for plen in lengths:
            stats.range_queries += 1
            if guard is not None:
                guard.step()
            for data_prefix, child in self._lookup(
                qi.symbol, plen, leading, scope, groups, stats
            ):
                for new_bindings in match_prefix_pattern(
                    tail, data_prefix[len(leading) :], bindings
                ):
                    yield child, new_bindings

    def _lookup(
        self,
        symbol,
        prefix_len: int,
        leading: tuple[str, ...],
        scope: Scope,
        groups: Optional[GroupMemo],
        stats: MatchStats,
    ) -> Iterable[tuple[Prefix, Scope]]:
        """One D/S-Ancestor lookup, batched through the level memo."""
        if groups is None:
            return self.host.iter_candidates(symbol, prefix_len, leading, scope)
        group = self._group(symbol, prefix_len, leading, groups, stats)
        return group.select(scope)

    def _group(
        self,
        symbol,
        prefix_len: int,
        leading: tuple[str, ...],
        groups: GroupMemo,
        stats: MatchStats,
    ) -> PostingGroup:
        """Fetch a posting group through the per-level memo."""
        key = (symbol, prefix_len, leading)
        group = groups.get(key)
        if group is None:
            groups[key] = group = self._fetch_group(symbol, prefix_len, leading)
        else:
            stats.batched_states += 1
        return group

    def _fetch_group(
        self, symbol, prefix_len: int, leading: tuple[str, ...]
    ) -> PostingGroup:
        fetch = getattr(self.host, "fetch_postings", None)
        if fetch is not None:
            return fetch(symbol, prefix_len, leading)
        # Host implements only the narrow protocol: collect the group by
        # scanning under the root scope (every data node lies inside it).
        return PostingGroup(
            self.host.iter_candidates(
                symbol, prefix_len, leading, self.host.root_scope()
            )
        )
