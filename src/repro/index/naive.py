"""The naïve suffix-tree algorithm (paper Section 3.2, Algorithm 1).

Matching walks the materialised trie directly: to extend a partial match
at node ``x`` with query item ``q_i``, it scans *every* descendant of
``x`` (the S-Ancestorship check) and keeps those whose ``(symbol,
prefix)`` matches ``q_i`` (the D-Ancestorship check).  This is the
strawman RIST/ViST improve on — "searching for nodes satisfying both
S-Ancestorship and D-Ancestorship is extremely costly since we need to
traverse a large portion of the subtree for each match" — and the
ablation benchmark measures exactly that gap.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.index.base import XmlIndexBase
from repro.index.matching import match_prefix_pattern, resolve_pattern
from repro.index.trie import SequenceTrie, TrieNode
from repro.query.ast import QueryItem, QuerySequence
from repro.sequence.encoding import StructureEncodedSequence
from repro.sequence.transform import SequenceEncoder
from repro.storage.docstore import DocStore

__all__ = ["NaiveIndex"]


class NaiveIndex(XmlIndexBase):
    """Algorithm 1 on the in-memory sequence trie."""

    def __init__(
        self,
        encoder: Optional[SequenceEncoder] = None,
        docstore: Optional[DocStore] = None,
        *,
        source_store=None,
        max_alternatives: int = 24,
    ) -> None:
        super().__init__(
            encoder, docstore,
            source_store=source_store, max_alternatives=max_alternatives,
        )
        self.trie = SequenceTrie()
        self.metrics.register("trie.nodes", lambda: self.trie.node_count)

    def add_sequence(self, sequence: StructureEncodedSequence) -> int:
        with self.rwlock.write():
            doc_id = self.docstore.add(self._sequence_to_payload(sequence))
            self.trie.insert(sequence, doc_id)
            return doc_id

    def match_sequence(self, query_sequence: QuerySequence, guard=None, trace=None) -> set[int]:
        results: set[int] = set()
        items = query_sequence.items
        states = 0

        def naive_search(node: TrieNode, i: int, bindings) -> None:
            nonlocal states
            states += 1
            if guard is not None:
                guard.step()
            if i == len(items):
                results.update(node.doc_ids)
                for descendant in node.descendants():
                    results.update(descendant.doc_ids)
                return
            qi = items[i]
            for child, new_bindings in self._matching_descendants(node, qi, bindings):
                naive_search(child, i + 1, new_bindings)

        span = (
            trace.begin("naive-walk", items=len(items))
            if trace is not None
            else None
        )
        naive_search(self.trie.root, 0, ())
        if span is not None:
            trace.end(span, search_states=states, doc_ids=len(results))
        return results

    def _matching_descendants(
        self, node: TrieNode, qi: QueryItem, bindings
    ) -> Iterator[tuple[TrieNode, tuple]]:
        """Descendants of ``node`` whose item matches ``q_i``."""
        leading, tail = resolve_pattern(qi.prefix, bindings)
        for candidate in node.descendants():
            item = candidate.item
            assert item is not None
            if item.symbol != qi.symbol:
                continue
            if item.prefix[: len(leading)] != leading:
                continue
            if not tail:
                if len(item.prefix) == len(leading):
                    yield candidate, bindings
                continue
            for new_bindings in match_prefix_pattern(
                tail, item.prefix[len(leading) :], bindings
            ):
                yield candidate, new_bindings
