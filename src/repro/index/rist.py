"""RIST: the statically-labelled index (paper Section 3.3).

Construction takes three steps (Figure 6):

1. insert every structure-encoded sequence into the suffix-tree-like trie;
2. label the trie by a preorder traversal (``n`` = preorder number,
   ``size`` = descendant count);
3. move every node into the combined D-Ancestor/S-Ancestor B+Tree and
   every attached document id into the DocId B+Tree.

Because the labels are static, RIST supports additions only until
:meth:`RistIndex.finalize` (or the first query) freezes it — the exact
limitation that motivates ViST.  Its matching is byte-for-byte the same
Algorithm 2 as ViST's.
"""

from __future__ import annotations

from typing import Optional

from repro.doc.schema import Schema
from repro.errors import IndexStateError
from repro.index.base import XmlIndexBase
from repro.index.matching import SequenceMatcher
from repro.index.postings import PostingCache
from repro.index.store import CombinedTreeHost, node_key
from repro.index.trie import SequenceTrie
from repro.labeling.scope import Scope
from repro.query.ast import QuerySequence
from repro.sequence.encoding import StructureEncodedSequence
from repro.sequence.transform import SequenceEncoder
from repro.storage.bptree import BPlusTree, TreeStats
from repro.storage.docstore import DocStore
from repro.storage.pager import MemoryPager, Pager
from repro.storage.serialization import decode_uint, encode_tuple, encode_uint

__all__ = ["RistIndex"]


class RistIndex(XmlIndexBase, CombinedTreeHost):
    """Static virtual-suffix-tree index over B+Trees."""

    def __init__(
        self,
        encoder: Optional[SequenceEncoder] = None,
        docstore: Optional[DocStore] = None,
        pager: Optional[Pager] = None,
        *,
        source_store=None,
        max_alternatives: int = 24,
        posting_cache_size: int = 512,
        batched: bool = True,
        packed: Optional[bool] = None,
    ) -> None:
        XmlIndexBase.__init__(
            self, encoder, docstore,
            source_store=source_store, max_alternatives=max_alternatives,
        )
        self._pager = pager if pager is not None else MemoryPager()
        self.tree = BPlusTree(self._pager, slot=0)
        self.docid_tree = BPlusTree(self._pager, slot=1)
        self.postings = PostingCache(posting_cache_size) if posting_cache_size else None
        self._matcher = SequenceMatcher(self, batched=batched, packed=packed)
        self.trie: Optional[SequenceTrie] = SequenceTrie()
        self._root_scope: Optional[Scope] = None
        self._register_host_metrics()
        self.metrics.register("trie.nodes", self.trie_node_count)

    # -- ingestion ---------------------------------------------------------

    def add_sequence(self, sequence: StructureEncodedSequence) -> int:
        with self.rwlock.write():
            if self.trie is None or self._root_scope is not None:
                raise IndexStateError(
                    "RIST labels are static: no additions after finalize()/query(); "
                    "rebuild the index or use VistIndex for dynamic data"
                )
            doc_id = self.docstore.add(self._sequence_to_payload(sequence))
            self.trie.insert(sequence, doc_id)
            return doc_id

    def finalize(self) -> None:
        """Label the trie and bulk-load the B+Trees (steps 2 and 3).

        Entries are sorted once and loaded bottom-up — static labelling
        makes RIST a batch build, so it gets the batch-build fast path.
        """
        if self._root_scope is not None:
            # fast path out of the lazy call sites (root_scope,
            # match_sequence): already finalized, no lock needed — and
            # must not be taken, since those run inside read sections
            return
        with self.rwlock.write():
            self._finalize_locked()

    def _prepare_for_query(self) -> None:
        # the first query finalizes the trie — a structural *write* that
        # must not happen inside the read section base.query is about to
        # open; run it under the write lock up front
        self.finalize()

    def _finalize_locked(self) -> None:
        if self._root_scope is not None:  # double-checked under the lock
            return
        if self.trie is None:
            raise IndexStateError("index already finalized and trie released")
        self.trie.assign_static_labels()
        assert self.trie.root.scope is not None
        self._root_scope = self.trie.root.scope
        entries: list[tuple[bytes, bytes]] = []
        doc_entries: list[tuple[bytes, bytes]] = []
        for node in self.trie.nodes():
            assert node.item is not None and node.scope is not None
            entries.append(
                (
                    node_key(node.item.symbol, node.item.prefix, node.scope.n),
                    encode_uint(node.scope.size),
                )
            )
            for doc_id in node.doc_ids:
                doc_entries.append(
                    (encode_tuple((node.scope.n,)), encode_uint(doc_id))
                )
        entries.sort()
        doc_entries.sort()
        self.tree.bulk_load(entries)
        self.docid_tree.bulk_load(doc_entries)
        self._bump_max_prefix_len(self.trie.max_depth)
        if self.postings is not None:
            self.postings.clear()  # the trees were rebuilt wholesale

    def release_trie(self) -> None:
        """Drop the in-memory trie (queries only need the B+Trees).

        RIST "maintains a suffix tree, which is of size O(NL)" — keeping
        it is what makes RIST larger than ViST in Figure 11(a); releasing
        it is only safe once no more documents will be added.
        """
        self.finalize()
        self.trie = None

    # -- matching -----------------------------------------------------------

    def match_sequence(self, query_sequence: QuerySequence, guard=None, trace=None) -> set[int]:
        self.finalize()
        return self._matcher.match(query_sequence, guard, trace)

    @property
    def match_stats(self):
        """MatchStats of the most recent :meth:`match_sequence` call."""
        return self._matcher.stats

    def root_scope(self) -> Scope:
        if self._root_scope is None:
            self.finalize()
        assert self._root_scope is not None
        return self._root_scope

    def _scope_of(self, n: int, value: bytes) -> Optional[Scope]:
        return Scope(n, decode_uint(value)[0])

    # -- measurements -----------------------------------------------------------

    def index_stats(self) -> dict[str, TreeStats]:
        """Per-tree size statistics (Figure 11(a) reports their sum)."""
        return {"combined": self.tree.stats(), "docid": self.docid_tree.stats()}

    def trie_node_count(self) -> int:
        """Size of the materialised suffix tree RIST must keep around."""
        return self.trie.node_count if self.trie is not None else 0
