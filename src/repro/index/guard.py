"""Query guards and index health tracking.

A :class:`QueryGuard` puts cooperative limits on one query evaluation: a
wall-clock deadline, a matcher-step budget, a page-read budget, and an
external cancellation flag.  The matching layer calls :meth:`QueryGuard.step`
at its loop points (one step per search state expanded and per D/S-Ancestor
range query issued), so a runaway query — a pathological wildcard pattern, a
corrupted tree that loops — is interrupted within a bounded amount of work
rather than running forever.  A guard covers **one query at a time**: the
index calls :meth:`QueryGuard.start` when evaluation begins, which resets
every piece of per-query state — the step count, the page-read baseline,
the lazily-armed deadline clock *and* a pending :meth:`QueryGuard.cancel`
— so reusing a guard object across sequential queries is safe and a
cancellation delivered to one query can never poison the next
(:meth:`QueryGuard.reset` is the standalone form).  Concurrent queries
must each use their own guard (the executor builds a fresh one per
submission).

:class:`IndexHealth` records what the corruption-defense layer observed.
An index starts ``ok``; the first :class:`~repro.errors.CorruptionError`
raised while answering a query flips it to ``read-suspect`` and the query
is re-answered through the docstore-backed reference evaluator (degraded
mode, see :meth:`XmlIndexBase.query`).  ``repro stats`` surfaces the
report so an operator knows to run ``repro scrub`` / ``repro salvage``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import (
    QueryBudgetExceededError,
    QueryCancelledError,
    QueryTimeoutError,
)

__all__ = ["QueryGuard", "IndexHealth", "HealthEvent"]


class QueryGuard:
    """Cooperative deadline / budget / cancellation for one query.

    All limits are optional; a guard with none configured is free to
    tick.  ``step()`` is called by the evaluation loops; it counts the
    step and re-checks every limit, raising
    :class:`~repro.errors.QueryTimeoutError`,
    :class:`~repro.errors.QueryBudgetExceededError` or
    :class:`~repro.errors.QueryCancelledError`.  Cancellation is
    cooperative: :meth:`cancel` may be called from another thread and
    takes effect at the next tick.
    """

    def __init__(
        self,
        *,
        deadline_ms: Optional[float] = None,
        max_steps: Optional[int] = None,
        max_page_reads: Optional[int] = None,
    ) -> None:
        self.deadline_ms = deadline_ms
        self.max_steps = max_steps
        self.max_page_reads = max_page_reads
        self.steps = 0
        self._cancelled = False
        self._t0: Optional[float] = None
        self._page_counter: Optional[Callable[[], int]] = None
        self._pages0 = 0

    def start(self, page_counter: Optional[Callable[[], int]] = None) -> "QueryGuard":
        """Begin one query: reset all per-query state and start timing.

        ``page_counter`` reports cumulative pager reads.  A pending
        :meth:`cancel` from a previous query is cleared — cancellation
        targets the query in flight, not the guard object forever.
        """
        self._t0 = time.monotonic()
        self.steps = 0
        self._cancelled = False
        self._page_counter = page_counter
        self._pages0 = page_counter() if page_counter is not None else 0
        return self

    def reset(self) -> "QueryGuard":
        """Return the guard to its pristine pre-:meth:`start` state.

        Clears the step count, the cancellation flag, the page-read
        baseline and the deadline clock — including a ``_t0`` that was
        *lazily* armed by a :meth:`check` before any :meth:`start` (the
        reuse leak this method exists to prevent).
        """
        self._t0 = None
        self.steps = 0
        self._cancelled = False
        self._page_counter = None
        self._pages0 = 0
        return self

    def cancel(self) -> None:
        """Request cancellation; the query dies at its next tick."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def elapsed_ms(self) -> float:
        """Milliseconds since :meth:`start` (0.0 before it)."""
        return 0.0 if self._t0 is None else (time.monotonic() - self._t0) * 1000.0

    @property
    def page_reads(self) -> int:
        """Pager reads issued since :meth:`start` (0 without a counter)."""
        if self._page_counter is None:
            return 0
        return self._page_counter() - self._pages0

    def step(self, n: int = 1) -> None:
        """Count ``n`` units of matcher work and enforce every limit."""
        self.steps += n
        self.check()

    def check(self) -> None:
        """Enforce the limits without consuming a step."""
        if self._cancelled:
            raise QueryCancelledError("query cancelled by its guard")
        if self.deadline_ms is not None:
            if self._t0 is None:
                # Lazy start for guards checked before start() was called:
                # begin timing only.  Resetting via start() here would wipe
                # self.steps and the page counter mid-query, silently
                # disabling the step/page budgets on the first deadline tick.
                self._t0 = time.monotonic()
            elapsed = self.elapsed_ms
            if elapsed > self.deadline_ms:
                raise QueryTimeoutError(self.deadline_ms, elapsed)
        if self.max_steps is not None and self.steps > self.max_steps:
            raise QueryBudgetExceededError("matcher-step", self.max_steps, self.steps)
        if self.max_page_reads is not None and self._page_counter is not None:
            used = self.page_reads
            if used > self.max_page_reads:
                raise QueryBudgetExceededError("page-read", self.max_page_reads, used)


@dataclass
class HealthEvent:
    """One corruption observation (kept verbatim for the health report)."""

    kind: str  # exception class name, e.g. "CorruptPageError"
    detail: str  # the exception message

    def to_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail}


@dataclass
class IndexHealth:
    """Degradation state of one index instance.

    ``status`` is ``"ok"`` until a corruption error surfaces during
    query evaluation, then ``"read-suspect"``: raw index answers can no
    longer be trusted and queries are served through the docstore until
    the index is salvaged.  ``degraded_queries`` counts answers that
    took the fallback path.
    """

    status: str = "ok"
    events: list[HealthEvent] = field(default_factory=list)
    degraded_queries: int = 0
    dropped_events: int = 0

    _MAX_EVENTS = 32  # keep the report bounded under sustained corruption

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def record_corruption(self, exc: BaseException) -> None:
        """Mark the index read-suspect because of ``exc``."""
        self.status = "read-suspect"
        if len(self.events) < self._MAX_EVENTS:
            self.events.append(HealthEvent(type(exc).__name__, str(exc)))
        else:
            self.dropped_events += 1

    def report(self) -> dict:
        """JSON-ready health summary (shown by ``repro stats``)."""
        return {
            "status": self.status,
            "degraded_queries": self.degraded_queries,
            "dropped_events": self.dropped_events,
            "events": [event.to_dict() for event in self.events],
        }

    def summary(self) -> str:
        if self.ok:
            return "health: ok"
        total = len(self.events) + self.dropped_events
        lines = [
            f"health: {self.status} "
            f"({total} corruption event(s), "
            f"{self.degraded_queries} degraded quer{'y' if self.degraded_queries == 1 else 'ies'})"
        ]
        for event in self.events:
            lines.append(f"  {event.kind}: {event.detail}")
        if self.dropped_events:
            lines.append(
                f"  ... and {self.dropped_events} more event(s) not retained"
            )
        lines.append("  run `repro scrub` to assess and `repro salvage` to rebuild")
        return "\n".join(lines)
