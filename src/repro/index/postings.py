"""Posting cache: memoised D-Ancestor key groups for the query path.

A *posting group* is the full set of combined-tree entries under one
D-Ancestor scan key ``(symbol, prefix_len, leading)`` — exactly the key
range :meth:`~repro.index.store.CombinedTreeHost.iter_candidates` scans —
decoded once and kept sorted by the S-Ancestor label ``n``.  With the
group resident, a scope-restricted lookup is two :func:`bisect` calls
over the ``n`` column instead of a root-to-leaf B+Tree descent plus a
leaf-chain walk, which is the dominant cost of Algorithm 2 on repeated
query traffic (the same hot ``(symbol, prefix)`` keys are scanned dozens
of times per branch query and again for every later query).

:class:`PostingCache` is an LRU over such groups.  It is a *lookaside*
structure: the B+Trees stay byte-identical, the cache is dropped on
reopen and invalidated (per affected key group) on ``insert``/``remove``.
Scope labels never change once assigned (Section 3.4: "labels, once
assigned, stay fixed"), so cached ``(prefix, Scope)`` pairs only go stale
when an entry is *added to* or *removed from* a group — which is what
:meth:`PostingCache.invalidate_entry` covers.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Optional

from repro.kernels import pack_ints
from repro.labeling.scope import Scope
from repro.obs.metrics import MetricSet
from repro.sequence.encoding import Prefix

GroupKey = tuple[Hashable, int, tuple[str, ...]]  # (symbol, prefix_len, leading)
Posting = tuple[Prefix, Scope]

__all__ = ["PostingGroup", "PostingCacheStats", "PostingCache"]


# Prefix interning: every posting of a concrete D-Ancestor group shares
# one prefix tuple, and wildcard groups draw from a small label alphabet,
# so the distinct-prefix population is tiny next to the posting count.
# Interning makes the ``prefixes`` column N references to a handful of
# tuples instead of N tuple objects.  Capped so adversarial corpora
# cannot grow it without bound (hits past the cap simply stay unshared).
_PREFIX_INTERN: dict[Prefix, Prefix] = {}
_PREFIX_INTERN_CAP = 1 << 16


def _intern_prefix(prefix: Prefix) -> Prefix:
    interned = _PREFIX_INTERN.get(prefix)
    if interned is not None:
        return interned
    if len(_PREFIX_INTERN) < _PREFIX_INTERN_CAP:
        _PREFIX_INTERN[prefix] = prefix
    return prefix


class PostingGroup:
    """One D-Ancestor key group as packed parallel columns, sorted by ``n``.

    The postings live in three columns: ``ns`` and ``ends`` (the
    S-Ancestor label and scope end, packed to ``array('q')`` by
    :func:`repro.kernels.pack_ints` when they fit int64, plain lists
    otherwise) and ``prefixes`` (interned prefix tuples).  The batched
    matcher consumes the columns directly via :meth:`select_span` —
    two bisects plus index arithmetic, no per-posting object churn.
    ``entries`` (the old list-of-``(Prefix, Scope)`` view) is
    materialised lazily for the serial/reference paths and cached.
    """

    __slots__ = ("ns", "ends", "prefixes", "_entries")

    def __init__(self, postings: Iterable[Posting]) -> None:
        ordered = sorted(postings, key=lambda posting: posting[1].n)
        self.ns = pack_ints([scope.n for _, scope in ordered])
        self.ends = pack_ints([scope.end for _, scope in ordered])
        self.prefixes: tuple[Prefix, ...] = tuple(
            _intern_prefix(prefix) for prefix, _ in ordered
        )
        self._entries: Optional[list[Posting]] = None

    @property
    def entries(self) -> list[Posting]:
        """Tuple view ``[(prefix, Scope), ...]``, built once on demand."""
        entries = self._entries
        if entries is None:
            entries = [
                (prefix, Scope(n, end - n))
                for prefix, n, end in zip(self.prefixes, self.ns, self.ends)
            ]
            self._entries = entries
        return entries

    def select_span(self, n: int, end: int) -> tuple[int, int]:
        """Column index range of postings with label in ``(n, end]``.

        ``bisect_right(ns, n)`` equals the old ``bisect_left(ns, n + 1)``
        for integer columns — first label strictly greater than ``n``.
        """
        ns = self.ns
        return bisect_right(ns, n), bisect_right(ns, end)

    def select(self, within: Scope) -> list[Posting]:
        """Postings whose ``n`` lies in the S-Ancestor range ``(n, n+size]``."""
        lo, hi = self.select_span(within.n, within.end)
        return self.entries[lo:hi]

    def __len__(self) -> int:
        return len(self.ns)


@dataclass
class PostingCacheStats(MetricSet):
    """Counters exposed by :attr:`PostingCache.stats` (registry-readable)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from memory (0.0 when never used)."""
        # snapshot both counters once: re-reading self.hits after summing
        # can report a rate above 1.0 under concurrent increments
        hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0


class PostingCache:
    """LRU cache of :class:`PostingGroup` objects keyed by scan key.

    ``capacity`` bounds the number of cached *groups* (one group can hold
    many postings; the hot working set of a query workload is a small
    number of distinct keys, so a group-count bound is the right knob).

    Thread safety: the ``OrderedDict`` LRU moves and the symbol map are
    guarded by a mutex — a hit *mutates* the LRU order, so even pure
    readers race without it.  The lock is dropped while ``loader()``
    scans the B+Tree (the slow part); two threads missing on the same
    key may both load, and the first group installed wins (groups for
    one key are interchangeable under the index's read lock, because
    scope labels never change once assigned).
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"posting cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._groups: OrderedDict[GroupKey, PostingGroup] = OrderedDict()
        # symbol -> cached keys for that symbol, so invalidation does not
        # scan the whole cache on every insert/remove
        self._by_symbol: dict[Hashable, set[GroupKey]] = {}
        self._lock = threading.Lock()
        self.stats = PostingCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._groups)

    def lookup(
        self,
        symbol: Hashable,
        prefix_len: int,
        leading: tuple[str, ...],
        loader: Callable[[], Iterable[Posting]],
    ) -> PostingGroup:
        """Return the cached group for the key, loading it on a miss."""
        key: GroupKey = (symbol, prefix_len, leading)
        with self._lock:
            group = self._groups.get(key)
            if group is not None:
                self._groups.move_to_end(key)
                self.stats.hits += 1
                return group
            self.stats.misses += 1
        loaded = PostingGroup(loader())  # tree scan runs outside the lock
        with self._lock:
            group = self._groups.get(key)
            if group is not None:
                # another thread loaded the same key while we scanned;
                # keep its copy so every caller shares one resident group
                self._groups.move_to_end(key)
                return group
            self._groups[key] = loaded
            self._by_symbol.setdefault(symbol, set()).add(key)
            while len(self._groups) > self._capacity:
                victim, _ = self._groups.popitem(last=False)
                self.stats.evictions += 1
                self._discard_symbol_key(victim)
            return loaded

    def invalidate_entry(self, symbol: Hashable, prefix: Prefix) -> None:
        """Drop every cached group that covers an entry with this prefix.

        An entry ``(symbol, prefix)`` belongs to the groups whose
        ``prefix_len == len(prefix)`` and whose ``leading`` labels are a
        prefix of ``prefix`` (the wildcard scans at that length), so only
        those keys go stale when such an entry appears or disappears.
        """
        with self._lock:
            keys = self._by_symbol.get(symbol)
            if not keys:
                return
            plen = len(prefix)
            stale = [
                key
                for key in keys
                if key[1] == plen and prefix[: len(key[2])] == key[2]
            ]
            for key in stale:
                self._groups.pop(key, None)
                keys.discard(key)
                self.stats.invalidations += 1
            if not keys:
                del self._by_symbol[symbol]

    def clear(self) -> None:
        """Drop every cached group (bulk rebuilds, reopen)."""
        with self._lock:
            self._groups.clear()
            self._by_symbol.clear()

    def _discard_symbol_key(self, key: GroupKey) -> None:
        keys = self._by_symbol.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_symbol[key[0]]
