"""ViST: the dynamically-labelled virtual suffix tree index (Section 3.4).

The suffix tree is never materialised.  Insertion (Algorithm 4) walks the
virtual trie through the combined B+Tree: for each sequence item it looks
for an *immediate child* of the current node with that ``(symbol,
prefix)``; if none exists, a fresh scope is carved from the parent by the
configured :class:`~repro.labeling.dynamic.ScopeAllocator` (clue-based
Eq. 3–4 or λ-based Eq. 5–6).  The document id lands in the DocId tree
under the label of the last node.

**Scope underflow.**  When the allocator cannot carve another scope, the
insert borrows a block of sequential ids from the reserve of the nearest
ancestor able to cover the rest of the sequence (paper Section 3.4.1).
The nodes between that ancestor and the underflow point are re-created as
*private* duplicates inside the block — "they cannot be shared with other
sequences, but they are still properly indexed for matching".

**Deletion.**  The paper states ViST supports deletion but gives no
algorithm; we reference-count each node with the number of sequences
whose insertion passed through it and reclaim entries at zero.  Allocation
cursors are never rolled back — labels, once assigned, stay fixed, as
Section 3.4 requires.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import IndexStateError, KeyTooLargeError, ScopeUnderflowError
from repro.doc.stats import CorpusStats
from repro.index.base import XmlIndexBase
from repro.index.matching import SequenceMatcher
from repro.index.postings import PostingCache
from repro.index.store import ROOT_KEY, CombinedTreeHost, decode_node_key, node_key
from repro.labeling.clues import FollowSets
from repro.labeling.dynamic import (
    DEFAULT_MAX,
    ClueAllocator,
    LambdaAllocator,
    NodeState,
    ScopeAllocator,
)
from repro.labeling.scope import Scope
from repro.query.ast import QuerySequence
from repro.sequence.encoding import Item, StructureEncodedSequence
from repro.sequence.transform import SequenceEncoder
from repro.storage.bptree import BPlusTree, TreeStats
from repro.storage.docstore import DocStore
from repro.storage.pager import MemoryPager, Pager
from repro.storage.serialization import decode_uint, encode_uint

__all__ = ["VistIndex"]


class VistIndex(XmlIndexBase, CombinedTreeHost):
    """Dynamic virtual-suffix-tree index over B+Trees (the paper's ViST)."""

    def __init__(
        self,
        encoder: Optional[SequenceEncoder] = None,
        docstore: Optional[DocStore] = None,
        pager: Optional[Pager] = None,
        allocator: Optional[ScopeAllocator] = None,
        *,
        source_store: Optional[DocStore] = None,
        max_label: int = DEFAULT_MAX,
        track_refs: bool = True,
        collect_stats: bool = True,
        max_alternatives: int = 24,
        posting_cache_size: int = 512,
        batched: bool = True,
    ) -> None:
        XmlIndexBase.__init__(
            self, encoder, docstore,
            source_store=source_store, max_alternatives=max_alternatives,
        )
        self._pager = pager if pager is not None else MemoryPager()
        self.tree = BPlusTree(self._pager, slot=0)
        self.docid_tree = BPlusTree(self._pager, slot=1)
        # Query-path posting cache (0 disables).  It lives in instance
        # memory only, so reopening from disk always starts cold.
        self.postings = PostingCache(posting_cache_size) if posting_cache_size else None
        self._matcher = SequenceMatcher(self, batched=batched)
        # "we collect statistics during data generation for dynamic
        # labeling purposes": with collect_stats the corpus statistics
        # accumulate as documents arrive, and the clue-free allocator
        # tunes its λ per parent label from them
        self.stats = CorpusStats() if collect_stats else None
        if allocator is None:
            if self.encoder.schema is not None:
                allocator = ClueAllocator(FollowSets(self.encoder.schema))
            else:
                allocator = LambdaAllocator(lam=4, stats=self.stats)
        self.allocator = allocator
        self.track_refs = track_refs
        self.underflow_count = 0  # borrow events, reported by the ablation bench
        # (parent_n, item) -> child n: a rebuildable in-memory accelerator
        # for Algorithm 4's immediate-child search.  The paper's own answer
        # is the arithmetic test "by Eq (4) and Eq (6)"; a lookaside cache
        # achieves the same O(1) lookup for both allocation schemes without
        # touching the persistent structures (it is not part of the index
        # size and repopulates lazily after reopening from disk).
        self._child_cache: dict[tuple[int, Item], int] = {}
        root_value = self.tree.get(ROOT_KEY)
        if root_value is None:
            self._root_state = NodeState(scope=Scope(0, max_label - 1), parent_n=0)
            self.tree.put(ROOT_KEY, self._root_state.to_bytes())
        else:
            self._root_state = NodeState.from_bytes(0, root_value)
        self._register_host_metrics()
        self.metrics.register("underflows", lambda: self.underflow_count)

    # ------------------------------------------------------------------
    # ingestion (Algorithm 4)

    def add_sequence(self, sequence: StructureEncodedSequence) -> int:
        with self.rwlock.write():  # one insert at a time, excluded from reads
            return self._add_sequence_locked(sequence)

    def _add_sequence_locked(self, sequence: StructureEncodedSequence) -> int:
        if len(sequence) == 0:
            raise IndexStateError("cannot index an empty sequence")
        self._validate_key_sizes(sequence)
        if self.stats is not None:
            self.stats.observe_sequence(sequence)
        pending: dict[int, tuple[bytes, NodeState]] = {}
        pending[0] = (ROOT_KEY, self._root_state)
        path_items: list[Optional[Item]] = [None]
        path_states: list[NodeState] = [self._root_state]
        path_keys: list[bytes] = [ROOT_KEY]
        labels: Optional[list[int]] = None
        for i, item in enumerate(sequence):
            parent_state = path_states[-1]
            parent_item = path_items[-1]
            child = self._find_child(item, parent_state, pending)
            key = node_key(item.symbol, item.prefix, 0)  # placeholder, fixed below
            if child is None:
                scope = self.allocator.place(parent_state, parent_item, item)
                # place() advanced the parent's allocation cursors: the
                # parent must be written back even without refcounting,
                # or a later insertion would hand out the same scope twice
                pending.setdefault(
                    parent_state.scope.n, (path_keys[-1], parent_state)
                )
                if scope is None:
                    labels = self._insert_borrowed(
                        i, sequence, path_items, path_states, path_keys, pending
                    )
                    break
                child = NodeState(scope, parent_n=parent_state.scope.n)
                key = node_key(item.symbol, item.prefix, scope.n)
                pending[scope.n] = (key, child)
                self._child_cache[parent_state.scope.n, item] = scope.n
            else:
                key = node_key(item.symbol, item.prefix, child.scope.n)
            if self.track_refs:
                child.refs += 1
                pending.setdefault(child.scope.n, (key, child))
            path_items.append(item)
            path_states.append(child)
            path_keys.append(key)
        if labels is None:
            labels = [state.scope.n for state in path_states[1:]]
        for key, state in pending.values():
            self.tree.put(key, state.to_bytes())
        if self.postings is not None:
            # Conservative coherence: every item of the sequence may have
            # introduced a new node into its D-Ancestor key group (scopes
            # of pre-existing nodes never change, so updates to them keep
            # cached groups valid).
            for item in sequence:
                self.postings.invalidate_entry(item.symbol, item.prefix)
        doc_id = self.docstore.add(self._make_payload(sequence, labels))
        self._attach_doc(labels[-1], doc_id)
        self._bump_max_prefix_len(max(item.depth for item in sequence))
        return doc_id

    def _validate_key_sizes(self, sequence: StructureEncodedSequence) -> None:
        """Reject sequences whose keys cannot fit a B+Tree cell *before*
        touching any persistent state, so a failed add never leaves a
        partially inserted document behind."""
        budget = self._pager.page_size // 4
        # worst-case NodeState size given the root label width: flags +
        # refs/k counters + up to nine label-width integers (size, parent,
        # reserve, three chain cursors of two integers each)
        label_width = len(encode_uint(self._root_state.scope.end))
        value_allowance = 40 + 9 * label_width
        for item in sequence:
            key_size = len(node_key(item.symbol, item.prefix, self._root_state.scope.end))
            if key_size + value_allowance > budget:
                raise KeyTooLargeError(
                    f"item at depth {item.depth} needs a {key_size}-byte key plus "
                    f"{value_allowance} bytes of labelling state; use a larger "
                    f"page size (budget {budget} bytes/cell) or a smaller max_label"
                )

    def _find_child(
        self,
        item: Item,
        parent: NodeState,
        pending: dict[int, tuple[bytes, NodeState]],
    ) -> Optional[NodeState]:
        """Algorithm 4's "search in e for an immediate child scope of s".

        Scans the S-Ancestor range of ``(symbol, prefix)`` inside the
        parent scope and picks the entry whose ``parent_n`` is the parent
        itself.  Private (borrow-labelled) nodes are never shared.
        """
        scope = parent.scope
        cached_n = self._child_cache.get((scope.n, item))
        if cached_n is not None:
            entry = pending.get(cached_n)
            if entry is not None:
                return entry[1]
            value = self.tree.get(node_key(item.symbol, item.prefix, cached_n))
            if value is not None:
                state = NodeState.from_bytes(cached_n, value)
                if state.parent_n == scope.n and not state.private:
                    return state
            del self._child_cache[scope.n, item]  # stale (node was reclaimed)
        lo = node_key(item.symbol, item.prefix, scope.n + 1)
        hi = node_key(item.symbol, item.prefix, scope.end)
        for key, value in self.tree.range(lo, hi, include_hi=True):
            n = decode_node_key(key)[2]
            entry = pending.get(n)
            state = entry[1] if entry is not None else NodeState.from_bytes(n, value)
            if state.parent_n == scope.n and not state.private:
                self._child_cache[scope.n, item] = state.scope.n
                return state
        return None

    def _insert_borrowed(
        self,
        i: int,
        sequence: StructureEncodedSequence,
        path_items: list[Optional[Item]],
        path_states: list[NodeState],
        path_keys: list[bytes],
        pending: dict[int, tuple[bytes, NodeState]],
    ) -> list[int]:
        """Scope underflow repair (Section 3.4.1).

        Walks the insert path upwards until an ancestor's reserve can
        supply ``remaining + duplicated`` sequential ids; nodes below the
        lender are duplicated as private, the rest of the sequence is
        labelled sequentially inside the block.
        """
        remaining = len(sequence) - i
        lender_idx: Optional[int] = None
        start: Optional[int] = None
        for t in range(i, -1, -1):
            need = remaining + (i - t)
            start = self.allocator.borrow_block(path_states[t], need)
            if start is not None:
                lender_idx = t
                break
        if lender_idx is None or start is None:
            raise ScopeUnderflowError(
                f"no ancestor reserve can cover {remaining} remaining items"
            )
        self.underflow_count += 1
        # the lender's reserve watermark moved: write it back
        lender = path_states[lender_idx]
        pending.setdefault(lender.scope.n, (path_keys[lender_idx], lender))
        need = remaining + (i - lender_idx)
        # the bumped refs of abandoned shared nodes no longer apply
        if self.track_refs:
            for state in path_states[lender_idx + 1 :]:
                state.refs -= 1
        borrowed_items = [path_items[k] for k in range(lender_idx + 1, i + 1)]
        borrowed_items.extend(sequence[j] for j in range(i, len(sequence)))
        prev_n = path_states[lender_idx].scope.n
        labels = [state.scope.n for state in path_states[1 : lender_idx + 1]]
        for offset, item in enumerate(borrowed_items):
            assert item is not None
            n = start + offset
            state = NodeState(
                Scope(n, need - offset - 1),
                parent_n=prev_n,
                refs=1 if self.track_refs else 0,
                private=True,
            )
            pending[n] = (node_key(item.symbol, item.prefix, n), state)
            labels.append(n)
            prev_n = n
        return labels

    # ------------------------------------------------------------------
    # deletion

    def remove(self, doc_id: int) -> None:
        """Delete a document and reclaim unreferenced virtual nodes."""
        if not self.track_refs:
            raise IndexStateError(
                "deletion requires track_refs=True (reference counting)"
            )
        with self.rwlock.write():
            self._remove_locked(doc_id)

    def _remove_locked(self, doc_id: int) -> None:
        sequence, labels = self._parse_payload(self.docstore.get(doc_id))
        removed = self._detach_doc(labels[-1], doc_id)
        if removed == 0:
            raise IndexStateError(f"document {doc_id} has no DocId entry")
        for item, n in zip(sequence, labels):
            key = node_key(item.symbol, item.prefix, n)
            value = self.tree.get(key)
            if value is None:
                raise IndexStateError(f"missing index entry for doc {doc_id} at {n}")
            state = NodeState.from_bytes(n, value)
            state.refs -= 1
            if state.refs <= 0:
                self.tree.delete(key)
                self._child_cache.pop((state.parent_n, item), None)
                self._invalidate_postings(item.symbol, item.prefix)
            else:
                self.tree.put(key, state.to_bytes())
        self.docstore.remove(doc_id)
        self._remove_source(doc_id)

    # ------------------------------------------------------------------
    # matching

    def match_sequence(self, query_sequence: QuerySequence, guard=None, trace=None) -> set[int]:
        return self._matcher.match(query_sequence, guard, trace)

    @property
    def match_stats(self):
        """MatchStats of the most recent :meth:`match_sequence` call."""
        return self._matcher.stats

    def root_scope(self) -> Scope:
        return self._root_state.scope

    def _scope_of(self, n: int, value: bytes) -> Optional[Scope]:
        return NodeState.from_bytes(n, value).scope

    # ------------------------------------------------------------------
    # payloads: sequence bytes + the node labels of the insert path

    def _make_payload(
        self, sequence: StructureEncodedSequence, labels: list[int]
    ) -> bytes:
        seq_bytes = sequence.to_bytes()
        out = bytearray(encode_uint(len(seq_bytes)))
        out += seq_bytes
        for n in labels:
            out += encode_uint(n)
        return bytes(out)

    def _parse_payload(self, payload: bytes) -> tuple[StructureEncodedSequence, list[int]]:
        seq_len, offset = decode_uint(payload)
        sequence = StructureEncodedSequence.from_bytes(payload[offset : offset + seq_len])
        offset += seq_len
        labels: list[int] = []
        while offset < len(payload):
            n, offset = decode_uint(payload, offset)
            labels.append(n)
        return sequence, labels

    def _payload_to_sequence(self, payload: bytes) -> StructureEncodedSequence:
        return self._parse_payload(payload)[0]

    # ------------------------------------------------------------------
    # maintenance / measurements

    def flush(self) -> None:
        """Persist both B+Trees (and through them the pager)."""
        with self.rwlock.write():
            self.tree.flush()
            self.docid_tree.flush()
            self._pager.sync()

    def close(self) -> None:
        with self.rwlock.write():
            self.tree.close()
            self.docid_tree.close()
            self._pager.close()

    def index_stats(self) -> dict[str, TreeStats]:
        """Per-tree size statistics (Figure 11(a))."""
        return {"combined": self.tree.stats(), "docid": self.docid_tree.stats()}
