"""ViST: the dynamically-labelled virtual suffix tree index (Section 3.4).

The suffix tree is never materialised.  Insertion (Algorithm 4) walks the
virtual trie through the combined B+Tree: for each sequence item it looks
for an *immediate child* of the current node with that ``(symbol,
prefix)``; if none exists, a fresh scope is carved from the parent by the
configured :class:`~repro.labeling.dynamic.ScopeAllocator` (clue-based
Eq. 3–4 or λ-based Eq. 5–6).  The document id lands in the DocId tree
under the label of the last node.

**Scope underflow.**  When the allocator cannot carve another scope, the
insert borrows a block of sequential ids from the reserve of the nearest
ancestor able to cover the rest of the sequence (paper Section 3.4.1).
The nodes between that ancestor and the underflow point are re-created as
*private* duplicates inside the block — "they cannot be shared with other
sequences, but they are still properly indexed for matching".

**Deletion.**  The paper states ViST supports deletion but gives no
algorithm; we reference-count each node with the number of sequences
whose insertion passed through it and reclaim entries at zero.  Allocation
cursors are never rolled back — labels, once assigned, stay fixed, as
Section 3.4 requires.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import IndexStateError, KeyTooLargeError, ScopeUnderflowError
from repro.doc.stats import CorpusStats
from repro.index.base import XmlIndexBase
from repro.index.matching import SequenceMatcher
from repro.index.postings import PostingCache
from repro.index.store import (
    META_STORE_BOUNDS_KEY,
    ROOT_KEY,
    CombinedTreeHost,
    decode_node_key,
    node_key,
    node_key_len,
)
from repro.labeling.clues import FollowSets
from repro.labeling.dynamic import (
    DEFAULT_MAX,
    ClueAllocator,
    LambdaAllocator,
    NodeState,
    ScopeAllocator,
)
from repro.labeling.scope import Scope
from repro.query.ast import QuerySequence
from repro.sequence.encoding import Item, StructureEncodedSequence
from repro.sequence.transform import SequenceEncoder
from repro.storage.bptree import BPlusTree, TreeStats
from repro.storage.docstore import DocStore
from repro.storage.pager import MemoryPager, Pager
from repro.storage.serialization import (
    decode_tuple,
    decode_uint,
    encode_tuple,
    encode_uint,
)

__all__ = ["VistIndex"]


class VistIndex(XmlIndexBase, CombinedTreeHost):
    """Dynamic virtual-suffix-tree index over B+Trees (the paper's ViST)."""

    def __init__(
        self,
        encoder: Optional[SequenceEncoder] = None,
        docstore: Optional[DocStore] = None,
        pager: Optional[Pager] = None,
        allocator: Optional[ScopeAllocator] = None,
        *,
        source_store: Optional[DocStore] = None,
        max_label: int = DEFAULT_MAX,
        track_refs: bool = True,
        collect_stats: bool = True,
        max_alternatives: int = 24,
        posting_cache_size: int = 512,
        batched: bool = True,
        packed: Optional[bool] = None,
    ) -> None:
        XmlIndexBase.__init__(
            self, encoder, docstore,
            source_store=source_store, max_alternatives=max_alternatives,
        )
        self._pager = pager if pager is not None else MemoryPager()
        self.tree = BPlusTree(self._pager, slot=0)
        self.docid_tree = BPlusTree(self._pager, slot=1)
        # Query-path posting cache (0 disables).  It lives in instance
        # memory only, so reopening from disk always starts cold.
        self.postings = PostingCache(posting_cache_size) if posting_cache_size else None
        self._matcher = SequenceMatcher(self, batched=batched, packed=packed)
        # "we collect statistics during data generation for dynamic
        # labeling purposes": with collect_stats the corpus statistics
        # accumulate as documents arrive, and the clue-free allocator
        # tunes its λ per parent label from them
        self.stats = CorpusStats() if collect_stats else None
        if allocator is None:
            if self.encoder.schema is not None:
                allocator = ClueAllocator(FollowSets(self.encoder.schema))
            else:
                allocator = LambdaAllocator(lam=4, stats=self.stats)
        self.allocator = allocator
        self.track_refs = track_refs
        self.underflow_count = 0  # borrow events, reported by the ablation bench
        # (parent_n, item) -> child n: a rebuildable in-memory accelerator
        # for Algorithm 4's immediate-child search.  The paper's own answer
        # is the arithmetic test "by Eq (4) and Eq (6)"; a lookaside cache
        # achieves the same O(1) lookup for both allocation schemes without
        # touching the persistent structures (it is not part of the index
        # size and repopulates lazily after reopening from disk).
        self._child_cache: dict[tuple[int, Item], int] = {}
        # (doc_id, sequence, labels, created) of the most recent insert,
        # kept so a failed source append can roll it back atomically
        self._last_insert: Optional[tuple] = None
        # inside an add_batch chunk, DocId attachments buffer here and
        # land in one sorted pass at _end_batch; None outside batches
        self._docid_buffer: Optional[list[tuple[int, int]]] = None
        # batch write-dedup overlay for the combined tree: n -> (key,
        # live NodeState).  Hot parents (root, record-type nodes) have
        # their cursors advanced by nearly every insert; writing them
        # through per document costs a B+Tree delete+insert each time.
        # During a chunk the latest state lives here, every in-chunk read
        # goes through it (so cursor updates accumulate on one object),
        # and _end_batch writes each node once, in key order.
        self._node_overlay: Optional[dict[int, tuple[bytes, NodeState]]] = None
        # (parent_n, item) -> n for nodes *created* during the chunk:
        # the unevictable companion of _child_cache.  Overlay nodes are
        # invisible to tree.range until _end_batch, so the fallback scan
        # of _find_child must have a map it can trust for them.
        self._overlay_children: Optional[dict[tuple[int, Item], int]] = None
        # labels created during the chunk: their keys are not on the
        # tree yet, so _end_batch can insert them directly instead of
        # paying put()'s delete-then-insert
        self._overlay_created: Optional[set[int]] = None
        root_value = self.tree.get(ROOT_KEY)
        if root_value is None:
            self._root_state = NodeState(scope=Scope(0, max_label - 1), parent_n=0)
            self.tree.put(ROOT_KEY, self._root_state.to_bytes())
        else:
            self._root_state = NodeState.from_bytes(0, root_value)
        # a crash between a docstore append and the tree commit leaves
        # trailing records past the committed state; drop them now so the
        # index reopens exactly on its last durable commit boundary
        self.recovered_trailing_docs = self._recover_store_bounds()
        self._register_host_metrics()
        self.metrics.register("underflows", lambda: self.underflow_count)

    # ------------------------------------------------------------------
    # ingestion (Algorithm 4)

    def add_sequence(self, sequence: StructureEncodedSequence) -> int:
        with self.rwlock.write():  # one insert at a time, excluded from reads
            return self._add_sequence_locked(sequence)

    def _add_sequence_locked(self, sequence: StructureEncodedSequence) -> int:
        if len(sequence) == 0:
            raise IndexStateError("cannot index an empty sequence")
        self._validate_key_sizes(sequence)
        if self.stats is not None:
            self.stats.observe_sequence(sequence)
        pending: dict[int, tuple[bytes, NodeState]] = {}
        pending[0] = (ROOT_KEY, self._root_state)
        path_items: list[Optional[Item]] = [None]
        path_states: list[NodeState] = [self._root_state]
        path_keys: list[bytes] = [ROOT_KEY]
        # nodes this insert creates, as (key, item, parent_n) — exactly
        # what _rollback_insert must delete when refcounting is off
        created: list[tuple[bytes, Item, int]] = []
        labels: Optional[list[int]] = None
        for i, item in enumerate(sequence):
            parent_state = path_states[-1]
            parent_item = path_items[-1]
            child = self._find_child(item, parent_state, pending)
            key = node_key(item.symbol, item.prefix, 0)  # placeholder, fixed below
            if child is None:
                scope = self.allocator.place(parent_state, parent_item, item)
                # place() advanced the parent's allocation cursors: the
                # parent must be written back even without refcounting,
                # or a later insertion would hand out the same scope twice
                pending.setdefault(
                    parent_state.scope.n, (path_keys[-1], parent_state)
                )
                if scope is None:
                    labels = self._insert_borrowed(
                        i, sequence, path_items, path_states, path_keys,
                        pending, created,
                    )
                    break
                child = NodeState(scope, parent_n=parent_state.scope.n)
                key = node_key(item.symbol, item.prefix, scope.n)
                pending[scope.n] = (key, child)
                self._child_cache[parent_state.scope.n, item] = scope.n
                if self._overlay_children is not None:
                    self._overlay_children[parent_state.scope.n, item] = scope.n
                    self._overlay_created.add(scope.n)
                created.append((key, item, parent_state.scope.n))
            else:
                key = node_key(item.symbol, item.prefix, child.scope.n)
            if self.track_refs:
                child.refs += 1
                pending.setdefault(child.scope.n, (key, child))
            path_items.append(item)
            path_states.append(child)
            path_keys.append(key)
        if labels is None:
            labels = [state.scope.n for state in path_states[1:]]
        if self._node_overlay is not None:
            self._node_overlay.update(pending)
        else:
            for key, state in pending.values():
                self.tree.put(key, state.to_bytes())
        if self.postings is not None:
            # Conservative coherence: every item of the sequence may have
            # introduced a new node into its D-Ancestor key group (scopes
            # of pre-existing nodes never change, so updates to them keep
            # cached groups valid).
            for item in sequence:
                self.postings.invalidate_entry(item.symbol, item.prefix)
        doc_id = self.docstore.add(self._make_payload(sequence, labels))
        self._attach_doc(labels[-1], doc_id)
        self._bump_max_prefix_len(max(item.depth for item in sequence))
        self._last_insert = (doc_id, sequence, labels, created)
        return doc_id

    def _validate_key_sizes(self, sequence: StructureEncodedSequence) -> None:
        """Reject sequences whose keys cannot fit a B+Tree cell *before*
        touching any persistent state, so a failed add never leaves a
        partially inserted document behind."""
        budget = self._pager.page_size // 4
        # worst-case NodeState size given the root label width: flags +
        # refs/k counters + up to nine label-width integers (size, parent,
        # reserve, three chain cursors of two integers each)
        label_width = len(encode_uint(self._root_state.scope.end))
        value_allowance = 40 + 9 * label_width
        for item in sequence:
            key_size = node_key_len(item.symbol, item.prefix, self._root_state.scope.end)
            if key_size + value_allowance > budget:
                raise KeyTooLargeError(
                    f"item at depth {item.depth} needs a {key_size}-byte key plus "
                    f"{value_allowance} bytes of labelling state; use a larger "
                    f"page size (budget {budget} bytes/cell) or a smaller max_label"
                )

    def _find_child(
        self,
        item: Item,
        parent: NodeState,
        pending: dict[int, tuple[bytes, NodeState]],
    ) -> Optional[NodeState]:
        """Algorithm 4's "search in e for an immediate child scope of s".

        Scans the S-Ancestor range of ``(symbol, prefix)`` inside the
        parent scope and picks the entry whose ``parent_n`` is the parent
        itself.  Private (borrow-labelled) nodes are never shared.
        """
        scope = parent.scope
        overlay = self._node_overlay
        cached_n = None
        if self._overlay_children is not None:
            # authoritative for nodes created this chunk (and rollback
            # removes its entries, so it is never stale mid-chunk)
            cached_n = self._overlay_children.get((scope.n, item))
        if cached_n is None:
            cached_n = self._child_cache.get((scope.n, item))
        if cached_n is not None:
            entry = pending.get(cached_n)
            if entry is not None:
                return entry[1]
            state = None
            if overlay is not None:
                oentry = overlay.get(cached_n)
                if oentry is not None:
                    state = oentry[1]
            if state is None:
                value = self.tree.get(node_key(item.symbol, item.prefix, cached_n))
                if value is not None:
                    state = NodeState.from_bytes(cached_n, value)
            if state is not None and state.parent_n == scope.n and not state.private:
                return state
            # stale (node was reclaimed)
            self._child_cache.pop((scope.n, item), None)
            if self._overlay_children is not None:
                self._overlay_children.pop((scope.n, item), None)
        if self._overlay_created is not None and scope.n in self._overlay_created:
            # the parent itself was created this chunk, so it cannot have
            # on-tree children; the in-chunk ones were all resolvable
            # through _overlay_children above — skip the range scan
            return None
        lo = node_key(item.symbol, item.prefix, scope.n + 1)
        hi = node_key(item.symbol, item.prefix, scope.end)
        for key, value in self.tree.range(lo, hi, include_hi=True):
            n = decode_node_key(key)[2]
            entry = pending.get(n)
            if entry is None and overlay is not None:
                # an on-tree key can be stale during a chunk: the live
                # state (advanced cursors) is the overlay's object
                entry = overlay.get(n)
            state = entry[1] if entry is not None else NodeState.from_bytes(n, value)
            if state.parent_n == scope.n and not state.private:
                self._child_cache[scope.n, item] = state.scope.n
                return state
        return None

    def _insert_borrowed(
        self,
        i: int,
        sequence: StructureEncodedSequence,
        path_items: list[Optional[Item]],
        path_states: list[NodeState],
        path_keys: list[bytes],
        pending: dict[int, tuple[bytes, NodeState]],
        created: list[tuple[bytes, Item, int]],
    ) -> list[int]:
        """Scope underflow repair (Section 3.4.1).

        Walks the insert path upwards until an ancestor's reserve can
        supply ``remaining + duplicated`` sequential ids; nodes below the
        lender are duplicated as private, the rest of the sequence is
        labelled sequentially inside the block.
        """
        remaining = len(sequence) - i
        lender_idx: Optional[int] = None
        start: Optional[int] = None
        for t in range(i, -1, -1):
            need = remaining + (i - t)
            start = self.allocator.borrow_block(path_states[t], need)
            if start is not None:
                lender_idx = t
                break
        if lender_idx is None or start is None:
            raise ScopeUnderflowError(
                f"no ancestor reserve can cover {remaining} remaining items"
            )
        self.underflow_count += 1
        # the lender's reserve watermark moved: write it back
        lender = path_states[lender_idx]
        pending.setdefault(lender.scope.n, (path_keys[lender_idx], lender))
        need = remaining + (i - lender_idx)
        # the bumped refs of abandoned shared nodes no longer apply
        if self.track_refs:
            for state in path_states[lender_idx + 1 :]:
                state.refs -= 1
        borrowed_items = [path_items[k] for k in range(lender_idx + 1, i + 1)]
        borrowed_items.extend(sequence[j] for j in range(i, len(sequence)))
        prev_n = path_states[lender_idx].scope.n
        labels = [state.scope.n for state in path_states[1 : lender_idx + 1]]
        for offset, item in enumerate(borrowed_items):
            assert item is not None
            n = start + offset
            state = NodeState(
                Scope(n, need - offset - 1),
                parent_n=prev_n,
                refs=1 if self.track_refs else 0,
                private=True,
            )
            key = node_key(item.symbol, item.prefix, n)
            pending[n] = (key, state)
            if self._overlay_created is not None:
                self._overlay_created.add(n)
            created.append((key, item, prev_n))
            labels.append(n)
            prev_n = n
        return labels

    # ------------------------------------------------------------------
    # deletion

    def remove(self, doc_id: int) -> None:
        """Delete a document and reclaim unreferenced virtual nodes."""
        if not self.track_refs:
            raise IndexStateError(
                "deletion requires track_refs=True (reference counting)"
            )
        with self.rwlock.write():
            self._remove_locked(doc_id)

    def _remove_locked(self, doc_id: int) -> None:
        sequence, labels = self._parse_payload(self.docstore.get(doc_id))
        removed = self._detach_doc(labels[-1], doc_id)
        if removed == 0:
            raise IndexStateError(f"document {doc_id} has no DocId entry")
        for item, n in zip(sequence, labels):
            key = node_key(item.symbol, item.prefix, n)
            value = self.tree.get(key)
            if value is None:
                raise IndexStateError(f"missing index entry for doc {doc_id} at {n}")
            state = NodeState.from_bytes(n, value)
            state.refs -= 1
            if state.refs <= 0:
                self.tree.delete(key)
                self._child_cache.pop((state.parent_n, item), None)
                self._invalidate_postings(item.symbol, item.prefix)
            else:
                self.tree.put(key, state.to_bytes())
        self.docstore.remove(doc_id)
        self._remove_source(doc_id)

    def _rollback_insert(self, doc_id: int) -> None:
        """Undo the most recent :meth:`add_sequence` (same write lock).

        Reference counts unwind exactly like :meth:`_remove_locked`;
        without refcounting, the nodes this insert created (tracked in
        ``_last_insert``) are deleted directly.  Allocation cursors are
        deliberately *not* rolled back — labels, once assigned, stay
        fixed (Section 3.4), the same policy :meth:`remove` follows.
        The docstore id is un-assigned, so the next add reuses it."""
        last = self._last_insert
        if last is None or last[0] != doc_id:
            raise IndexStateError(
                f"cannot roll back doc {doc_id}: it is not the latest insert"
            )
        self._last_insert = None
        _, sequence, labels, created = last
        removed = self._detach_doc(labels[-1], doc_id)
        if removed == 0:
            raise IndexStateError(f"document {doc_id} has no DocId entry")
        overlay = self._node_overlay
        if self.track_refs:
            for item, n in zip(sequence, labels):
                key = node_key(item.symbol, item.prefix, n)
                state = None
                if overlay is not None:
                    entry = overlay.get(n)
                    if entry is not None:
                        state = entry[1]
                if state is None:
                    value = self.tree.get(key)
                    if value is None:
                        raise IndexStateError(
                            f"missing index entry for doc {doc_id} at {n}"
                        )
                    state = NodeState.from_bytes(n, value)
                state.refs -= 1
                if state.refs <= 0:
                    # refs hit zero only for nodes this insert created:
                    # mid-chunk they live in the overlay, never on tree
                    if overlay is not None:
                        overlay.pop(n, None)
                    if self._overlay_created is not None:
                        self._overlay_created.discard(n)
                    self.tree.delete(key)
                    self._child_cache.pop((state.parent_n, item), None)
                    if self._overlay_children is not None:
                        self._overlay_children.pop((state.parent_n, item), None)
                    self._invalidate_postings(item.symbol, item.prefix)
                elif overlay is not None:
                    overlay[n] = (key, state)
                else:
                    self.tree.put(key, state.to_bytes())
        else:
            for key, item, parent_n in created:
                if overlay is not None:
                    n = decode_node_key(key)[2]
                    overlay.pop(n, None)
                    if self._overlay_created is not None:
                        self._overlay_created.discard(n)
                self.tree.delete(key)
                self._child_cache.pop((parent_n, item), None)
                if self._overlay_children is not None:
                    self._overlay_children.pop((parent_n, item), None)
                self._invalidate_postings(item.symbol, item.prefix)
        self.docstore.pop_last(doc_id)

    # ------------------------------------------------------------------
    # bulk-ingest hooks (XmlIndexBase.add_batch)

    def _begin_batch(self) -> None:
        self._docid_buffer = []
        self._node_overlay = {}
        self._overlay_children = {}
        self._overlay_created = set()

    def _end_batch(self) -> None:
        """Drain the chunk's node-state and DocId buffers.

        Node states land first, in key order, one put per node — a hot
        parent touched by every document of the chunk costs one B+Tree
        delete+insert instead of hundreds.  Then the ``(n, doc_id)``
        pairs: sorting the integer pairs yields the encoded pairs in
        ascending byte order (both encodings are order-preserving), so
        an empty DocId tree takes the packed
        :meth:`~repro.storage.bptree.BPlusTree.bulk_load` path and a
        non-empty one gets ordered inserts — far fewer node splits than
        the per-document random-order descents."""
        overlay = self._node_overlay
        created = self._overlay_created or ()
        self._node_overlay = None
        self._overlay_children = None
        self._overlay_created = None
        if overlay:
            for n, (key, state) in sorted(overlay.items(), key=lambda e: e[1][0]):
                if n in created:
                    # never on the tree yet: skip put()'s delete pass
                    self.tree.insert(key, state.to_bytes())
                else:
                    self.tree.put(key, state.to_bytes())
        buffer = self._docid_buffer
        self._docid_buffer = None
        if not buffer:
            return
        buffer.sort()
        pairs = [
            (encode_tuple((n,)), encode_uint(doc_id)) for n, doc_id in buffer
        ]
        if self.docid_tree.is_empty():
            self.docid_tree.bulk_load(pairs)
        else:
            for key, value in pairs:
                self.docid_tree.insert(key, value, allow_exact_dup=True)

    def _commit_batch(self) -> None:
        """One durable commit per chunk: store bytes first, tree after.

        The docstore/source files are flushed (with fsync) *before* the
        pager commit so that, under the crash model, the store bounds
        stamped inside :meth:`flush` always describe bytes that are
        durable by the time the tree commit lands.  A crash anywhere in
        between reopens on the previous commit; trailing complete store
        records are truncated by :meth:`_recover_store_bounds`."""
        for store in (self.docstore, self.source_store):
            flush = getattr(store, "flush", None) if store is not None else None
            if flush is not None:
                flush(fsync=True)
        self.flush()

    # -- DocId tree helpers, batch-buffer aware ------------------------

    def _attach_doc(self, n: int, doc_id: int) -> None:
        if self._docid_buffer is not None:
            self._docid_buffer.append((n, doc_id))
            return
        super()._attach_doc(n, doc_id)

    def _detach_doc(self, n: int, doc_id: int) -> int:
        if self._docid_buffer is not None:
            try:
                self._docid_buffer.remove((n, doc_id))
                return 1
            except ValueError:
                pass  # attached before this chunk: fall through to the tree
        return super()._detach_doc(n, doc_id)

    # ------------------------------------------------------------------
    # matching

    def match_sequence(self, query_sequence: QuerySequence, guard=None, trace=None) -> set[int]:
        return self._matcher.match(query_sequence, guard, trace)

    @property
    def match_stats(self):
        """MatchStats of the most recent :meth:`match_sequence` call."""
        return self._matcher.stats

    def root_scope(self) -> Scope:
        return self._root_state.scope

    def _scope_of(self, n: int, value: bytes) -> Optional[Scope]:
        # NodeState.to_bytes starts [flags][uint size]...; the query path
        # only needs the scope, so decode just the size field instead of
        # rebuilding the whole NodeState per posting (hot in group loads).
        return Scope(n, decode_uint(value, 1)[0])

    # ------------------------------------------------------------------
    # payloads: sequence bytes + the node labels of the insert path

    def _make_payload(
        self, sequence: StructureEncodedSequence, labels: list[int]
    ) -> bytes:
        seq_bytes = sequence.to_bytes()
        out = bytearray(encode_uint(len(seq_bytes)))
        out += seq_bytes
        for n in labels:
            out += encode_uint(n)
        return bytes(out)

    def _parse_payload(self, payload: bytes) -> tuple[StructureEncodedSequence, list[int]]:
        seq_len, offset = decode_uint(payload)
        sequence = StructureEncodedSequence.from_bytes(payload[offset : offset + seq_len])
        offset += seq_len
        labels: list[int] = []
        while offset < len(payload):
            n, offset = decode_uint(payload, offset)
            labels.append(n)
        return sequence, labels

    def _payload_to_sequence(self, payload: bytes) -> StructureEncodedSequence:
        return self._parse_payload(payload)[0]

    # ------------------------------------------------------------------
    # maintenance / measurements

    def flush(self) -> None:
        """Persist both B+Trees (and through them the pager).

        The committed byte lengths of the doc/source stores are stamped
        into the combined tree first, so they ride the same pager commit
        — that one atomic step is what makes batch recovery land exactly
        on a commit boundary (docs/INTERNALS.md section 14)."""
        with self.rwlock.write():
            self._record_store_bounds()
            self.tree.flush()
            self.docid_tree.flush()
            self._pager.sync()

    def _record_store_bounds(self) -> None:
        """Stamp current store byte lengths under META_STORE_BOUNDS_KEY.

        Encoded as ``(flag, size)`` per store (flag 0 = store absent or
        without byte accounting) since the tuple codec has no negative
        integers.  Skipped entirely when no store reports a size, and
        skipped when unchanged so read-only sessions stay clean."""
        bounds: list[int] = []
        any_present = False
        for store in (self.docstore, self.source_store):
            size = getattr(store, "byte_size", None) if store is not None else None
            if size is None:
                bounds.extend((0, 0))
            else:
                bounds.extend((1, size))
                any_present = True
        if not any_present:
            return
        value = encode_tuple(tuple(bounds))
        if self.tree.get(META_STORE_BOUNDS_KEY) != value:
            self.tree.put(META_STORE_BOUNDS_KEY, value)

    def _recover_store_bounds(self) -> int:
        """Truncate store bytes past the last committed bounds.

        Returns the number of trailing (fully written but uncommitted)
        documents dropped.  Bounds *smaller* than recorded are left
        alone: compaction legitimately shrinks the files without a
        bounds re-stamp until the next flush."""
        value = self.tree.get(META_STORE_BOUNDS_KEY)
        if value is None:
            return 0
        parts = decode_tuple(value)
        dropped = 0
        for i, store in enumerate((self.docstore, self.source_store)):
            if store is None or 2 * i + 1 >= len(parts):
                continue
            flag, size = parts[2 * i], parts[2 * i + 1]
            if not flag:
                continue
            truncate_to = getattr(store, "truncate_to", None)
            current = getattr(store, "byte_size", None)
            if truncate_to is None or current is None:
                continue
            if current > size:
                count = truncate_to(size)
                if store is self.docstore:
                    # source drops mirror the same documents: count once
                    dropped += count
        return dropped

    def close(self) -> None:
        with self.rwlock.write():
            self.tree.close()
            self.docid_tree.close()
            self._pager.close()

    def index_stats(self) -> dict[str, TreeStats]:
        """Per-tree size statistics (Figure 11(a))."""
        return {"combined": self.tree.stats(), "docid": self.docid_tree.stats()}
