"""ViST: a dynamic index method for querying XML data by tree structures.

Reproduction of Wang, Park, Fan & Yu (SIGMOD 2003).  The public API:

* :class:`VistIndex` — the paper's contribution: a dynamically-labelled
  virtual suffix tree over B+Trees, with insertion, deletion and
  structural queries (branches, ``*``, ``//``) answered by subsequence
  matching without joins;
* :class:`RistIndex` / :class:`NaiveIndex` — the paper's intermediate and
  strawman designs (Sections 3.2–3.3);
* :class:`PathIndex` / :class:`XissIndex` — the two comparison baselines
  of the evaluation;
* document model, parser, schemas, sequence transform, XPath-subset
  parser, dataset generators and the storage substrate underneath.

Quick start::

    from repro import VistIndex, XmlNode

    index = VistIndex()
    order = XmlNode("purchase")
    order.element("seller").element("location", text="boston")
    order.element("buyer").element("location", text="newyork")
    doc_id = index.add(order)
    assert index.query("/purchase/*[location='boston']") == [doc_id]
"""

from repro.baselines import ApexIndex, PathIndex, XissIndex
from repro.datasets import (
    DblpConfig,
    DblpGenerator,
    SyntheticConfig,
    SyntheticGenerator,
    XmarkConfig,
    XmarkGenerator,
    dblp_schema,
    xmark_schema,
)
from repro.doc import (
    ChildSpec,
    CorpusStats,
    ElementDecl,
    Occurs,
    Schema,
    XmlDocument,
    XmlNode,
    parse_document,
    parse_fragment,
    split_document,
    split_records,
)
from repro.errors import ReproError
from repro.index import NaiveIndex, RistIndex, VistIndex, verify_document
from repro.labeling import ClueAllocator, FollowSets, LambdaAllocator, Scope
from repro.query import QueryNode, QueryTranslator, parse_xpath
from repro.sequence import (
    Item,
    SequenceEncoder,
    StructureEncodedSequence,
    ValueHasher,
)
from repro.storage import (
    BPlusTree,
    FileDocStore,
    FilePager,
    MemoryDocStore,
    MemoryPager,
    WalPager,
)

__version__ = "1.0.0"

__all__ = [
    "VistIndex",
    "RistIndex",
    "NaiveIndex",
    "PathIndex",
    "XissIndex",
    "ApexIndex",
    "verify_document",
    "XmlNode",
    "XmlDocument",
    "parse_document",
    "parse_fragment",
    "split_records",
    "split_document",
    "Schema",
    "ElementDecl",
    "ChildSpec",
    "Occurs",
    "CorpusStats",
    "Item",
    "StructureEncodedSequence",
    "SequenceEncoder",
    "ValueHasher",
    "QueryNode",
    "parse_xpath",
    "QueryTranslator",
    "Scope",
    "LambdaAllocator",
    "ClueAllocator",
    "FollowSets",
    "BPlusTree",
    "MemoryPager",
    "FilePager",
    "WalPager",
    "MemoryDocStore",
    "FileDocStore",
    "SyntheticGenerator",
    "SyntheticConfig",
    "DblpGenerator",
    "DblpConfig",
    "dblp_schema",
    "XmarkGenerator",
    "XmarkConfig",
    "xmark_schema",
    "ReproError",
    "__version__",
]
