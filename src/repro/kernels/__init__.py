"""Packed-column kernels for the query hot path (pure Python, optional).

This module is the *accelerator seam* the ROADMAP's "compiled/vectorized
hot kernels" phase calls for: every packed representation used by the
query path funnels through these few functions, so a compiled backend
(mypyc/Cython/C) can later replace them one-for-one while the pure-Python
fallback keeps working everywhere.  Three kernels live here today:

* :func:`pack_ints` — the posting columns.  A sorted ``n``/``end`` column
  becomes an ``array('q')`` (one machine word per label, contiguous, C
  bisection) whenever every value fits a signed 64-bit int.  ViST's
  dynamic labels are unbounded (``DEFAULT_MAX = 2**256``), so the kernel
  falls back to a plain list for oversized values — same ordering, same
  ``bisect`` interface, no silent truncation.
* :func:`leaf_cell_offsets` — zero-copy page decode.  A B+Tree leaf is
  parsed into a flat offset table (one pass of ``struct.unpack_from``,
  no per-cell byte slicing); cells are sliced out of the pager's buffer
  *on access*, so a point lookup touches O(log n) cells of a page
  instead of materialising all of them.  The CRC was already verified
  once when the pager produced the buffer.
* :func:`encode_columns` / :func:`decode_columns` — a byte codec for
  integer column sets.  The differential oracle fingerprints answer sets
  with it (packed and unpacked configurations must produce *byte
  identical* answers), and the Hypothesis round-trip property in
  ``tests/test_kernels.py`` pins the codec itself.

``REPRO_PACKED=0`` (see :func:`packed_enabled`) disables every packed
path at once: posting groups keep list columns, leaves decode eagerly,
and the matcher walks the tuple frontier — the exact pre-packing code,
kept live as the reference implementation.
"""

from __future__ import annotations

import os
import struct
from array import array
from typing import List, Sequence, Union

from repro.errors import CodecError
from repro.storage.serialization import decode_int, encode_int, encode_uint, decode_uint

__all__ = [
    "packed_enabled",
    "pack_ints",
    "encode_columns",
    "decode_columns",
    "leaf_cell_offsets",
]

_PACKED_ENV = "REPRO_PACKED"

# array('q') bounds: one machine word per value.  Anything outside falls
# back to a plain Python list (ViST labels routinely exceed 2**63).
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

IntColumn = Union["array", List[int]]


def packed_enabled() -> bool:
    """Whether the packed kernels are active (``REPRO_PACKED=0`` disables).

    Read from the environment on every call so tests and the CI
    ``kernels`` job can flip the seam per process without re-importing;
    the call is two dict lookups, far below the cost of any path it
    gates.
    """
    return os.environ.get(_PACKED_ENV, "1") != "0"


def pack_ints(values: Sequence[int]) -> IntColumn:
    """Pack an integer column: ``array('q')`` when every value fits int64.

    The fallback is a plain list with identical ordering and indexing
    semantics — ``bisect`` and ``len`` work on both, so consumers never
    branch on the representation.
    """
    if packed_enabled():
        try:
            return array("q", values)
        except OverflowError:
            pass  # a label exceeds int64: keep exact Python ints
    return list(values)


# ----------------------------------------------------------------------
# column byte codec (oracle fingerprints, round-trip property tests)

_COL_FIXED64 = 0x00  # little-endian i64 * count
_COL_VARINT = 0x01  # order-preserving encode_int per value (any width)

_PACK_I64 = struct.Struct("<q")


def encode_columns(columns: Sequence[Sequence[int]]) -> bytes:
    """Serialise integer columns to a canonical byte string.

    Each column is length-prefixed and tagged with its packing mode:
    fixed 64-bit little-endian words when every value fits, else the
    unbounded :func:`~repro.storage.serialization.encode_int` codec
    (max-width ints up to ±(2**2040 - 1)).  The encoding is canonical —
    equal column sets always produce equal bytes — which is what lets
    the differential oracle compare answer sets *as bytes* across
    packed/unpacked configurations.
    """
    out = bytearray(encode_uint(len(columns)))
    for column in columns:
        values = list(column)
        out += encode_uint(len(values))
        if all(_INT64_MIN <= v <= _INT64_MAX for v in values):
            out.append(_COL_FIXED64)
            packed = array("q", values)
            if struct.pack("<h", 1) != array("h", [1]).tobytes():  # pragma: no cover
                packed.byteswap()  # big-endian host: canonicalise
            out += packed.tobytes()
        else:
            out.append(_COL_VARINT)
            for v in values:
                out += encode_int(v)
    return bytes(out)


def decode_columns(data: bytes) -> list[list[int]]:
    """Inverse of :func:`encode_columns` (always plain lists of ints)."""
    ncols, offset = decode_uint(data)
    columns: list[list[int]] = []
    for _ in range(ncols):
        count, offset = decode_uint(data, offset)
        if offset >= len(data):
            raise CodecError("truncated column: missing mode byte")
        mode = data[offset]
        offset += 1
        if mode == _COL_FIXED64:
            end = offset + 8 * count
            if end > len(data):
                raise CodecError("truncated fixed64 column")
            packed = array("q")
            packed.frombytes(data[offset:end])
            if struct.pack("<h", 1) != array("h", [1]).tobytes():  # pragma: no cover
                packed.byteswap()
            columns.append(packed.tolist())
            offset = end
        elif mode == _COL_VARINT:
            values: list[int] = []
            for _ in range(count):
                v, offset = decode_int(data, offset)
                values.append(v)
            columns.append(values)
        else:
            raise CodecError(f"unknown column mode {mode:#x}")
    if offset != len(data):
        raise CodecError("trailing bytes after last column")
    return columns


# ----------------------------------------------------------------------
# zero-copy leaf decode

_CELL_HDR = struct.Struct("<HH")


def leaf_cell_offsets(raw: bytes, count: int, header: int) -> tuple[array, int]:
    """Offset table for a B+Tree leaf: one pass, no per-cell slicing.

    Returns ``(offsets, end)`` where ``offsets`` is a flat
    ``array('I')`` of ``(key_offset, key_len, value_len)`` triples into
    ``raw`` and ``end`` is the offset one past the last cell — which is
    exactly the page's used-bytes figure, so the caller gets it for
    free.  Cells are materialised lazily by slicing ``raw`` at access
    time; the buffer itself (already CRC-verified by the pager) is the
    only copy of the data.
    """
    offsets = array("I", bytes(12 * count))
    off = header
    unpack = _CELL_HDR.unpack_from
    pos = 0
    for _ in range(count):
        klen, vlen = unpack(raw, off)
        off += 4
        offsets[pos] = off
        offsets[pos + 1] = klen
        offsets[pos + 2] = vlen
        pos += 3
        off += klen + vlen
    return offsets, off
