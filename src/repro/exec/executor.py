"""QueryExecutor: N worker threads over one shared open index.

The executor owns nothing but threads — the index is opened (and later
closed) by the caller and shared by every worker.  Isolation comes from
the index itself: :meth:`repro.index.base.XmlIndexBase.query` takes the
index's readers–writer lock, so each query sees a consistent snapshot
even while another thread inserts or removes documents.

Guards are **per query**: each submission gets a fresh
:class:`~repro.index.guard.QueryGuard` from ``guard_factory`` (when one
is configured), so a deadline armed — or a ``cancel()`` delivered — in
one query can never leak into the next (see the guard-reuse fix in
:mod:`repro.index.guard`).
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.index.guard import QueryGuard

__all__ = ["QueryExecutor", "QueryOutcome"]


@dataclass
class QueryOutcome:
    """What one submitted query produced.

    Exceptions are captured, not raised, so one poisoned query in a batch
    cannot take down the batch: callers inspect :attr:`ok` / :attr:`error`
    per outcome (the multi-threaded oracle hammer asserts on exactly
    this).
    """

    position: int
    query: object
    result: Optional[list[int]] = None
    error: Optional[BaseException] = None
    elapsed_ms: float = 0.0
    guard: Optional[QueryGuard] = field(default=None, repr=False)
    #: sharded scatter-gather only: shards that could not answer when the
    #: executor ran in ``partial`` mode.  ``None`` means the result is
    #: complete; a list (possibly long) means ``result`` is the exact
    #: union of the *answering* shards and nothing more is claimed.
    missing_shards: Optional[list[int]] = None
    #: sharded scatter-gather only: per-shard spans for ``--explain``
    #: ({shard: {"status", "elapsed_ms"|"error"}}).
    shard_detail: Optional[dict] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> list[int]:
        """The result, re-raising the captured exception if there is one."""
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class QueryExecutor:
    """Run queries against one shared index from a pool of worker threads.

    ``verify`` is passed through to :meth:`XmlIndexBase.query` (exact
    mode).  ``guard_factory`` builds one fresh guard per query; ``None``
    runs unguarded.  The executor is a context manager; :meth:`close`
    waits for in-flight queries and joins the workers.
    """

    def __init__(
        self,
        index,
        threads: int = 4,
        *,
        verify: bool = False,
        guard_factory: Optional[Callable[[], QueryGuard]] = None,
    ) -> None:
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.index = index
        self.threads = threads
        self.verify = verify
        self.guard_factory = guard_factory
        self._pool = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-query"
        )
        self._closed = False

    # -- submission ------------------------------------------------------

    def submit(self, query, position: int = 0) -> "Future[QueryOutcome]":
        """Schedule one query; the future resolves to a :class:`QueryOutcome`."""
        return self.submit_with(query, position=position)

    def submit_with(
        self,
        query,
        position: int = 0,
        *,
        verify: Optional[bool] = None,
        guard_factory: Optional[Callable[[], QueryGuard]] = None,
    ) -> "Future[QueryOutcome]":
        """Like :meth:`submit` with per-submission overrides.

        ``verify``/``guard_factory`` default to the executor-wide settings
        when ``None`` — the shard worker uses this to honour per-frame
        exact-mode and guard budgets over one shared pool.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        return self._pool.submit(
            self._run_one,
            query,
            position,
            self.verify if verify is None else verify,
            self.guard_factory if guard_factory is None else guard_factory,
        )

    def run(self, queries: Sequence) -> list[QueryOutcome]:
        """Run a batch; outcomes come back in submission order."""
        futures = [self.submit(query, i) for i, query in enumerate(queries)]
        return [future.result() for future in futures]

    def results(self, queries: Sequence) -> list[list[int]]:
        """Like :meth:`run` but unwraps: raises the first captured error."""
        return [outcome.unwrap() for outcome in self.run(queries)]

    def _run_one(self, query, position: int, verify: bool, guard_factory) -> QueryOutcome:
        guard = guard_factory() if guard_factory is not None else None
        outcome = QueryOutcome(position=position, query=query, guard=guard)
        t0 = time.perf_counter()
        try:
            outcome.result = self.index.query(query, verify=verify, guard=guard)
        except BaseException as exc:  # captured per-outcome, see QueryOutcome
            outcome.error = exc
        outcome.elapsed_ms = (time.perf_counter() - t0) * 1000.0
        return outcome

    # -- lifecycle -------------------------------------------------------

    def close(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Join the workers.  ``cancel_pending`` drops queued (not yet
        started) submissions first — the error-path teardown, where
        waiting out a deep queue would hang the shutdown the caller is
        trying to make."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=wait, cancel_futures=cancel_pending)

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, exc_type, *_exc) -> None:
        # on the error path, don't wait for a backlog nobody will read
        self.close(cancel_pending=exc_type is not None)
