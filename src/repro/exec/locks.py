"""Readers–writer lock for the concurrent read path.

The index stack was built single-writer / no-concurrent-readers (see the
original :mod:`repro.storage.bptree` docstring).  The concurrent read
path keeps that write-side simplicity and adds snapshot isolation at the
index boundary: any number of queries run under the read lock, a
mutation (``add``/``remove``/``finalize``/``flush``) holds the write
lock alone, so every query observes the index as of the moment its read
section began — structure versions, scope labels and cached descents
cannot change underneath it.
"""

from __future__ import annotations

import threading

__all__ = ["RWLock"]


class _Section:
    """Reusable context manager bound to one acquire/release pair.

    Stateless (the lock itself tracks per-thread depth), so one instance
    per lock serves every thread and nesting level without allocation on
    the query hot path.
    """

    __slots__ = ("_acquire", "_release")

    def __init__(self, acquire, release) -> None:
        self._acquire = acquire
        self._release = release

    def __enter__(self) -> "_Section":
        self._acquire()
        return self

    def __exit__(self, *_exc) -> bool:
        self._release()
        return False


class RWLock:
    """Reentrant readers–writer lock with writer preference.

    Semantics:

    * many threads may hold the read lock at once; the write lock is
      exclusive against readers and other writers;
    * **reentrant**: a thread may nest read sections in read sections and
      write sections in write sections, and may open read sections while
      holding the write lock (``query_nodes`` calls ``query``; ``remove``
      reads the tree it is mutating);
    * **no upgrade**: a thread holding only the read lock must not
      request the write lock — that raises ``RuntimeError`` instead of
      deadlocking two upgraders against each other;
    * **writer preference**: once a writer is waiting, fresh first-entry
      readers queue behind it, so sustained query traffic cannot starve
      inserts.  Reentrant re-entries are always admitted (blocking them
      would deadlock the thread against itself).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0  # threads currently inside read sections
        self._writer: int | None = None  # ident of the write-lock holder
        self._writer_depth = 0
        self._writers_waiting = 0
        self._local = threading.local()  # per-thread read-section depth
        self._read_section = _Section(self.acquire_read, self.release_read)
        self._write_section = _Section(self.acquire_write, self.release_write)

    # -- context-manager entry points -----------------------------------

    def read(self) -> _Section:
        """``with lock.read(): ...`` — shared access."""
        return self._read_section

    def write(self) -> _Section:
        """``with lock.write(): ...`` — exclusive access."""
        return self._write_section

    # -- read side -------------------------------------------------------

    def acquire_read(self) -> None:
        depth = getattr(self._local, "depth", 0)
        if depth or self._writer == threading.get_ident():
            # reentrant read, or read inside this thread's own write
            # section (which already excludes everyone else)
            self._local.depth = depth + 1
            return
        with self._cond:
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        self._local.depth = 1

    def release_read(self) -> None:
        depth = getattr(self._local, "depth", 0)
        if depth == 0:
            raise RuntimeError("release_read without a matching acquire_read")
        self._local.depth = depth - 1
        if depth > 1 or self._writer == threading.get_ident():
            return
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- write side ------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        if self._writer == me:
            self._writer_depth += 1
            return
        if getattr(self._local, "depth", 0):
            raise RuntimeError(
                "cannot upgrade a read lock to a write lock; leave the read "
                "section first"
            )
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
                self._writer = me
                self._writer_depth = 1
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        if self._writer != threading.get_ident():
            raise RuntimeError(
                "release_write by a thread that does not hold the write lock"
            )
        self._writer_depth -= 1
        if self._writer_depth:
            return
        with self._cond:
            self._writer = None
            self._cond.notify_all()
