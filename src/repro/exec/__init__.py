"""Concurrent query execution: the RW lock and the thread-pool executor."""

from repro.exec.executor import QueryExecutor, QueryOutcome
from repro.exec.locks import RWLock

__all__ = ["QueryExecutor", "QueryOutcome", "RWLock"]
