"""DTD-like schemas: sibling order plus occurrence statistics.

ViST needs a schema for two things (paper Section 2 and Section 3.4.1):

1. **Sibling order.**  "The DTD schema embodies a linear order of all
   elements/attributes defined therein.  If the DTD is not available, we
   simply use the lexicographical order."  :meth:`Schema.sibling_position`
   exposes that linear order; the sequence transform sorts siblings by it.

2. **Semantic/statistical clues.**  Dynamic scope allocation with clues
   (Eq. 1–4) needs ``p(u|x)`` — the probability that child ``u`` occurs
   under ``x`` — multiplicity information for ``x*`` children, and an
   estimate of the number of distinct values under each element/attribute.
   Those live on each :class:`ChildSpec` / :class:`ElementDecl` with
   sensible defaults derived from the declared cardinality.

Schemas can be built programmatically or parsed from the DTD subset the
paper's Figure 1 uses (``<!ELEMENT a (b, c*, d?)>`` sequences and
``<!ATTLIST ...>`` declarations) via :meth:`Schema.from_dtd`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

from repro.errors import SchemaError

__all__ = ["Occurs", "ChildSpec", "ElementDecl", "Schema"]


class Occurs(Enum):
    """Cardinality of a child within its parent (DTD suffixes)."""

    ONE = ""  # exactly one
    OPT = "?"  # zero or one
    MANY = "*"  # zero or more
    PLUS = "+"  # one or more


_DEFAULT_PROB = {Occurs.ONE: 1.0, Occurs.OPT: 0.5, Occurs.MANY: 0.7, Occurs.PLUS: 1.0}


@dataclass
class ChildSpec:
    """One child slot in an element declaration.

    ``prob`` is ``p(child | parent)`` — the probability that *at least one*
    occurrence appears.  ``mean_repeats`` parameterises the geometric
    multiplicity model used for ``*``/``+`` children (Section 3.4.1's
    ``p_n(x|d)``).
    """

    name: str
    occurs: Occurs = Occurs.ONE
    prob: Optional[float] = None
    mean_repeats: float = 2.0
    is_attribute: bool = False

    def __post_init__(self) -> None:
        if self.prob is None:
            self.prob = _DEFAULT_PROB[self.occurs]
        if not 0.0 <= self.prob <= 1.0:
            raise SchemaError(f"p({self.name}|parent) = {self.prob} is not in [0, 1]")
        if self.mean_repeats < 1.0:
            raise SchemaError(f"mean_repeats for {self.name} must be >= 1")

    @property
    def repeatable(self) -> bool:
        return self.occurs in (Occurs.MANY, Occurs.PLUS)

    def repeat_continue_prob(self) -> float:
        """Probability that another occurrence follows, geometric model."""
        if not self.repeatable:
            return 0.0
        return 1.0 - 1.0 / self.mean_repeats


@dataclass
class ElementDecl:
    """Declaration of one element: ordered children + value statistics."""

    name: str
    children: list[ChildSpec] = field(default_factory=list)
    has_text: bool = False
    value_cardinality: int = 64

    def child(self, name: str) -> Optional[ChildSpec]:
        for spec in self.children:
            if spec.name == name:
                return spec
        return None

    def child_position(self, name: str) -> Optional[int]:
        for i, spec in enumerate(self.children):
            if spec.name == name:
                return i
        return None


class Schema:
    """A set of element declarations rooted at ``root``."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.decls: dict[str, ElementDecl] = {}

    # -- construction -----------------------------------------------------

    def element(
        self,
        name: str,
        children: Iterable[ChildSpec] = (),
        *,
        has_text: bool = False,
        value_cardinality: int = 64,
    ) -> ElementDecl:
        """Declare (or redeclare) an element and return its declaration."""
        decl = ElementDecl(
            name,
            list(children),
            has_text=has_text,
            value_cardinality=value_cardinality,
        )
        seen: set[str] = set()
        for spec in decl.children:
            if spec.name in seen:
                raise SchemaError(
                    f"element {name!r} declares child {spec.name!r} twice"
                )
            seen.add(spec.name)
        self.decls[name] = decl
        return decl

    def get(self, name: str) -> Optional[ElementDecl]:
        return self.decls.get(name)

    def require(self, name: str) -> ElementDecl:
        decl = self.decls.get(name)
        if decl is None:
            raise SchemaError(f"element {name!r} is not declared")
        return decl

    # -- sibling order ------------------------------------------------------

    def sibling_position(self, parent: str, child: str) -> tuple[int, str]:
        """Sort key for ``child`` among the children of ``parent``.

        Declared children sort by declaration position; undeclared ones
        sort after all declared ones, lexicographically — that keeps the
        order total even for documents that stray from the schema.
        """
        decl = self.decls.get(parent)
        if decl is not None:
            pos = decl.child_position(child)
            if pos is not None:
                return (pos, "")
        return (1 << 30, child)

    # -- statistics used by clue-based labelling -----------------------------

    def occurrence_prob(self, parent: str, child: str) -> float:
        """``p(child | parent)`` — paper Section 3.4.1."""
        decl = self.decls.get(parent)
        if decl is None:
            return 0.5
        spec = decl.child(child)
        return spec.prob if spec is not None else 0.1

    def value_cardinality(self, label: str) -> int:
        decl = self.decls.get(label)
        return decl.value_cardinality if decl is not None else 64

    # -- DTD parsing ----------------------------------------------------------

    _ELEMENT_RE = re.compile(r"<!ELEMENT\s+([\w.\-:]+)\s+(.*?)>", re.S)
    _ATTLIST_RE = re.compile(r"<!ATTLIST\s+([\w.\-:]+)\s+(.*?)>", re.S)
    _ATT_DEF_RE = re.compile(r"([\w.\-:]+)\s+(?:CDATA|ID|IDREF|NMTOKEN)\s*(?:#\w+)?")

    @classmethod
    def from_dtd(cls, text: str, root: Optional[str] = None) -> "Schema":
        """Parse the DTD subset of paper Figure 1 into a schema.

        Supports element content models made of names with ``? * +``
        suffixes combined by ``,`` (sequence) and ``|`` (choice — each
        branch becomes an optional child in declaration order), ``EMPTY``,
        ``ANY`` and ``(#PCDATA)``.  ``ATTLIST`` attributes become leading
        children in declaration order, as in paper Figure 3 where ``ID``
        and ``Name`` attributes are nodes before sub-elements.
        """
        element_children: dict[str, list[ChildSpec]] = {}
        element_text: dict[str, bool] = {}
        order: list[str] = []
        for match in cls._ELEMENT_RE.finditer(text):
            name, model = match.group(1), match.group(2).strip()
            order.append(name)
            specs, has_text = cls._parse_content_model(name, model)
            element_children[name] = specs
            element_text[name] = has_text
        attributes: dict[str, list[ChildSpec]] = {}
        for match in cls._ATTLIST_RE.finditer(text):
            name, body = match.group(1), match.group(2)
            specs = attributes.setdefault(name, [])
            for att in cls._ATT_DEF_RE.finditer(body):
                specs.append(ChildSpec(att.group(1), Occurs.ONE, is_attribute=True))
        if not order:
            raise SchemaError("no <!ELEMENT ...> declarations found")
        schema = cls(root or order[0])
        for name in order:
            children = attributes.get(name, []) + element_children[name]
            schema.element(name, children, has_text=element_text[name])
        # Attribute-only names (ATTLIST without ELEMENT) get leaf decls.
        for name, specs in attributes.items():
            if name not in schema.decls:
                schema.element(name, specs)
        return schema

    @classmethod
    def _parse_content_model(cls, name: str, model: str) -> tuple[list[ChildSpec], bool]:
        model = model.strip()
        if model in ("EMPTY", "ANY"):
            return [], model == "ANY"
        if not (model.startswith("(") and model.rstrip("?*+").endswith(")")):
            raise SchemaError(f"unsupported content model for {name!r}: {model!r}")
        outer_suffix = model[len(model.rstrip("?*+")) :]
        inner = model.rstrip("?*+")[1:-1]
        has_text = False
        specs: list[ChildSpec] = []
        is_choice = "|" in inner and "," not in inner
        for part in re.split(r"[|,]", inner):
            part = part.strip()
            if not part:
                continue
            if part == "#PCDATA":
                has_text = True
                continue
            suffix = ""
            while part and part[-1] in "?*+":
                suffix = part[-1]
                part = part[:-1].strip()
            if not re.fullmatch(r"[\w.\-:]+", part):
                raise SchemaError(
                    f"unsupported token {part!r} in content model of {name!r}"
                )
            occurs = Occurs(suffix)
            if outer_suffix in ("*", "+"):
                occurs = Occurs.MANY
            elif is_choice or outer_suffix == "?":
                if occurs == Occurs.ONE:
                    occurs = Occurs.OPT
            specs.append(ChildSpec(part, occurs))
        return specs, has_text
