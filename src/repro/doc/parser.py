"""A small XML parser producing :class:`~repro.doc.model.XmlNode` trees.

The reproduction keeps its substrate self-contained, so this is a
hand-written recursive-descent parser covering the XML subset the paper's
datasets use: elements, attributes, character data, CDATA sections,
comments, processing instructions, an XML declaration, a ``<!DOCTYPE ...>``
prologue (skipped), and the five predefined entities plus numeric
character references.

It is *not* a validating parser — no DTD interpretation, no namespaces —
but it round-trips everything :meth:`XmlNode.to_xml` produces and agrees
with ``xml.etree.ElementTree`` on the corpora generated in this repo
(tested in ``tests/test_parser.py``).  :func:`from_element_tree` bridges
documents parsed by the standard library if callers prefer it.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.doc.model import XmlDocument, XmlNode
from repro.errors import XmlParseError

# first char: a letter (any script), underscore or colon; never a digit
_NAME_RE = re.compile(r"(?:[:_]|[^\W\d])[\w.\-:]*")
_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}

# the encoding pseudo-attribute of an XML declaration, matched over raw
# bytes (the declaration itself is ASCII-compatible in every encoding we
# can decode without external tables)
_ENC_DECL_RE = re.compile(rb"""<\?xml[^>]*?encoding\s*=\s*["']([A-Za-z][A-Za-z0-9._\-]*)["']""")

__all__ = [
    "parse_document",
    "parse_document_bytes",
    "parse_fragment",
    "from_element_tree",
    "detect_xml_encoding",
    "decode_xml_bytes",
]


def parse_document(text: str, name: Optional[str] = None) -> XmlDocument:
    """Parse a complete XML document (prologue allowed, one root element)."""
    return XmlDocument(root=parse_fragment(text), name=name)


def detect_xml_encoding(data: bytes) -> str:
    """The encoding of an XML byte stream, per its BOM or declaration.

    Follows XML's appendix-F autodetection for the cases this repo can
    decode without external codecs: a UTF-8 or UTF-16 BOM wins, then a
    16-bit-looking ``<`` pattern, then the ``encoding="..."`` pseudo-
    attribute of the declaration; the spec default of UTF-8 otherwise.
    """
    if data.startswith(b"\xef\xbb\xbf"):
        return "utf-8-sig"
    if data.startswith(b"\xff\xfe") or data.startswith(b"\xfe\xff"):
        return "utf-16"
    if data.startswith(b"<\x00"):
        return "utf-16-le"
    if data.startswith(b"\x00<"):
        return "utf-16-be"
    match = _ENC_DECL_RE.search(data[:256])
    if match:
        return match.group(1).decode("ascii")
    return "utf-8"


def decode_xml_bytes(data: bytes) -> str:
    """Decode XML bytes honouring the declared encoding (never the locale)."""
    encoding = detect_xml_encoding(data)
    try:
        return data.decode(encoding)
    except LookupError as exc:
        raise XmlParseError(f"unsupported XML encoding {encoding!r}") from exc
    except UnicodeDecodeError as exc:
        raise XmlParseError(
            f"undecodable XML input (declared encoding {encoding!r}): {exc}"
        ) from exc


def parse_document_bytes(data: bytes, name: Optional[str] = None) -> XmlDocument:
    """Parse a document from raw bytes, honouring its declared encoding."""
    return parse_document(decode_xml_bytes(data), name=name)


def parse_fragment(text: str) -> XmlNode:
    """Parse XML text and return the root element node."""
    parser = _Parser(text)
    root = parser.parse()
    return root


def from_element_tree(element) -> XmlNode:
    """Convert an ``xml.etree.ElementTree.Element`` into an :class:`XmlNode`."""
    node = XmlNode(element.tag, attributes=dict(element.attrib))
    text = (element.text or "").strip()
    pieces = [text] if text else []
    for child in element:
        node.add(from_element_tree(child))
        tail = (child.tail or "").strip()
        if tail:
            pieces.append(tail)
    if pieces:
        node.text = " ".join(pieces)
    return node


class _Parser:
    """Single-pass recursive-descent parser over the input string."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    # -- entry point -----------------------------------------------------

    def parse(self) -> XmlNode:
        self._skip_prologue()
        if self.pos >= self.length or self.text[self.pos] != "<":
            raise self._error("expected a root element")
        root = self._parse_element()
        self._skip_misc()
        if self.pos < self.length:
            raise self._error("content after the root element")
        return root

    # -- prologue / misc ---------------------------------------------------

    def _skip_prologue(self) -> None:
        while True:
            self._skip_whitespace()
            if self.text.startswith("<?", self.pos):
                self._skip_until("?>")
            elif self.text.startswith("<!--", self.pos):
                self._skip_until("-->")
            elif self.text.startswith("<!DOCTYPE", self.pos):
                self._skip_doctype()
            else:
                return

    def _skip_misc(self) -> None:
        while True:
            self._skip_whitespace()
            if self.text.startswith("<?", self.pos):
                self._skip_until("?>")
            elif self.text.startswith("<!--", self.pos):
                self._skip_until("-->")
            else:
                return

    def _skip_doctype(self) -> None:
        # DOCTYPE may contain a bracketed internal subset.
        depth = 0
        i = self.pos
        while i < self.length:
            c = self.text[i]
            if c == "[":
                depth += 1
            elif c == "]":
                depth -= 1
            elif c == ">" and depth <= 0:
                self.pos = i + 1
                return
            i += 1
        raise self._error("unterminated <!DOCTYPE ...>")

    # -- element structure -------------------------------------------------

    def _parse_element(self) -> XmlNode:
        self._expect("<")
        label = self._parse_name()
        node = XmlNode(label)
        self._parse_attributes(node)
        if self._accept("/>"):
            return node
        self._expect(">")
        self._parse_content(node)
        return node

    def _parse_attributes(self, node: XmlNode) -> None:
        while True:
            self._skip_whitespace()
            if self.pos >= self.length:
                raise self._error(f"unterminated start tag <{node.label}>")
            if self.text[self.pos] in "/>":
                return
            name = self._parse_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            quote = self.text[self.pos : self.pos + 1]
            if quote not in ("'", '"'):
                raise self._error(f"attribute {name!r} value must be quoted")
            self.pos += 1
            end = self.text.find(quote, self.pos)
            if end < 0:
                raise self._error(f"unterminated value for attribute {name!r}")
            raw = self.text[self.pos : end]
            self.pos = end + 1
            if name in node.attributes:
                raise self._error(f"duplicate attribute {name!r} on <{node.label}>")
            node.attributes[name] = self._expand_entities(raw)

    def _parse_content(self, node: XmlNode) -> None:
        pieces: list[str] = []
        while True:
            if self.pos >= self.length:
                raise self._error(f"unterminated element <{node.label}>")
            if self.text.startswith("</", self.pos):
                self.pos += 2
                name = self._parse_name()
                if name != node.label:
                    raise self._error(
                        f"mismatched end tag </{name}> for <{node.label}>"
                    )
                self._skip_whitespace()
                self._expect(">")
                break
            if self.text.startswith("<!--", self.pos):
                self._skip_until("-->")
            elif self.text.startswith("<![CDATA[", self.pos):
                end = self.text.find("]]>", self.pos + 9)
                if end < 0:
                    raise self._error("unterminated CDATA section")
                pieces.append(self.text[self.pos + 9 : end])
                self.pos = end + 3
            elif self.text.startswith("<?", self.pos):
                self._skip_until("?>")
            elif self.text[self.pos] == "<":
                node.add(self._parse_element())
            else:
                start = self.pos
                nxt = self.text.find("<", self.pos)
                if nxt < 0:
                    raise self._error(f"unterminated element <{node.label}>")
                pieces.append(self._expand_entities(self.text[start:nxt]))
                self.pos = nxt
        joined = " ".join(p.strip() for p in pieces if p.strip())
        if joined:
            node.text = joined

    # -- lexical helpers ----------------------------------------------------

    def _parse_name(self) -> str:
        match = _NAME_RE.match(self.text, self.pos)
        if not match:
            raise self._error("expected a name")
        self.pos = match.end()
        return match.group()

    def _expand_entities(self, raw: str) -> str:
        if "&" not in raw:
            return raw
        out: list[str] = []
        i = 0
        while i < len(raw):
            c = raw[i]
            if c != "&":
                out.append(c)
                i += 1
                continue
            end = raw.find(";", i + 1)
            if end < 0:
                raise self._error("unterminated entity reference")
            entity = raw[i + 1 : end]
            if entity.startswith("#x") or entity.startswith("#X"):
                out.append(chr(int(entity[2:], 16)))
            elif entity.startswith("#"):
                out.append(chr(int(entity[1:])))
            elif entity in _ENTITIES:
                out.append(_ENTITIES[entity])
            else:
                raise self._error(f"unknown entity &{entity};")
            i = end + 1
        return "".join(out)

    def _skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def _skip_until(self, token: str) -> None:
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self._error(f"unterminated construct (missing {token!r})")
        self.pos = end + len(token)

    def _expect(self, token: str) -> None:
        if not self.text.startswith(token, self.pos):
            raise self._error(f"expected {token!r}")
        self.pos += len(token)

    def _accept(self, token: str) -> bool:
        self._skip_whitespace()
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    def _error(self, message: str) -> XmlParseError:
        line = self.text.count("\n", 0, self.pos) + 1
        col = self.pos - self.text.rfind("\n", 0, self.pos)
        return XmlParseError(f"{message} (line {line}, column {col})")
