"""Corpus statistics collected from documents.

Dynamic scope allocation without clues (paper Section 3.4.1, "Dynamic
Scope Allocation without Clues") relies on "a rough estimation of the
number of different elements that follow a given element" — the expected
child-count λ used by Eq. 5–6.  :class:`CorpusStats` accumulates exactly
that from sample documents: per-label fanout, value cardinalities, depth
and sequence-length distributions.  The synthetic data generator collects
these on the fly, matching the paper's remark that "we collect statistics
during data generation for dynamic labeling purposes".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.doc.model import XmlDocument, XmlNode

__all__ = ["CorpusStats"]


@dataclass
class CorpusStats:
    """Incrementally-updated statistics over a document corpus."""

    documents: int = 0
    nodes: int = 0
    max_depth: int = 0
    _fanout_sum: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    _fanout_count: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    _values: dict[str, set[str]] = field(default_factory=lambda: defaultdict(set))
    _child_labels: dict[str, set[str]] = field(default_factory=lambda: defaultdict(set))

    def observe(self, document: XmlDocument) -> None:
        """Fold one document into the statistics (uses the expanded tree)."""
        self.documents += 1
        root = document.root.expanded()
        self.max_depth = max(self.max_depth, root.depth())
        for node in root.preorder():
            self.nodes += 1
            if node.is_value:
                continue
            self._fanout_sum[node.label] += len(node.children)
            self._fanout_count[node.label] += 1
            for child in node.children:
                if child.is_value:
                    self._values[node.label].add(child.value)
                else:
                    self._child_labels[node.label].add(child.label)

    def observe_sequence(self, sequence) -> None:
        """Fold one structure-encoded sequence into the statistics.

        Used by :class:`~repro.index.vist.VistIndex` to self-tune its
        λ allocator while ingesting ("we collect statistics during data
        generation for dynamic labeling purposes", paper Section 4).
        Value distinctness is tracked over hashes rather than strings —
        the same estimate the allocator needs.
        """
        self.documents += 1
        stack: list[list] = []  # [label, child_count]
        for item in sequence:
            self.nodes += 1
            depth = item.depth
            self.max_depth = max(self.max_depth, depth + 1)
            while len(stack) > depth:
                label, children = stack.pop()
                self._fanout_sum[label] += children
                self._fanout_count[label] += 1
            if stack:
                stack[-1][1] += 1
            if item.is_value:
                if item.prefix:
                    self._values[item.prefix[-1]].add(item.symbol)
            else:
                if item.prefix:
                    self._child_labels[item.prefix[-1]].add(item.symbol)
                stack.append([item.symbol, 0])
        while stack:
            label, children = stack.pop()
            self._fanout_sum[label] += children
            self._fanout_count[label] += 1

    # -- estimates consumed by the dynamic labeller ------------------------

    def expected_fanout(self, label: str, default: float = 2.0) -> float:
        """λ for Eq. 5–6: mean child count observed under ``label``."""
        count = self._fanout_count.get(label, 0)
        if count == 0:
            return default
        return max(1.0, self._fanout_sum[label] / count)

    def distinct_values(self, label: str, default: int = 64) -> int:
        """Estimated number of distinct values under ``label``."""
        values = self._values.get(label)
        return len(values) if values else default

    def distinct_child_labels(self, label: str) -> int:
        return len(self._child_labels.get(label, ()))

    def mean_nodes_per_document(self) -> float:
        return self.nodes / self.documents if self.documents else 0.0

    def labels(self) -> list[str]:
        """Every element/attribute label seen, sorted."""
        return sorted(self._fanout_count)
