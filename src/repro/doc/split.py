"""Splitting large documents into substructure records.

The paper's XMark treatment (Section 4): "an XMARK dataset is a single
record with a very large and complicated tree structure.  Since it is not
meaningful to represent the entire dataset with a single structure-encoded
sequence, we break down its tree structure into a set of sub structures
... We convert each instance of these sub structures into a
structure-encoded sequence."  And from Section 3.4.1: "For databases with
large structures ... we break down the structure into small sub
structures, and create index for each of them.  Thus, we limit the
average length of the derived sequences."

:func:`split_records` does exactly that: given the labels that delimit
record substructures (``item``, ``person``, ...), it extracts one record
per instance.  Each record keeps the *spine* of ancestor labels above it
(``site → regions → africa → item``) so root-anchored queries like
``/site//item`` still bind, mirroring how the XMark generator shapes its
records; siblings outside the instance are dropped.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.doc.model import XmlDocument, XmlNode
from repro.errors import DocumentError

__all__ = ["split_records", "split_document"]


def split_records(
    root: XmlNode,
    record_labels: Iterable[str],
    *,
    keep_spine: bool = True,
) -> list[XmlNode]:
    """Extract one record per instance of the given labels.

    Instances nested inside another instance (an ``item`` under an
    ``item``) become records of their own as well — each substructure
    instance "justifies an index entry of its own" in the paper's words.
    With ``keep_spine`` each record is wrapped in copies of its ancestor
    chain (labels and attributes only, no siblings); otherwise records
    are rooted at the instance element itself.
    """
    labels = set(record_labels)
    if not labels:
        raise DocumentError("at least one record label is required")
    records: list[XmlNode] = []

    def walk(node: XmlNode, spine: list[XmlNode]) -> None:
        if node.label in labels:
            records.append(_wrap(node, spine) if keep_spine else _copy(node))
        spine.append(node)
        for child in node.children:
            walk(child, spine)
        spine.pop()

    walk(root, [])
    return records


def split_document(
    document: XmlDocument,
    record_labels: Iterable[str],
    *,
    keep_spine: bool = True,
) -> Iterator[XmlDocument]:
    """Document-level wrapper around :func:`split_records`."""
    for i, record in enumerate(
        split_records(document.root, record_labels, keep_spine=keep_spine)
    ):
        name = f"{document.name}#{i}" if document.name else None
        yield XmlDocument(root=record, name=name)


def _copy(node: XmlNode) -> XmlNode:
    out = XmlNode(node.label, attributes=dict(node.attributes), text=node.text)
    for child in node.children:
        out.add(_copy(child))
    return out


def _wrap(node: XmlNode, spine: list[XmlNode]) -> XmlNode:
    record = _copy(node)
    for ancestor in reversed(spine):
        shell = XmlNode(ancestor.label, attributes=dict(ancestor.attributes))
        shell.add(record)
        record = shell
    return record
