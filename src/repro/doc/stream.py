"""Streaming record extraction for corpora too large to materialise.

:func:`split_records` needs the whole document tree in memory, which
caps corpus size well below the paper's scale (289k DBLP records).
:func:`iter_stream_records` produces the *same records in the same
order* from a file, byte string, or binary stream, holding at most one
outermost record instance (plus the open ancestor spine) in memory at a
time: closed subtrees outside any record instance are detached as soon
as their end tag arrives.

The parse is event-driven (:class:`xml.etree.ElementTree.XMLPullParser`
fed raw bytes), so the XML declaration's encoding is honoured — the
expat layer decodes, not the locale.  Each completed outermost instance
is converted to :class:`~repro.doc.model.XmlNode`, wrapped in shells of
the still-open ancestors, and handed to :func:`split_records`, which
keeps nested instances and spine semantics byte-identical to the
non-streaming path (and therefore doc-id assignment too).
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET
from typing import IO, Iterable, Iterator, Optional, Union

from repro.doc.model import XmlNode
from repro.doc.parser import from_element_tree
from repro.doc.split import split_records
from repro.errors import DocumentError, XmlParseError

__all__ = ["iter_stream_records"]

_CHUNK_SIZE = 64 * 1024

Source = Union[str, os.PathLike, bytes, bytearray, IO[bytes]]


def _chunks(source: Source, chunk_size: int) -> Iterator[bytes]:
    if isinstance(source, (bytes, bytearray)):
        for i in range(0, len(source), chunk_size):
            yield bytes(source[i : i + chunk_size])
        return
    if hasattr(source, "read"):
        while True:
            chunk = source.read(chunk_size)  # type: ignore[union-attr]
            if not chunk:
                return
            yield chunk
        return
    with open(source, "rb") as fh:
        while True:
            chunk = fh.read(chunk_size)
            if not chunk:
                return
            yield chunk


def iter_stream_records(
    source: Source,
    record_labels: Optional[Iterable[str]] = None,
    *,
    keep_spine: bool = True,
    chunk_size: int = _CHUNK_SIZE,
) -> Iterator[XmlNode]:
    """Yield record subtrees from an XML byte stream, incrementally.

    ``source`` is a path, raw bytes, or a binary file object.  With
    ``record_labels`` the yielded records match
    ``split_records(root, record_labels, keep_spine=...)`` exactly —
    nested instances included — without ever building the full tree.
    With ``record_labels=None`` the whole document is parsed (streamed,
    but fully retained) and its root yielded as the single record.
    """
    labels = set(record_labels) if record_labels is not None else None
    if labels is not None and not labels:
        raise DocumentError("at least one record label is required")
    parser = ET.XMLPullParser(events=("start", "end"))

    def events() -> Iterator[tuple[str, ET.Element]]:
        try:
            for chunk in _chunks(source, chunk_size):
                parser.feed(chunk)
                yield from parser.read_events()
            parser.close()
            yield from parser.read_events()
        except ET.ParseError as exc:
            raise XmlParseError(f"stream parse error: {exc}") from exc

    stack: list[ET.Element] = []  # open elements, root first
    open_records = 0  # open elements whose tag is a record label
    root: Optional[ET.Element] = None
    for event, elem in events():
        if event == "start":
            if root is None:
                root = elem
            stack.append(elem)
            if labels is not None and elem.tag in labels:
                open_records += 1
            continue
        stack.pop()  # expat guarantees LIFO: this is `elem`
        if labels is None:
            continue
        is_record = elem.tag in labels
        if is_record:
            open_records -= 1
        if open_records > 0:
            continue  # still inside an enclosing instance
        if is_record:
            node = from_element_tree(elem)
            if keep_spine:
                for ancestor in reversed(stack):
                    shell = XmlNode(ancestor.tag, attributes=dict(ancestor.attrib))
                    shell.add(node)
                    node = shell
            yield from split_records(node, labels, keep_spine=keep_spine)
        # outside any instance now: the subtree can never contribute to a
        # future record (shells carry labels and attributes only), so
        # detach it to keep memory flat in the corpus size
        if stack:
            stack[-1].remove(elem)
    if labels is None:
        if root is None:
            raise XmlParseError("stream held no root element")
        yield from_element_tree(root)
