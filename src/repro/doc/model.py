"""XML document tree model.

ViST treats an XML document as an ordered node-labelled tree in which
elements, attributes and values are all nodes (paper Figure 3: attributes
hang off their element, and each text/attribute value is a leaf under the
element/attribute it belongs to).  :class:`XmlNode` is that tree;
:class:`XmlDocument` wraps a root node with an optional document id and
source name.

The model is deliberately small: order matters (sequences are preorder
traversals), attributes are stored in a dict but *materialised* as child
nodes by :func:`XmlNode.expanded` so that downstream layers see one node
kind, and values are plain strings (the hash function
:func:`repro.sequence.vocabulary.hash_value` maps them to integers later).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import DocumentError

__all__ = ["XmlNode", "XmlDocument"]


@dataclass
class XmlNode:
    """One node of an XML document tree.

    ``label`` is the element/attribute name.  ``text`` is the node's own
    textual content (for mixed content we keep only the concatenated,
    stripped text, which is all the paper's queries use).  ``attributes``
    map attribute names to string values; ``children`` are sub-elements in
    document order.
    """

    label: str
    attributes: dict[str, str] = field(default_factory=dict)
    text: Optional[str] = None
    children: list["XmlNode"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.label:
            raise DocumentError("XML node label must be non-empty")

    # -- construction helpers -------------------------------------------

    def add(self, child: "XmlNode") -> "XmlNode":
        """Append a child and return it (enables fluent tree building)."""
        self.children.append(child)
        return child

    def element(self, label: str, text: Optional[str] = None, **attributes: str) -> "XmlNode":
        """Create, append and return a child element."""
        return self.add(XmlNode(label, attributes=dict(attributes), text=text))

    # -- traversal -------------------------------------------------------

    def preorder(self) -> Iterator["XmlNode"]:
        """Yield this node and all descendants in document (preorder) order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def expanded(self) -> "XmlNode":
        """Return a copy with attributes and values lifted into child nodes.

        This is the tree of paper Figure 3: each attribute ``name=value``
        becomes a child node ``name`` holding a value leaf, and element
        text becomes a value leaf.  Value leaves are flagged with
        :attr:`is_value` via the ``#value`` convention: their label is the
        literal text prefixed with ``"="`` so that labels and values can
        never collide.
        """
        out = XmlNode(self.label)
        for name in sorted(self.attributes):
            attr = out.element(name)
            attr.add(XmlNode(_value_label(self.attributes[name])))
        if self.text is not None and self.text != "":
            out.add(XmlNode(_value_label(self.text)))
        for child in self.children:
            out.add(child.expanded())
        return out

    @property
    def is_value(self) -> bool:
        """True if this node is a value leaf created by :meth:`expanded`."""
        return self.label.startswith("=")

    @property
    def value(self) -> str:
        """The text of a value leaf (raises for non-value nodes)."""
        if not self.is_value:
            raise DocumentError(f"node {self.label!r} is not a value leaf")
        return self.label[1:]

    # -- measurements ------------------------------------------------------

    def size(self) -> int:
        """Number of nodes in this subtree."""
        return sum(1 for _ in self.preorder())

    def depth(self) -> int:
        """Height of this subtree (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    # -- search (used by tests and the verification filter) --------------

    def find_all(self, label: str) -> Iterator["XmlNode"]:
        """Yield every descendant (including self) with the given label."""
        return (node for node in self.preorder() if node.label == label)

    # -- serialization ----------------------------------------------------

    def to_xml(self, indent: int = 0) -> str:
        """Render as XML text (attributes sorted for determinism)."""
        pad = "  " * indent
        attrs = "".join(
            f' {name}="{_escape_attr(value)}"' for name, value in sorted(self.attributes.items())
        )
        inner_parts: list[str] = []
        if self.text:
            inner_parts.append(_escape_text(self.text))
        for child in self.children:
            inner_parts.append("\n" + child.to_xml(indent + 1))
        if not inner_parts:
            return f"{pad}<{self.label}{attrs}/>"
        inner = "".join(inner_parts)
        if self.children:
            inner += "\n" + pad
        return f"{pad}<{self.label}{attrs}>{inner}</{self.label}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, XmlNode):
            return NotImplemented
        return (
            self.label == other.label
            and self.attributes == other.attributes
            and (self.text or None) == (other.text or None)
            and self.children == other.children
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XmlNode({self.label!r}, children={len(self.children)})"


@dataclass
class XmlDocument:
    """A parsed document: root node plus provenance."""

    root: XmlNode
    name: Optional[str] = None

    def to_xml(self) -> str:
        return self.root.to_xml()

    def size(self) -> int:
        return self.root.size()

    def depth(self) -> int:
        return self.root.depth()


def _value_label(text: str) -> str:
    return "=" + text.strip()


def _escape_text(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attr(value: str) -> str:
    return _escape_text(value).replace('"', "&quot;")
