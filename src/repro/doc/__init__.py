"""XML document substrate: tree model, parser, schemas, corpus statistics."""

from repro.doc.model import XmlDocument, XmlNode
from repro.doc.parser import from_element_tree, parse_document, parse_fragment
from repro.doc.schema import ChildSpec, ElementDecl, Occurs, Schema
from repro.doc.split import split_document, split_records
from repro.doc.stats import CorpusStats

__all__ = [
    "XmlDocument",
    "XmlNode",
    "parse_document",
    "parse_fragment",
    "from_element_tree",
    "Schema",
    "ElementDecl",
    "ChildSpec",
    "Occurs",
    "CorpusStats",
    "split_records",
    "split_document",
]
