"""XML document substrate: tree model, parser, schemas, corpus statistics."""

from repro.doc.model import XmlDocument, XmlNode
from repro.doc.parser import (
    decode_xml_bytes,
    detect_xml_encoding,
    from_element_tree,
    parse_document,
    parse_document_bytes,
    parse_fragment,
)
from repro.doc.schema import ChildSpec, ElementDecl, Occurs, Schema
from repro.doc.split import split_document, split_records
from repro.doc.stats import CorpusStats
from repro.doc.stream import iter_stream_records

__all__ = [
    "XmlDocument",
    "XmlNode",
    "parse_document",
    "parse_document_bytes",
    "parse_fragment",
    "from_element_tree",
    "detect_xml_encoding",
    "decode_xml_bytes",
    "iter_stream_records",
    "Schema",
    "ElementDecl",
    "ChildSpec",
    "Occurs",
    "CorpusStats",
    "split_records",
    "split_document",
]
