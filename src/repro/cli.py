"""Command-line interface: build and query ViST indexes on disk.

Usage::

    python -m repro index  DBDIR file1.xml file2.xml ...
                           [--schema schema.dtd] [--split item,person]
    python -m repro query  DBDIR "/site//item[location='US']" [--verify]
                           [--schema schema.dtd] [--show]
    python -m repro stats  DBDIR

``index`` creates (or extends) a persistent index under ``DBDIR``.
``--split`` applies the paper's substructure splitting before indexing,
one record per instance of the listed labels.  The DTD passed with
``--schema`` fixes the sibling order and must be the same for indexing
and querying; the CLI therefore stores a copy inside DBDIR and reuses it
automatically.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.doc.parser import parse_document
from repro.doc.schema import Schema
from repro.doc.split import split_records
from repro.errors import (
    CorruptionError,
    QueryBudgetExceededError,
    QueryTimeoutError,
    ReproError,
    TransientIOError,
)
from repro.index.guard import QueryGuard
from repro.index.vist import VistIndex
from repro.sequence.transform import SequenceEncoder
from repro.storage.cache import BufferPool
from repro.storage.docstore import FileDocStore
from repro.storage.pager import FilePager

_SCHEMA_FILE = "schema.dtd"

__all__ = ["main", "open_index", "load_schema"]

# Exit codes (also in the --help epilog). 2 doubles as the "damage or
# invariant violations found" code of `check` and `scrub`.
EXIT_ERROR = 1  # any other repro error
EXIT_VIOLATIONS = 2  # check/scrub found problems (the run itself succeeded)
EXIT_CORRUPT = 3  # checksum failure reading stored data
EXIT_TIMEOUT = 4  # query exceeded its --deadline-ms
EXIT_BUDGET = 5  # query exceeded --max-steps / --max-page-reads
EXIT_TRANSIENT = 6  # I/O fault persisted through every retry

_EPILOG = """\
exit codes:
  0  success
  1  error (parse failure, bad arguments, index state)
  2  check/scrub found corruption or invariant violations
  3  corrupt data: a page or record failed its checksum
  4  query exceeded its --deadline-ms
  5  query exceeded --max-steps or --max-page-reads
  6  transient I/O fault persisted through every retry

when your index is damaged (exit code 3, or a read-suspect health
report from `repro stats`): run `repro scrub DBDIR` to assess, then
`repro salvage DBDIR` to rebuild the index from the intact document
store.  See docs/INTERNALS.md section 9.
"""


def main(argv: Optional[list[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except QueryTimeoutError as exc:
        print(f"timeout: {exc}", file=sys.stderr)
        return EXIT_TIMEOUT
    except QueryBudgetExceededError as exc:
        print(f"budget exceeded: {exc}", file=sys.stderr)
        return EXIT_BUDGET
    except CorruptionError as exc:
        print(
            f"corrupt data: {exc}\n"
            "run `repro scrub` to assess the damage and `repro salvage` to "
            "rebuild the index from the document store",
            file=sys.stderr,
        )
        return EXIT_CORRUPT
    except TransientIOError as exc:
        print(f"persistent I/O fault: {exc}", file=sys.stderr)
        return EXIT_TRANSIENT
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ViST XML index (SIGMOD 2003 reproduction)",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(required=True)

    p_index = sub.add_parser("index", help="index XML files into DBDIR")
    p_index.add_argument("dbdir", type=Path)
    p_index.add_argument("files", type=Path, nargs="+")
    p_index.add_argument("--schema", type=Path, help="DTD fixing sibling order")
    p_index.add_argument(
        "--split",
        help="comma-separated record labels; split documents before indexing",
    )
    p_index.set_defaults(handler=_cmd_index)

    p_query = sub.add_parser("query", help="run a structural query")
    p_query.add_argument("dbdir", type=Path)
    p_query.add_argument("xpath")
    p_query.add_argument("--verify", action="store_true", help="exact mode")
    p_query.add_argument(
        "--show", action="store_true", help="print each matching record's sequence"
    )
    p_query.add_argument(
        "--show-xml", action="store_true", help="print each matching record's XML"
    )
    p_query.add_argument(
        "--profile",
        action="store_true",
        help="print match effort and cache hit rates after the query",
    )
    p_query.add_argument(
        "--explain",
        action="store_true",
        help="print the per-stage span tree of the evaluation "
        "(times, page reads, cache hits, candidates per query level)",
    )
    p_query.add_argument(
        "--engine",
        choices=("vist", "rist", "naive"),
        default="vist",
        help="evaluation engine: the on-disk ViST index (default), or an "
        "ephemeral in-memory RIST/Naive rebuilt from the stored sequences "
        "(for comparing --explain traces)",
    )
    p_query.add_argument(
        "--deadline-ms",
        type=float,
        help="abort the query after this many milliseconds (exit code 4)",
    )
    p_query.add_argument(
        "--max-steps",
        type=int,
        help="abort after this many matcher steps (exit code 5)",
    )
    p_query.add_argument(
        "--max-page-reads",
        type=int,
        help="abort after this many pager reads (exit code 5)",
    )
    p_query.add_argument(
        "--parallel",
        type=int,
        metavar="N",
        help="batch mode: run the query --repeat times across N worker "
        "threads sharing the open index, and report the throughput",
    )
    p_query.add_argument(
        "--repeat",
        type=int,
        default=100,
        help="number of submissions in --parallel batch mode (default 100)",
    )
    p_query.set_defaults(handler=_cmd_query)

    p_serve = sub.add_parser(
        "serve",
        help="line-oriented query loop: one XPath per stdin line, answered "
        "by a pool of worker threads over one shared open index",
    )
    p_serve.add_argument("dbdir", type=Path)
    p_serve.add_argument(
        "--threads", type=int, default=4, help="worker threads (default 4)"
    )
    p_serve.add_argument("--verify", action="store_true", help="exact mode")
    p_serve.add_argument(
        "--deadline-ms",
        type=float,
        help="per-query deadline (a fresh guard is built for every query)",
    )
    p_serve.add_argument(
        "--max-steps", type=int, help="per-query matcher-step budget"
    )
    p_serve.set_defaults(handler=_cmd_serve)

    p_nodes = sub.add_parser("nodes", help="node-granularity query results")
    p_nodes.add_argument("dbdir", type=Path)
    p_nodes.add_argument("xpath")
    p_nodes.set_defaults(handler=_cmd_nodes)

    p_remove = sub.add_parser("remove", help="delete documents by id")
    p_remove.add_argument("dbdir", type=Path)
    p_remove.add_argument("doc_ids", type=int, nargs="+")
    p_remove.set_defaults(handler=_cmd_remove)

    p_stats = sub.add_parser("stats", help="index size statistics")
    p_stats.add_argument("dbdir", type=Path)
    p_stats.add_argument(
        "--json",
        action="store_true",
        help="dump the full metrics registry as one JSON document",
    )
    p_stats.set_defaults(handler=_cmd_stats)

    p_check = sub.add_parser(
        "check", help="verify structural invariants of an on-disk index"
    )
    p_check.add_argument("dbdir", type=Path)
    p_check.set_defaults(handler=_cmd_check)

    p_scrub = sub.add_parser(
        "scrub", help="verify every page and record checksum plus invariants"
    )
    p_scrub.add_argument("dbdir", type=Path)
    p_scrub.add_argument(
        "--no-invariants",
        action="store_true",
        help="checksums only; skip the structural invariant walk",
    )
    p_scrub.set_defaults(handler=_cmd_scrub)

    p_salvage = sub.add_parser(
        "salvage", help="rebuild a damaged index from its document store"
    )
    p_salvage.add_argument("dbdir", type=Path)
    p_salvage.set_defaults(handler=_cmd_salvage)
    return parser


def load_schema(dbdir: Path) -> Optional[Schema]:
    """The schema stored inside ``dbdir``, if indexing recorded one."""
    stored_schema = Path(dbdir) / _SCHEMA_FILE
    if stored_schema.exists():
        return Schema.from_dtd(stored_schema.read_text())
    return None


def open_index(dbdir: Path, schema_path: Optional[Path] = None) -> VistIndex:
    dbdir = Path(dbdir)
    dbdir.mkdir(parents=True, exist_ok=True)
    if schema_path is not None:
        (dbdir / _SCHEMA_FILE).write_text(schema_path.read_text())
    return VistIndex(
        SequenceEncoder(schema=load_schema(dbdir)),
        docstore=FileDocStore(dbdir / "docs.dat"),
        # write-back LRU pool in front of the page file: repeated index
        # traversals in one invocation hit memory, not disk
        pager=BufferPool(FilePager(dbdir / "vist.db"), capacity=512),
        source_store=FileDocStore(dbdir / "sources.dat"),
    )


def _close_index(index: VistIndex) -> None:
    index.flush()
    index.close()
    index.docstore.close()
    if index.source_store is not None:
        index.source_store.close()


def _cmd_index(args: argparse.Namespace) -> int:
    index = open_index(args.dbdir, args.schema)
    split_labels = (
        [label.strip() for label in args.split.split(",") if label.strip()]
        if args.split
        else None
    )
    indexed = 0
    try:
        for path in args.files:
            document = parse_document(path.read_text(), name=str(path))
            if split_labels:
                for record in split_records(document.root, split_labels):
                    index.add(record)
                    indexed += 1
            else:
                index.add(document)
                indexed += 1
    finally:
        _close_index(index)
    print(f"indexed {indexed} record(s) into {args.dbdir}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    guard = None
    if args.deadline_ms is not None or args.max_steps is not None or args.max_page_reads is not None:
        guard = QueryGuard(
            deadline_ms=args.deadline_ms,
            max_steps=args.max_steps,
            max_page_reads=args.max_page_reads,
        )
    trace = None
    if args.explain:
        from repro.obs import QueryTrace

        trace = QueryTrace()
    index = open_index(args.dbdir)
    try:
        engine, idmap = _resolve_engine(index, args.engine)
        if args.parallel:
            return _run_parallel_query(args, engine, idmap)
        result = engine.query(args.xpath, verify=args.verify, guard=guard, trace=trace)
        if idmap is not None:
            result = {idmap[doc_id] for doc_id in result}
        mode = "verified" if args.verify else "raw"
        if args.engine != "vist":
            mode += f", {args.engine}"
        if not index.health.ok:
            # the answer came from the docstore, not the damaged index;
            # persist the observation so `repro stats` can surface it
            _write_health(args.dbdir, index)
            print(index.health.summary(), file=sys.stderr)
            mode += ", degraded"
        print(f"{len(result)} match(es) ({mode}): {result}")
        if args.show:
            for doc_id in result:
                sequence = index.load_sequence(doc_id)
                print(f"  doc {doc_id}: {sequence.preorder_string()}")
        if args.show_xml:
            for doc_id in result:
                print(f"-- doc {doc_id} --")
                print(index.get_document(doc_id).to_xml())
        if args.profile:
            stats = index.match_stats
            print(
                f"match effort: {stats.range_queries} range queries, "
                f"{stats.candidates} candidates, {stats.search_states} states, "
                f"{stats.batched_states} batched"
            )
            _print_cache_stats(index)
        if trace is not None:
            print(trace.render())
    finally:
        _close_index(index)
    return 0


def _guard_factory(args: argparse.Namespace):
    """Per-query guard builder for the concurrent paths, or ``None``.

    A guard tracks one query at a time, so the executor needs a fresh
    one per submission rather than the single shared instance the
    sequential path uses.
    """
    deadline_ms = args.deadline_ms
    max_steps = args.max_steps
    max_page_reads = getattr(args, "max_page_reads", None)
    if deadline_ms is None and max_steps is None and max_page_reads is None:
        return None
    return lambda: QueryGuard(
        deadline_ms=deadline_ms,
        max_steps=max_steps,
        max_page_reads=max_page_reads,
    )


def _run_parallel_query(args: argparse.Namespace, engine, idmap) -> int:
    """``query --parallel N``: the same query --repeat times over N threads."""
    import time

    from repro.exec import QueryExecutor

    repeat = max(1, args.repeat)
    queries = [args.xpath] * repeat
    with QueryExecutor(
        engine,
        threads=args.parallel,
        verify=args.verify,
        guard_factory=_guard_factory(args),
    ) as executor:
        t0 = time.perf_counter()
        outcomes = executor.run(queries)
        elapsed = time.perf_counter() - t0
    for outcome in outcomes:
        outcome.unwrap()  # propagate guard/corruption errors to main()
    distinct = {frozenset(outcome.result) for outcome in outcomes}
    if len(distinct) != 1:
        print(
            f"error: {len(distinct)} distinct result sets across "
            f"{repeat} identical parallel runs",
            file=sys.stderr,
        )
        return EXIT_ERROR
    result = set(outcomes[0].result)
    if idmap is not None:
        result = {idmap[doc_id] for doc_id in result}
    mode = "verified" if args.verify else "raw"
    if args.engine != "vist":
        mode += f", {args.engine}"
    print(f"{len(result)} match(es) ({mode}): {result}")
    qps = repeat / elapsed if elapsed > 0 else float("inf")
    print(
        f"parallel: {repeat} queries x {args.parallel} thread(s) "
        f"in {elapsed:.3f}s ({qps:.0f} qps)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Line-oriented query loop over one shared open index.

    Output lines are emitted in submission order (``position`` is the
    0-based input line among non-blank lines) even though the worker
    pool completes them out of order.
    """
    from collections import deque

    from repro.exec import QueryExecutor

    index = open_index(args.dbdir)
    served = 0
    try:
        with QueryExecutor(
            index,
            threads=args.threads,
            verify=args.verify,
            guard_factory=_guard_factory(args),
        ) as executor:
            pending: deque = deque()
            for line in sys.stdin:
                xpath = line.strip()
                if not xpath or xpath.startswith("#"):
                    continue
                pending.append((xpath, executor.submit(xpath, position=served)))
                served += 1
                # drain whatever has already finished, in order, so the
                # loop stays responsive without blocking on the newest
                while pending and pending[0][1].done():
                    _print_served(*pending.popleft())
            while pending:
                _print_served(*pending.popleft())
    finally:
        _close_index(index)
    print(f"served {served} query/queries", file=sys.stderr)
    return 0


def _print_served(xpath: str, future) -> None:
    outcome = future.result()
    if outcome.ok:
        result = outcome.result
        print(
            f"{outcome.position}\t{xpath}\t"
            f"{len(result)} match(es): {sorted(result)}"
        )
    else:
        print(f"{outcome.position}\t{xpath}\terror: {outcome.error}")
    sys.stdout.flush()


def _resolve_engine(index: VistIndex, kind: str):
    """The query engine for ``--engine`` plus a doc-id translation map.

    ``vist`` queries the on-disk index directly.  ``rist`` and ``naive``
    rebuild an ephemeral in-memory index from the stored sequences so
    their ``--explain`` traces describe the same corpus; their internal
    doc ids are renumbered, hence the map back to the on-disk ids.
    """
    if kind == "vist":
        return index, None
    if kind == "rist":
        from repro.index.rist import RistIndex

        engine = RistIndex(index.encoder)
    else:
        from repro.index.naive import NaiveIndex

        engine = NaiveIndex(index.encoder)
    idmap = {}
    for doc_id in sorted(index.docstore.ids()):
        idmap[engine.add_sequence(index.load_sequence(doc_id))] = doc_id
    return engine, idmap


def _print_cache_stats(index: VistIndex) -> None:
    """Render :meth:`CombinedTreeHost.cache_stats` as CLI lines."""
    caches = index.cache_stats()
    postings = caches.get("postings")
    if postings is not None:
        print(
            f"posting cache: {postings['hits']} hits / {postings['misses']} misses "
            f"({postings['hit_rate']:.1%}), {postings['groups']} group(s) resident, "
            f"{postings['invalidations']} invalidation(s)"
        )
    else:
        print("posting cache: disabled")
    for name, descent in caches["descent"].items():
        print(
            f"descent cache [{name}]: {descent['hits']} hits / "
            f"{descent['misses']} misses ({descent['hit_rate']:.1%})"
        )
    pool = caches.get("buffer_pool")
    if pool is not None:
        print(
            f"buffer pool: {pool['hits']} hits / {pool['misses']} misses "
            f"({pool['hit_rate']:.1%}), {pool['evictions']} eviction(s), "
            f"{pool['writebacks']} writeback(s)"
        )


def _cmd_nodes(args: argparse.Namespace) -> int:
    index = open_index(args.dbdir)
    try:
        result = index.query_nodes(args.xpath)
        total = sum(len(v) for v in result.values())
        print(f"{total} node(s) in {len(result)} document(s)")
        for doc_id, positions in sorted(result.items()):
            sequence = index.load_sequence(doc_id)
            rendered = ", ".join(
                f"{p}:{sequence[p].symbol}" for p in positions
            )
            print(f"  doc {doc_id}: {rendered}")
    finally:
        _close_index(index)
    return 0


def _cmd_remove(args: argparse.Namespace) -> int:
    index = open_index(args.dbdir)
    removed = 0
    try:
        for doc_id in args.doc_ids:
            index.remove(doc_id)
            removed += 1
    finally:
        _close_index(index)
        print(f"removed {removed} document(s)")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Run every invariant checker against the on-disk index.

    Exit code 0 when all invariants hold, 2 when any is violated —
    ``repro check DBDIR`` is safe to wire into cron/CI against a
    production index directory (the index is only read).
    """
    from repro.testing.invariants import check_index

    index = open_index(args.dbdir)
    try:
        reports = check_index(index)
        for report in reports:
            print(report.summary())
        failed = [report for report in reports if not report.ok]
        if failed:
            print(f"{len(failed)} checker(s) found violations")
            return EXIT_VIOLATIONS
        print("all invariants hold")
        return 0
    finally:
        _close_index(index)


def _cmd_stats(args: argparse.Namespace) -> int:
    index = open_index(args.dbdir)
    try:
        if args.json:
            import json

            snapshot = index.metrics.snapshot()
            snapshot["documents"] = len(index)
            sidecar = Path(args.dbdir) / _HEALTH_FILE
            if sidecar.exists():
                snapshot["health_sidecar"] = json.loads(sidecar.read_text())
            print(json.dumps(snapshot, indent=2, sort_keys=True, default=str))
            return 0
        print(f"documents: {len(index)}")
        for name, stats in index.index_stats().items():
            print(
                f"{name}: {stats.entries} entries, {stats.total_pages} pages "
                f"({stats.total_bytes / 1024:.0f} KiB), height {stats.height}"
            )
        _print_cache_stats(index)
        _print_health(args.dbdir, index)
    finally:
        _close_index(index)
    return 0


_HEALTH_FILE = "health.json"


def _write_health(dbdir: Path, index: VistIndex) -> None:
    import json

    (Path(dbdir) / _HEALTH_FILE).write_text(
        json.dumps(index.health.report(), indent=2) + "\n"
    )


def _print_health(dbdir: Path, index: VistIndex) -> None:
    """Health of this process *and* what past degraded queries recorded."""
    import json

    if not index.health.ok:
        print(index.health.summary())
        return
    sidecar = Path(dbdir) / _HEALTH_FILE
    if sidecar.exists():
        report = json.loads(sidecar.read_text())
        print(
            f"health: {report.get('status', 'unknown')} (recorded by an earlier "
            f"run; {len(report.get('events', []))} corruption event(s), "
            f"{report.get('degraded_queries', 0)} degraded query/queries)"
        )
        for event in report.get("events", []):
            print(f"  {event.get('kind')}: {event.get('detail')}")
        print("  run `repro scrub` to assess and `repro salvage` to rebuild")
    else:
        print("health: ok")


def _cmd_scrub(args: argparse.Namespace) -> int:
    from repro.repair import scrub_db

    report = scrub_db(args.dbdir, invariants=not args.no_invariants)
    print(report.summary())
    return 0 if report.ok else EXIT_VIOLATIONS


def _cmd_salvage(args: argparse.Namespace) -> int:
    from repro.repair import salvage_db

    report = salvage_db(args.dbdir)
    print(report.summary())
    sidecar = Path(args.dbdir) / _HEALTH_FILE
    if sidecar.exists():
        sidecar.unlink()  # the rebuilt index starts with a clean bill
    return 0
