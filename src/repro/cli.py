"""Command-line interface: build and query ViST indexes on disk.

Usage::

    python -m repro index  DBDIR file1.xml file2.xml ...
                           [--schema schema.dtd] [--split item,person]
    python -m repro query  DBDIR "/site//item[location='US']" [--verify]
                           [--schema schema.dtd] [--show]
    python -m repro stats  DBDIR

``index`` creates (or extends) a persistent index under ``DBDIR``.
``--split`` applies the paper's substructure splitting before indexing,
one record per instance of the listed labels.  The DTD passed with
``--schema`` fixes the sibling order and must be the same for indexing
and querying; the CLI therefore stores a copy inside DBDIR and reuses it
automatically.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.doc.parser import parse_document_bytes
from repro.doc.schema import Schema
from repro.doc.split import split_records
from repro.doc.stream import iter_stream_records
from repro.errors import (
    CorruptionError,
    ProtocolError,
    QueryBudgetExceededError,
    QueryTimeoutError,
    ReproError,
    ShardQueryError,
    ShardUnavailableError,
    TransientIOError,
)
from repro.index.guard import QueryGuard
from repro.index.vist import VistIndex
from repro.sequence.transform import SequenceEncoder
from repro.storage.cache import BufferPool
from repro.storage.docstore import FileDocStore
from repro.storage.pager import FilePager
from repro.storage.wal import WalPager

_SCHEMA_FILE = "schema.dtd"

__all__ = ["main", "open_index", "load_schema"]

# Exit codes (also in the --help epilog). 2 doubles as the "damage or
# invariant violations found" code of `check` and `scrub`.
EXIT_ERROR = 1  # any other repro error
EXIT_VIOLATIONS = 2  # check/scrub found problems (the run itself succeeded)
EXIT_CORRUPT = 3  # checksum failure reading stored data
EXIT_TIMEOUT = 4  # query exceeded its --deadline-ms
EXIT_BUDGET = 5  # query exceeded --max-steps / --max-page-reads
EXIT_TRANSIENT = 6  # I/O fault persisted through every retry
EXIT_PROTOCOL = 7  # shard wire-protocol violation (torn/oversized frame)
EXIT_UNAVAILABLE = 8  # a shard's worker is dead/unreachable past its budget

_EPILOG = """\
exit codes:
  0  success
  1  error (parse failure, bad arguments, index state)
  2  check/scrub found corruption or invariant violations
  3  corrupt data: a page or record failed its checksum
  4  query exceeded its --deadline-ms
  5  query exceeded --max-steps or --max-page-reads
  6  transient I/O fault persisted through every retry
  7  shard wire-protocol violation (torn, oversized, or undecodable frame)
  8  shard unavailable: a worker died or stalled past its restart budget

when your index is damaged (exit code 3, or a read-suspect health
report from `repro stats`): run `repro scrub DBDIR` to assess, then
`repro salvage DBDIR` to rebuild the index from the intact document
store.  See docs/INTERNALS.md section 9.

when a worker dies (exit code 8 from `query --workers`/`serve`): the
supervisor restarts it with backoff automatically; pass --partial to
keep answering from the live shards (responses are annotated with the
missing shard set), and check `repro stats --json --workers N` for
shard.K.unavailable counters.  See docs/INTERNALS.md section 13.
"""


def main(argv: Optional[list[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        try:
            return args.handler(args)
        except ShardQueryError as exc:
            # surface the most specific per-shard failure as the exit
            # code, the same way a single-directory run would
            for cause in exc.shard_errors.values():
                if isinstance(
                    cause,
                    (
                        QueryTimeoutError,
                        QueryBudgetExceededError,
                        CorruptionError,
                        TransientIOError,
                        ProtocolError,
                        ShardUnavailableError,
                    ),
                ):
                    print(f"error: {exc}", file=sys.stderr)
                    raise cause from exc
            raise
    except QueryTimeoutError as exc:
        print(f"timeout: {exc}", file=sys.stderr)
        return EXIT_TIMEOUT
    except QueryBudgetExceededError as exc:
        print(f"budget exceeded: {exc}", file=sys.stderr)
        return EXIT_BUDGET
    except CorruptionError as exc:
        print(
            f"corrupt data: {exc}\n"
            "run `repro scrub` to assess the damage and `repro salvage` to "
            "rebuild the index from the document store",
            file=sys.stderr,
        )
        return EXIT_CORRUPT
    except TransientIOError as exc:
        print(f"persistent I/O fault: {exc}", file=sys.stderr)
        return EXIT_TRANSIENT
    except ProtocolError as exc:
        print(f"protocol violation: {exc}", file=sys.stderr)
        return EXIT_PROTOCOL
    except ShardUnavailableError as exc:
        print(
            f"shard unavailable: {exc}\n"
            "the supervisor restarts dead workers automatically; pass "
            "--partial to answer from the live shards (see docs/INTERNALS.md "
            "section 13)",
            file=sys.stderr,
        )
        return EXIT_UNAVAILABLE
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ViST XML index (SIGMOD 2003 reproduction)",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(required=True)

    p_index = sub.add_parser("index", help="index XML files into DBDIR")
    p_index.add_argument("dbdir", type=Path)
    p_index.add_argument("files", type=Path, nargs="+")
    p_index.add_argument("--schema", type=Path, help="DTD fixing sibling order")
    p_index.add_argument(
        "--split",
        help="comma-separated record labels; split documents before indexing",
    )
    p_index.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="create (or extend) a sharded database: documents are hash-"
        "routed across N full index directories DBDIR/shard-K",
    )
    p_index.set_defaults(handler=_cmd_index)

    p_ingest = sub.add_parser(
        "ingest",
        help="streaming bulk ingest: split 100MB+ corpora into records "
        "without materialising them, committed in durable batches",
    )
    p_ingest.add_argument("dbdir", type=Path)
    p_ingest.add_argument("files", type=Path, nargs="+")
    p_ingest.add_argument("--schema", type=Path, help="DTD fixing sibling order")
    p_ingest.add_argument(
        "--split",
        help="comma-separated record labels: each instance becomes one "
        "indexed record (streamed; without it the whole file is one "
        "document, which defeats the point for large corpora)",
    )
    p_ingest.add_argument(
        "--no-spine",
        action="store_true",
        help="drop the ancestor spine above each split record instead of "
        "keeping it (mirrors split_records keep_spine=False)",
    )
    p_ingest.add_argument(
        "--batch-size",
        type=int,
        default=1000,
        metavar="N",
        help="records per write-lock section and durable commit "
        "(default 1000)",
    )
    p_ingest.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="ingest into a sharded database (create it N-way if new)",
    )
    p_ingest.add_argument(
        "--durability",
        choices=("batch", "none"),
        default="batch",
        help="'batch' (default): one WAL commit + fsync per batch, a "
        "crash loses at most the open batch; 'none': no per-batch "
        "commit, fastest, one flush at the end",
    )
    p_ingest.set_defaults(handler=_cmd_ingest)

    p_query = sub.add_parser("query", help="run a structural query")
    p_query.add_argument("dbdir", type=Path)
    p_query.add_argument("xpath")
    p_query.add_argument("--verify", action="store_true", help="exact mode")
    p_query.add_argument(
        "--show", action="store_true", help="print each matching record's sequence"
    )
    p_query.add_argument(
        "--show-xml", action="store_true", help="print each matching record's XML"
    )
    p_query.add_argument(
        "--profile",
        action="store_true",
        help="print match effort and cache hit rates after the query",
    )
    p_query.add_argument(
        "--explain",
        action="store_true",
        help="print the per-stage span tree of the evaluation "
        "(times, page reads, cache hits, candidates per query level)",
    )
    p_query.add_argument(
        "--engine",
        choices=("vist", "rist", "naive"),
        default="vist",
        help="evaluation engine: the on-disk ViST index (default), or an "
        "ephemeral in-memory RIST/Naive rebuilt from the stored sequences "
        "(for comparing --explain traces)",
    )
    p_query.add_argument(
        "--deadline-ms",
        type=float,
        help="abort the query after this many milliseconds (exit code 4)",
    )
    p_query.add_argument(
        "--max-steps",
        type=int,
        help="abort after this many matcher steps (exit code 5)",
    )
    p_query.add_argument(
        "--max-page-reads",
        type=int,
        help="abort after this many pager reads (exit code 5)",
    )
    p_query.add_argument(
        "--parallel",
        type=int,
        metavar="N",
        help="batch mode: run the query --repeat times across N worker "
        "threads sharing the open index, and report the throughput",
    )
    p_query.add_argument(
        "--repeat",
        type=int,
        default=100,
        help="number of submissions in --parallel/--workers batch mode "
        "(default 100)",
    )
    p_query.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="batch mode over a *sharded* DBDIR: run the query --repeat "
        "times scatter-gather across the N per-shard worker processes "
        "and report the throughput (N must match the shard count)",
    )
    p_query.add_argument(
        "--partial",
        action="store_true",
        help="with --workers: degrade to partial results (annotated with "
        "the missing shard set) when a shard is down, instead of failing "
        "with exit code 8",
    )
    p_query.add_argument(
        "--hedge-ms",
        type=float,
        metavar="MS",
        help="with --workers: duplicate a shard call that has not answered "
        "after MS milliseconds and take the first response (hedged reads)",
    )
    p_query.set_defaults(handler=_cmd_query)

    p_serve = sub.add_parser(
        "serve",
        help="line-oriented query loop: one XPath per stdin line, answered "
        "by a pool of worker threads over one shared open index",
    )
    p_serve.add_argument("dbdir", type=Path)
    p_serve.add_argument(
        "--threads", type=int, default=4, help="worker threads (default 4)"
    )
    p_serve.add_argument("--verify", action="store_true", help="exact mode")
    p_serve.add_argument(
        "--deadline-ms",
        type=float,
        help="per-query deadline (a fresh guard is built for every query)",
    )
    p_serve.add_argument(
        "--max-steps", type=int, help="per-query matcher-step budget"
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="sharded DBDIR only: serve scatter-gather over N per-shard "
        "worker processes instead of threads over one shared index",
    )
    p_serve.add_argument(
        "--port",
        type=int,
        metavar="P",
        help="speak the length-prefixed frame protocol over TCP on this "
        "port (0 picks one; announced as 'PORT <n>' on stdout) instead "
        "of the stdin line loop",
    )
    p_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="TCP bind address for --port (default 127.0.0.1)",
    )
    p_serve.add_argument(
        "--partial",
        action="store_true",
        help="sharded DBDIR only: answer from the live shards (responses "
        "annotated with the missing shard set) when a worker is down, "
        "instead of erroring the affected queries",
    )
    p_serve.add_argument(
        "--hedge-ms",
        type=float,
        metavar="MS",
        help="sharded DBDIR only: duplicate a shard call that has not "
        "answered after MS milliseconds and take the first response",
    )
    p_serve.set_defaults(handler=_cmd_serve)

    p_nodes = sub.add_parser("nodes", help="node-granularity query results")
    p_nodes.add_argument("dbdir", type=Path)
    p_nodes.add_argument("xpath")
    p_nodes.set_defaults(handler=_cmd_nodes)

    p_remove = sub.add_parser("remove", help="delete documents by id")
    p_remove.add_argument("dbdir", type=Path)
    p_remove.add_argument("doc_ids", type=int, nargs="+")
    p_remove.set_defaults(handler=_cmd_remove)

    p_stats = sub.add_parser("stats", help="index size statistics")
    p_stats.add_argument("dbdir", type=Path)
    p_stats.add_argument(
        "--json",
        action="store_true",
        help="dump the full metrics registry as one JSON document",
    )
    p_stats.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="sharded DBDIR only: collect stats through N live worker "
        "processes (includes the supervision block: shard states, "
        "restart/unavailable counters)",
    )
    p_stats.set_defaults(handler=_cmd_stats)

    p_check = sub.add_parser(
        "check", help="verify structural invariants of an on-disk index"
    )
    p_check.add_argument("dbdir", type=Path)
    p_check.set_defaults(handler=_cmd_check)

    p_scrub = sub.add_parser(
        "scrub", help="verify every page and record checksum plus invariants"
    )
    p_scrub.add_argument("dbdir", type=Path)
    p_scrub.add_argument(
        "--no-invariants",
        action="store_true",
        help="checksums only; skip the structural invariant walk",
    )
    p_scrub.set_defaults(handler=_cmd_scrub)

    p_salvage = sub.add_parser(
        "salvage", help="rebuild a damaged index from its document store"
    )
    p_salvage.add_argument("dbdir", type=Path)
    p_salvage.set_defaults(handler=_cmd_salvage)

    p_reshard = sub.add_parser(
        "reshard",
        help="rebalance a sharded database to a new shard count "
        "(global doc ids and query answers are preserved)",
    )
    p_reshard.add_argument("dbdir", type=Path)
    p_reshard.add_argument("nshards", type=int)
    p_reshard.set_defaults(handler=_cmd_reshard)
    return parser


def load_schema(dbdir: Path) -> Optional[Schema]:
    """The schema stored inside ``dbdir``, if indexing recorded one."""
    stored_schema = Path(dbdir) / _SCHEMA_FILE
    if stored_schema.exists():
        return Schema.from_dtd(stored_schema.read_text())
    return None


def open_index(
    dbdir: Path, schema_path: Optional[Path] = None, *, wal: bool = False
) -> VistIndex:
    dbdir = Path(dbdir)
    dbdir.mkdir(parents=True, exist_ok=True)
    if schema_path is not None:
        (dbdir / _SCHEMA_FILE).write_text(schema_path.read_text())
    page_file = dbdir / "vist.db"
    # `repro ingest` opens through the WAL so each batch commit is a
    # crash-safe journal transaction.  A leftover journal means the last
    # writer used the WAL and may have died mid-commit: reopening
    # through WalPager replays a committed journal and discards a torn
    # one, so WAL-built databases always recover, whichever command
    # touches them next.
    if wal or Path(str(page_file) + ".wal").exists():
        base = WalPager(str(page_file))
    else:
        base = FilePager(page_file)
    return VistIndex(
        SequenceEncoder(schema=load_schema(dbdir)),
        docstore=FileDocStore(dbdir / "docs.dat"),
        # write-back LRU pool in front of the page file: repeated index
        # traversals in one invocation hit memory, not disk
        pager=BufferPool(base, capacity=512),
        source_store=FileDocStore(dbdir / "sources.dat"),
    )


def _close_index(index: VistIndex) -> None:
    index.flush()
    index.close()
    index.docstore.close()
    if index.source_store is not None:
        index.source_store.close()


def _cmd_index(args: argparse.Namespace) -> int:
    from repro.shard import is_sharded

    split_labels = (
        [label.strip() for label in args.split.split(",") if label.strip()]
        if args.split
        else None
    )
    if args.shards is not None or is_sharded(args.dbdir):
        return _index_sharded(args, split_labels)
    index = open_index(args.dbdir, args.schema)
    indexed = 0
    try:
        for path in args.files:
            # bytes + prolog-declared encoding, not the locale default
            document = parse_document_bytes(path.read_bytes(), name=str(path))
            if split_labels:
                for record in split_records(document.root, split_labels):
                    index.add(record)
                    indexed += 1
            else:
                index.add(document)
                indexed += 1
    finally:
        _close_index(index)
    print(f"indexed {indexed} record(s) into {args.dbdir}")
    return 0


def _index_sharded(args: argparse.Namespace, split_labels) -> int:
    """``index --shards N``: hash-route records across N shard directories."""
    from repro.shard import ShardRouter

    indexed = 0
    with ShardRouter(args.dbdir, args.shards, schema_path=args.schema) as router:
        for path in args.files:
            document = parse_document_bytes(path.read_bytes(), name=str(path))
            if split_labels:
                for record in split_records(document.root, split_labels):
                    router.add(record)
                    indexed += 1
            else:
                router.add(document)
                indexed += 1
        counts = router.map.shard_counts()
    print(
        f"indexed {indexed} record(s) into {args.dbdir} "
        f"({router.nshards} shard(s), routed {counts})"
    )
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """``repro ingest``: stream records out of big corpora, commit in batches.

    Unlike ``repro index`` (which materialises each file), the files are
    parsed incrementally and each record subtree is indexed and released
    as its end tag closes, so peak memory stays flat in the corpus size.
    The index is opened through the WAL; every ``--batch-size`` records
    cost one journal commit and one fsync.
    """
    import time

    from repro.shard import is_sharded

    split_labels = (
        [label.strip() for label in args.split.split(",") if label.strip()]
        if args.split
        else None
    )
    keep_spine = not args.no_spine
    total_bytes = sum(path.stat().st_size for path in args.files)

    def records():
        for path in args.files:
            yield from iter_stream_records(
                path, split_labels, keep_spine=keep_spine
            )

    start = time.perf_counter()
    if args.shards is not None or is_sharded(args.dbdir):
        from repro.shard import ShardRouter

        with ShardRouter(
            args.dbdir, args.shards, schema_path=args.schema, wal=True
        ) as router:
            ids = router.add_batch(
                records(), batch_size=args.batch_size, durability=args.durability
            )
            layout = (
                f"{router.nshards} shard(s), routed {router.map.shard_counts()}"
            )
    else:
        index = open_index(args.dbdir, args.schema, wal=True)
        try:
            ids = index.add_batch(
                records(), batch_size=args.batch_size, durability=args.durability
            )
        finally:
            _close_index(index)
        layout = "1 directory"
    elapsed = time.perf_counter() - start
    docs_per_sec = len(ids) / elapsed if elapsed > 0 else float("inf")
    mb_per_sec = total_bytes / 1e6 / elapsed if elapsed > 0 else float("inf")
    print(
        f"ingested {len(ids)} record(s) into {args.dbdir} ({layout}) in "
        f"{elapsed:.2f}s ({docs_per_sec:.0f} docs/s, {mb_per_sec:.1f} MB/s, "
        f"durability={args.durability}, batch={args.batch_size})"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.shard import is_sharded

    if is_sharded(args.dbdir):
        return _query_sharded(args)
    if args.workers is not None:
        raise ReproError(
            f"{args.dbdir} is not sharded; --workers needs a database built "
            "with `repro index --shards N` (use --parallel for threads)"
        )
    if args.partial or args.hedge_ms is not None:
        raise ReproError(
            "--partial/--hedge-ms apply to sharded scatter-gather; "
            "use them with --workers on a sharded database"
        )
    guard = None
    if args.deadline_ms is not None or args.max_steps is not None or args.max_page_reads is not None:
        guard = QueryGuard(
            deadline_ms=args.deadline_ms,
            max_steps=args.max_steps,
            max_page_reads=args.max_page_reads,
        )
    trace = None
    if args.explain:
        from repro.obs import QueryTrace

        trace = QueryTrace()
    index = open_index(args.dbdir)
    try:
        engine, idmap = _resolve_engine(index, args.engine)
        if args.parallel:
            return _run_parallel_query(args, engine, idmap)
        result = engine.query(args.xpath, verify=args.verify, guard=guard, trace=trace)
        if idmap is not None:
            result = {idmap[doc_id] for doc_id in result}
        mode = "verified" if args.verify else "raw"
        if args.engine != "vist":
            mode += f", {args.engine}"
        if not index.health.ok:
            # the answer came from the docstore, not the damaged index;
            # persist the observation so `repro stats` can surface it
            _write_health(args.dbdir, index)
            print(index.health.summary(), file=sys.stderr)
            mode += ", degraded"
        print(f"{len(result)} match(es) ({mode}): {result}")
        if args.show:
            for doc_id in result:
                sequence = index.load_sequence(doc_id)
                print(f"  doc {doc_id}: {sequence.preorder_string()}")
        if args.show_xml:
            for doc_id in result:
                print(f"-- doc {doc_id} --")
                print(index.get_document(doc_id).to_xml())
        if args.profile:
            stats = index.match_stats
            print(
                f"match effort: {stats.range_queries} range queries, "
                f"{stats.candidates} candidates, {stats.search_states} states, "
                f"{stats.batched_states} batched"
            )
            _print_cache_stats(index)
        if trace is not None:
            print(trace.render())
    finally:
        _close_index(index)
    return 0


def _guard_factory(args: argparse.Namespace):
    """Per-query guard builder for the concurrent paths, or ``None``.

    A guard tracks one query at a time, so the executor needs a fresh
    one per submission rather than the single shared instance the
    sequential path uses.
    """
    deadline_ms = args.deadline_ms
    max_steps = args.max_steps
    max_page_reads = getattr(args, "max_page_reads", None)
    if deadline_ms is None and max_steps is None and max_page_reads is None:
        return None
    return lambda: QueryGuard(
        deadline_ms=deadline_ms,
        max_steps=max_steps,
        max_page_reads=max_page_reads,
    )


def _run_parallel_query(args: argparse.Namespace, engine, idmap) -> int:
    """``query --parallel N``: the same query --repeat times over N threads."""
    import time

    from repro.exec import QueryExecutor

    repeat = max(1, args.repeat)
    queries = [args.xpath] * repeat
    with QueryExecutor(
        engine,
        threads=args.parallel,
        verify=args.verify,
        guard_factory=_guard_factory(args),
    ) as executor:
        t0 = time.perf_counter()
        outcomes = executor.run(queries)
        elapsed = time.perf_counter() - t0
    for outcome in outcomes:
        outcome.unwrap()  # propagate guard/corruption errors to main()
    distinct = {frozenset(outcome.result) for outcome in outcomes}
    if len(distinct) != 1:
        print(
            f"error: {len(distinct)} distinct result sets across "
            f"{repeat} identical parallel runs",
            file=sys.stderr,
        )
        return EXIT_ERROR
    result = set(outcomes[0].result)
    if idmap is not None:
        result = {idmap[doc_id] for doc_id in result}
    mode = "verified" if args.verify else "raw"
    if args.engine != "vist":
        mode += f", {args.engine}"
    print(f"{len(result)} match(es) ({mode}): {result}")
    qps = repeat / elapsed if elapsed > 0 else float("inf")
    print(
        f"parallel: {repeat} queries x {args.parallel} thread(s) "
        f"in {elapsed:.3f}s ({qps:.0f} qps)"
    )
    return 0


def _guard_spec(args: argparse.Namespace) -> Optional[dict]:
    """The wire form of the guard budgets for per-shard workers, or None."""
    spec = {
        "deadline_ms": args.deadline_ms,
        "max_steps": args.max_steps,
        "max_page_reads": getattr(args, "max_page_reads", None),
    }
    return spec if any(v is not None for v in spec.values()) else None


def _query_sharded(args: argparse.Namespace) -> int:
    """``query`` against a sharded DBDIR.

    The single-shot path answers in-process through the embedded
    :class:`ShardRouter` (no worker processes to spawn for one query);
    ``--workers N`` is the batch mode, scatter-gathering over N per-shard
    worker processes like ``--parallel`` does over threads.
    """
    for flag, name in (
        (args.explain and args.workers is None, "--explain"),
        (args.profile, "--profile"),
        (args.engine != "vist", "--engine"),
    ):
        if flag:
            raise ReproError(
                f"{name} is not supported on sharded databases"
                + (" (except --explain with --workers)" if name == "--explain" else "")
            )
    if args.parallel:
        raise ReproError(
            "--parallel threads share one open index; on a sharded "
            "database use --workers N (N = shard count)"
        )
    if args.partial or args.hedge_ms is not None:
        if args.workers is None:
            raise ReproError(
                "--partial/--hedge-ms need the worker-process path; "
                "add --workers N (N = shard count)"
            )
    if args.workers is not None:
        return _run_sharded_query(args)
    from repro.shard import ShardRouter

    with ShardRouter(args.dbdir) as router:
        result = router.query(
            args.xpath, verify=args.verify, guard_factory=_guard_factory(args)
        )
        mode = "verified" if args.verify else "raw"
        print(f"{len(result)} match(es) ({mode}, {router.nshards} shards): "
              f"{set(result)}")
        if args.show:
            for doc_id in result:
                sequence = router.load_sequence(doc_id)
                print(f"  doc {doc_id}: {sequence.preorder_string()}")
        if args.show_xml:
            for doc_id in result:
                print(f"-- doc {doc_id} --")
                print(router.get_document(doc_id).to_xml())
    return 0


def _render_shard_spans(outcome) -> str:
    """Per-shard span lines for ``--explain`` on the scatter-gather path."""
    lines = ["shard spans:"]
    for shard, span in (outcome.shard_detail or {}).items():
        status = span.get("status", "?")
        if status == "ok":
            lines.append(
                f"  shard {shard}: ok in {span.get('elapsed_ms', 0.0):.1f} ms"
            )
        else:
            lines.append(f"  shard {shard}: {status} ({span.get('error', '')})")
    return "\n".join(lines)


def _run_sharded_query(args: argparse.Namespace) -> int:
    """``query --workers N``: the same query --repeat times over N processes."""
    import time

    from repro.shard import ShardedExecutor

    repeat = max(1, args.repeat)
    with ShardedExecutor(
        args.dbdir,
        workers=args.workers,
        verify=args.verify,
        guard_spec=_guard_spec(args),
        partial=args.partial,
        hedge_ms=args.hedge_ms,
    ) as executor:
        t0 = time.perf_counter()
        outcomes = executor.run([args.xpath] * repeat)
        elapsed = time.perf_counter() - t0
    for outcome in outcomes:
        outcome.unwrap()  # propagate shard/guard errors to main()
    complete = [o for o in outcomes if not o.missing_shards]
    partial = [o for o in outcomes if o.missing_shards]
    # identical queries must agree — among the outcomes that saw every
    # shard (a shard dying mid-batch legitimately shrinks partial ones)
    distinct = {frozenset(outcome.result) for outcome in complete}
    if len(distinct) > 1:
        print(
            f"error: {len(distinct)} distinct result sets across "
            f"{len(complete)} identical scatter-gather runs",
            file=sys.stderr,
        )
        return EXIT_ERROR
    shown = complete[0] if complete else outcomes[0]
    result = set(shown.result)
    mode = "verified" if args.verify else "raw"
    if shown.missing_shards:
        mode += f", partial: missing shards {shown.missing_shards}"
    print(f"{len(result)} match(es) ({mode}): {result}")
    if partial:
        missing = sorted({s for o in partial for s in o.missing_shards})
        print(
            f"partial: {len(partial)}/{repeat} response(s) missing "
            f"shard(s) {missing}",
            file=sys.stderr,
        )
    if args.explain:
        print(_render_shard_spans(shown))
    qps = repeat / elapsed if elapsed > 0 else float("inf")
    print(
        f"sharded: {repeat} queries x {args.workers} worker process(es) "
        f"in {elapsed:.3f}s ({qps:.0f} qps)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Query-serving loop: stdin lines by default, TCP frames with --port.

    Two backends, one loop: threads over a shared open index (the
    default), or — on a sharded database — scatter-gather over one
    worker process per shard (``--workers``).  Either way outcomes are
    emitted in submission order, and EOF or Ctrl-C mid-stream drains
    whatever is already in flight before exiting cleanly (code 0).
    """
    from repro.shard import is_sharded

    sharded = is_sharded(args.dbdir)
    if args.workers is not None and not sharded:
        raise ReproError(
            f"{args.dbdir} is not sharded; --workers needs a database "
            "built with `repro index --shards N`"
        )
    if not sharded and (args.partial or args.hedge_ms is not None):
        raise ReproError(
            "--partial/--hedge-ms apply to sharded scatter-gather serving; "
            f"{args.dbdir} is not sharded"
        )
    if sharded:
        from repro.shard import ShardedExecutor

        with ShardedExecutor(
            args.dbdir,
            workers=args.workers,
            verify=args.verify,
            guard_spec=_guard_spec(args),
            threads_per_worker=max(1, args.threads // 2),
            partial=args.partial,
            hedge_ms=args.hedge_ms,
        ) as executor:
            return _serve_loop(args, executor)
    from repro.exec import QueryExecutor

    index = open_index(args.dbdir)
    try:
        with QueryExecutor(
            index,
            threads=args.threads,
            verify=args.verify,
            guard_factory=_guard_factory(args),
        ) as executor:
            return _serve_loop(args, executor)
    finally:
        _close_index(index)


def _serve_loop(args: argparse.Namespace, executor) -> int:
    if args.port is not None:
        return _serve_tcp(executor, args.host, args.port)
    return _serve_stdin(executor)


def _serve_stdin(executor) -> int:
    """Line-oriented loop: one XPath per stdin line, answers in order."""
    from collections import deque

    served = 0
    pending: deque = deque()
    try:
        for line in sys.stdin:
            xpath = line.strip()
            if not xpath or xpath.startswith("#"):
                continue
            pending.append((xpath, executor.submit(xpath, position=served)))
            served += 1
            # drain whatever has already finished, in order, so the
            # loop stays responsive without blocking on the newest
            while pending and pending[0][1].done():
                _print_served(*pending.popleft())
        while pending:
            _print_served(*pending.popleft())
    except KeyboardInterrupt:
        # a clean shutdown, not an error: flush what is already in
        # flight (still in submission order) and report success
        while pending:
            _print_served(*pending.popleft())
    print(f"served {served} query/queries", file=sys.stderr)
    return 0


def _print_served(xpath: str, future) -> None:
    outcome = future.result()
    if outcome.ok:
        result = outcome.result
        note = ""
        if getattr(outcome, "missing_shards", None):
            note = f" (partial: missing shards {outcome.missing_shards})"
        print(
            f"{outcome.position}\t{xpath}\t"
            f"{len(result)} match(es): {sorted(result)}{note}"
        )
    else:
        print(f"{outcome.position}\t{xpath}\terror: {outcome.error}")
    sys.stdout.flush()


def _serve_tcp(executor, host: str, port: int) -> int:
    """Frame-protocol server: 4-byte length prefix + JSON, like the shard
    workers speak (:mod:`repro.shard.protocol`).

    A request frame is either a bare JSON string (the XPath) or an
    object ``{"xpath": ..., "verify": bool}``.  Replies carry
    ``{"position", "ok", "result" | "error"/"error_type"}`` and are sent
    in submission order per connection, pipelining-friendly: the client
    may stream many requests before reading any reply.
    """
    import queue
    import socket
    import threading

    from repro.shard.protocol import FrameError, recv_frame, send_frame

    served = [0]
    served_lock = threading.Lock()

    def handle(conn: socket.socket) -> None:
        replies: "queue.Queue" = queue.Queue()

        def drain() -> None:
            # a dedicated sender keeps replies ordered without making the
            # reader block on the oldest in-flight query
            while True:
                item = replies.get()
                if item is None:
                    break
                position, xpath, future = item
                outcome = future.result()
                payload = {"position": position, "xpath": xpath, "ok": outcome.ok}
                if outcome.ok:
                    payload["result"] = sorted(outcome.result)
                    if getattr(outcome, "missing_shards", None):
                        payload["missing_shards"] = outcome.missing_shards
                else:
                    payload["error"] = str(outcome.error)
                    payload["error_type"] = type(outcome.error).__name__
                try:
                    send_frame(conn, payload)
                except OSError:
                    break  # client hung up; keep draining futures silently

        drainer = threading.Thread(target=drain, daemon=True)
        drainer.start()
        position = 0
        try:
            while True:
                try:
                    request = recv_frame(conn)
                except (FrameError, OSError):
                    break
                if request is None:
                    break
                if isinstance(request, str):
                    xpath, verify = request, None
                elif isinstance(request, dict) and "xpath" in request:
                    xpath = str(request["xpath"])
                    verify = request.get("verify")
                else:
                    try:
                        send_frame(conn, {
                            "position": position, "ok": False,
                            "error": f"malformed request: {request!r}",
                            "error_type": "FrameError",
                        })
                    except OSError:
                        break
                    continue
                if verify is None:
                    future = executor.submit(xpath, position=position)
                elif hasattr(executor, "submit_with"):  # thread backend
                    future = executor.submit_with(
                        xpath, position=position, verify=bool(verify)
                    )
                else:  # sharded backend takes verify directly
                    future = executor.submit(
                        xpath, position=position, verify=bool(verify)
                    )
                replies.put((position, xpath, future))
                position += 1
        finally:
            replies.put(None)
            drainer.join()
            try:
                conn.close()
            except OSError:
                pass
            with served_lock:
                served[0] += position

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen()
        print(f"PORT {listener.getsockname()[1]}", flush=True)
        while True:
            try:
                conn, _addr = listener.accept()
            except OSError:
                break
            threading.Thread(target=handle, args=(conn,), daemon=True).start()
    except KeyboardInterrupt:
        pass  # clean shutdown; in-flight replies ride out their drainers
    finally:
        try:
            listener.close()
        except OSError:
            pass
    with served_lock:
        count = served[0]
    print(f"served {count} query/queries", file=sys.stderr)
    return 0


def _resolve_engine(index: VistIndex, kind: str):
    """The query engine for ``--engine`` plus a doc-id translation map.

    ``vist`` queries the on-disk index directly.  ``rist`` and ``naive``
    rebuild an ephemeral in-memory index from the stored sequences so
    their ``--explain`` traces describe the same corpus; their internal
    doc ids are renumbered, hence the map back to the on-disk ids.
    """
    if kind == "vist":
        return index, None
    if kind == "rist":
        from repro.index.rist import RistIndex

        engine = RistIndex(index.encoder)
    else:
        from repro.index.naive import NaiveIndex

        engine = NaiveIndex(index.encoder)
    idmap = {}
    for doc_id in sorted(index.docstore.ids()):
        idmap[engine.add_sequence(index.load_sequence(doc_id))] = doc_id
    return engine, idmap


def _print_cache_stats(index: VistIndex) -> None:
    """Render :meth:`CombinedTreeHost.cache_stats` as CLI lines."""
    caches = index.cache_stats()
    postings = caches.get("postings")
    if postings is not None:
        print(
            f"posting cache: {postings['hits']} hits / {postings['misses']} misses "
            f"({postings['hit_rate']:.1%}), {postings['groups']} group(s) resident, "
            f"{postings['invalidations']} invalidation(s)"
        )
    else:
        print("posting cache: disabled")
    for name, descent in caches["descent"].items():
        print(
            f"descent cache [{name}]: {descent['hits']} hits / "
            f"{descent['misses']} misses ({descent['hit_rate']:.1%})"
        )
    pool = caches.get("buffer_pool")
    if pool is not None:
        print(
            f"buffer pool: {pool['hits']} hits / {pool['misses']} misses "
            f"({pool['hit_rate']:.1%}), {pool['evictions']} eviction(s), "
            f"{pool['writebacks']} writeback(s)"
        )


def _cmd_nodes(args: argparse.Namespace) -> int:
    from repro.shard import ShardRouter, is_sharded

    if is_sharded(args.dbdir):
        with ShardRouter(args.dbdir) as router:
            result = router.query_nodes(args.xpath)
            total = sum(len(v) for v in result.values())
            print(f"{total} node(s) in {len(result)} document(s)")
            for doc_id, positions in sorted(result.items()):
                sequence = router.load_sequence(doc_id)
                rendered = ", ".join(
                    f"{p}:{sequence[p].symbol}" for p in positions
                )
                print(f"  doc {doc_id}: {rendered}")
        return 0
    index = open_index(args.dbdir)
    try:
        result = index.query_nodes(args.xpath)
        total = sum(len(v) for v in result.values())
        print(f"{total} node(s) in {len(result)} document(s)")
        for doc_id, positions in sorted(result.items()):
            sequence = index.load_sequence(doc_id)
            rendered = ", ".join(
                f"{p}:{sequence[p].symbol}" for p in positions
            )
            print(f"  doc {doc_id}: {rendered}")
    finally:
        _close_index(index)
    return 0


def _cmd_remove(args: argparse.Namespace) -> int:
    from repro.shard import ShardRouter, is_sharded

    if is_sharded(args.dbdir):
        removed = 0
        try:
            with ShardRouter(args.dbdir) as router:
                for doc_id in args.doc_ids:
                    router.remove(doc_id)
                    removed += 1
        finally:
            print(f"removed {removed} document(s)")
        return 0
    index = open_index(args.dbdir)
    removed = 0
    try:
        for doc_id in args.doc_ids:
            index.remove(doc_id)
            removed += 1
    finally:
        _close_index(index)
        print(f"removed {removed} document(s)")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Run every invariant checker against the on-disk index.

    Exit code 0 when all invariants hold, 2 when any is violated —
    ``repro check DBDIR`` is safe to wire into cron/CI against a
    production index directory (the index is only read).  On a sharded
    database every shard is checked; one bad shard fails the run.
    """
    from repro.shard import ShardRouter, is_sharded
    from repro.testing.invariants import check_index

    if is_sharded(args.dbdir):
        failed_shards = 0
        with ShardRouter(args.dbdir) as router:
            for k, shard in enumerate(router.shards):
                reports = check_index(shard)
                for report in reports:
                    print(f"shard {k}: {report.summary()}")
                bad = [report for report in reports if not report.ok]
                if bad:
                    failed_shards += 1
                    print(f"shard {k}: {len(bad)} checker(s) found violations")
        if failed_shards:
            print(f"{failed_shards} shard(s) have violations")
            return EXIT_VIOLATIONS
        print(f"all invariants hold across {router.nshards} shard(s)")
        return 0
    index = open_index(args.dbdir)
    try:
        reports = check_index(index)
        for report in reports:
            print(report.summary())
        failed = [report for report in reports if not report.ok]
        if failed:
            print(f"{len(failed)} checker(s) found violations")
            return EXIT_VIOLATIONS
        print("all invariants hold")
        return 0
    finally:
        _close_index(index)


def _cmd_reshard(args: argparse.Namespace) -> int:
    from repro.shard import is_sharded, reshard_db

    if not is_sharded(args.dbdir):
        raise ReproError(
            f"{args.dbdir} is not sharded; build one with "
            "`repro index --shards N` first"
        )
    report = reshard_db(args.dbdir, args.nshards)
    print(
        f"resharded {args.dbdir}: {report['old_nshards']} -> "
        f"{report['new_nshards']} shard(s), {report['documents']} "
        f"document(s) moved, {report['tombstones']} tombstone(s) preserved"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.shard import is_sharded

    if args.workers is not None:
        if not is_sharded(args.dbdir):
            raise ReproError(
                f"{args.dbdir} is not sharded; --workers needs a database "
                "built with `repro index --shards N`"
            )
        return _stats_workers(args)
    if is_sharded(args.dbdir):
        return _stats_sharded(args)
    index = open_index(args.dbdir)
    try:
        if args.json:
            import json

            snapshot = index.metrics.snapshot()
            snapshot["documents"] = len(index)
            sidecar = Path(args.dbdir) / _HEALTH_FILE
            if sidecar.exists():
                snapshot["health_sidecar"] = json.loads(sidecar.read_text())
            print(json.dumps(snapshot, indent=2, sort_keys=True, default=str))
            return 0
        print(f"documents: {len(index)}")
        for name, stats in index.index_stats().items():
            print(
                f"{name}: {stats.entries} entries, {stats.total_pages} pages "
                f"({stats.total_bytes / 1024:.0f} KiB), height {stats.height}"
            )
        _print_cache_stats(index)
        _print_health(args.dbdir, index)
    finally:
        _close_index(index)
    return 0


def _stats_workers(args: argparse.Namespace) -> int:
    """``stats --workers N``: stats through live worker processes.

    Unlike the embedded path this includes the ``supervision`` block —
    per-shard states (healthy/restarting/down) and the restart /
    unavailable / retry / hedge counters of the fault-tolerance layer.
    """
    import json

    from repro.shard import ShardedExecutor

    with ShardedExecutor(args.dbdir, workers=args.workers) as executor:
        snapshot = executor.stats()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True, default=str))
        return 0
    routing = snapshot["routing"]
    print(
        f"routing: {routing['nshards']} shard(s), "
        f"next_doc_id {routing['next_doc_id']}, routed {routing['routed']}"
    )
    supervision = snapshot["supervision"]
    states = ", ".join(
        f"shard {k}: {v}" for k, v in sorted(supervision["states"].items())
    )
    print(f"supervision: {states}")
    if supervision.get("down"):
        print(f"  down shards: {supervision['down']}")
    return 0


def _stats_sharded(args: argparse.Namespace) -> int:
    """``stats`` on a sharded DBDIR: per-shard registries under shard.K.*."""
    from repro.shard import ShardRouter

    with ShardRouter(args.dbdir) as router:
        if args.json:
            import json

            snapshot = router.metrics.snapshot()
            snapshot["documents"] = len(router)
            print(json.dumps(snapshot, indent=2, sort_keys=True, default=str))
            return 0
        routing = router.metrics.snapshot()["routing"]
        print(f"documents: {len(router)} across {router.nshards} shard(s)")
        print(
            f"routing: next_doc_id {routing['next_doc_id']}, "
            f"routed {routing['routed']}, live {routing['live']}"
        )
        for k, shard in enumerate(router.shards):
            for name, stats in shard.index_stats().items():
                print(
                    f"shard {k} {name}: {stats.entries} entries, "
                    f"{stats.total_pages} pages "
                    f"({stats.total_bytes / 1024:.0f} KiB), "
                    f"height {stats.height}"
                )
    return 0


_HEALTH_FILE = "health.json"


def _write_health(dbdir: Path, index: VistIndex) -> None:
    import json

    (Path(dbdir) / _HEALTH_FILE).write_text(
        json.dumps(index.health.report(), indent=2) + "\n"
    )


def _print_health(dbdir: Path, index: VistIndex) -> None:
    """Health of this process *and* what past degraded queries recorded."""
    import json

    if not index.health.ok:
        print(index.health.summary())
        return
    sidecar = Path(dbdir) / _HEALTH_FILE
    if sidecar.exists():
        report = json.loads(sidecar.read_text())
        print(
            f"health: {report.get('status', 'unknown')} (recorded by an earlier "
            f"run; {len(report.get('events', []))} corruption event(s), "
            f"{report.get('degraded_queries', 0)} degraded query/queries)"
        )
        for event in report.get("events", []):
            print(f"  {event.get('kind')}: {event.get('detail')}")
        print("  run `repro scrub` to assess and `repro salvage` to rebuild")
    else:
        print("health: ok")


def _cmd_scrub(args: argparse.Namespace) -> int:
    from repro.repair import scrub_db

    report = scrub_db(args.dbdir, invariants=not args.no_invariants)
    print(report.summary())
    return 0 if report.ok else EXIT_VIOLATIONS


def _cmd_salvage(args: argparse.Namespace) -> int:
    from repro.repair import salvage_db

    report = salvage_db(args.dbdir)
    print(report.summary())
    sidecar = Path(args.dbdir) / _HEALTH_FILE
    if sidecar.exists():
        sidecar.unlink()  # the rebuilt index starts with a clean bill
    return 0
