"""Per-query trace recorder: a tree of lightweight spans.

A :class:`QueryTrace` is handed to :meth:`XmlIndexBase.query` (CLI:
``repro query --explain``).  Evaluation stages open spans —
translation, one per match alternative, one per frontier level of
Algorithm 2, DocId output, verification, degraded fallback — and attach
the counter *deltas* the stage consumed (page reads, buffer-pool and
posting-cache hits, range queries, candidates, guard ticks).  The
result is a per-stage attribution of one query: which level of which
alternative did the index traversals, how many pages they touched, and
where the time went.

Cost model: spans are only recorded when a trace is active, and the
instrumented code guards with a hoisted-local ``if trace is not None``
at stage granularity (per level, never per state or candidate).  With
``trace=None`` the query path is unchanged.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Span", "QueryTrace"]


class Span:
    """One timed stage with free-form metadata and child spans."""

    __slots__ = ("name", "meta", "t0", "t1", "children")

    def __init__(self, name: str, **meta) -> None:
        self.name = name
        self.meta: dict = meta
        self.t0 = time.perf_counter()
        self.t1: Optional[float] = None
        self.children: list[Span] = []

    @property
    def duration_ms(self) -> float:
        end = self.t1 if self.t1 is not None else time.perf_counter()
        return (end - self.t0) * 1000.0

    def annotate(self, **meta) -> None:
        self.meta.update(meta)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration_ms": self.duration_ms,
            **{k: v for k, v in self.meta.items()},
            **({"children": [c.to_dict() for c in self.children]}
               if self.children else {}),
        }


class QueryTrace:
    """Collects the span tree of one (or several) query evaluations."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def begin(self, name: str, **meta) -> Span:
        """Open a span as a child of the innermost open span."""
        span = Span(name, **meta)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, **meta) -> Span:
        """Close ``span`` (and anything left open inside it)."""
        if meta:
            span.meta.update(meta)
        while self._stack:
            top = self._stack.pop()
            if top.t1 is None:
                top.t1 = time.perf_counter()
            if top is span:
                break
        return span

    def unwind_to(self, span: Optional[Span]) -> None:
        """Close spans left open above ``span`` (exception cleanup).

        A guard or corruption error can unwind past open level/alternative
        spans; callers that survive the exception (degraded fallback) call
        this so their next span attaches to the right parent.
        """
        while self._stack and self._stack[-1] is not span:
            top = self._stack.pop()
            if top.t1 is None:
                top.t1 = time.perf_counter()

    def span(self, name: str, **meta) -> "_SpanContext":
        """``with trace.span("verify"):`` convenience wrapper."""
        return _SpanContext(self, name, meta)

    def to_dict(self) -> dict:
        return {"spans": [root.to_dict() for root in self.roots]}

    def render(self) -> str:
        """The span tree as an indented text block (``--explain`` output)."""
        lines: list[str] = []
        for root in self.roots:
            self._render_span(root, "", True, lines, top=True)
        return "\n".join(lines)

    def _render_span(
        self, span: Span, prefix: str, last: bool, lines: list[str], top: bool = False
    ) -> None:
        meta = " ".join(f"{k}={_fmt(v)}" for k, v in span.meta.items())
        head = "" if top else ("└─ " if last else "├─ ")
        lines.append(
            f"{prefix}{head}{span.name} [{span.duration_ms:.2f} ms]"
            + (f" {meta}" if meta else "")
        )
        child_prefix = prefix if top else prefix + ("   " if last else "│  ")
        for i, child in enumerate(span.children):
            self._render_span(
                child, child_prefix, i == len(span.children) - 1, lines
            )


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if value < 1000 else f"{value:.0f}"
    return str(value)


class _SpanContext:
    __slots__ = ("_trace", "_name", "_meta", "span")

    def __init__(self, trace: QueryTrace, name: str, meta: dict) -> None:
        self._trace = trace
        self._name = name
        self._meta = meta
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._trace.begin(self._name, **self._meta)
        return self.span

    def __exit__(self, *_exc) -> None:
        assert self.span is not None
        self._trace.end(self.span)
