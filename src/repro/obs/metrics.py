"""Zero-dependency metrics primitives and the unifying registry.

Design constraints (in priority order):

1. **Hot paths stay hot.**  The counters that live inside the matcher
   and cache loops are plain integer attributes incremented with
   ``stats.hits += 1`` — exactly the code that existed before this
   module.  :class:`MetricSet` only adds a :meth:`~MetricSet.snapshot`
   that *reads* those attributes when somebody asks; nothing on the
   increment path changed.
2. **One export.**  Every component registers itself (or is registered
   by its owning index) under a dotted name in a
   :class:`MetricsRegistry`; ``registry.snapshot()`` returns the whole
   observable state as one JSON-ready dict.
3. **Bounded memory.**  :class:`Histogram` keeps a fixed-size reservoir
   (default 1024 samples): early observations are kept verbatim, later
   ones overwrite a rotating slot, so p50/p95/p99 stay representative
   under sustained traffic without unbounded growth.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Callable, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricSet", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count.

    :meth:`inc` is locked, so counts survive concurrent increment exactly
    (``value += 1`` compiles to a read-modify-write that drops updates
    under thread interleaving).  ``value`` stays a public attribute for
    single-threaded hoisted-local hot paths that knowingly trade exactness
    for speed; shared counters must use :meth:`inc`.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Bounded-reservoir histogram with p50/p95/p99.

    The first ``max_samples`` observations are stored verbatim; after
    that each new observation overwrites a rotating slot, so the
    reservoir always holds the most recent window (count/sum/min/max
    remain exact over the full lifetime).
    """

    __slots__ = ("count", "total", "min", "max", "_samples", "_cursor", "_cap",
                 "_lock")

    def __init__(self, max_samples: int = 1024) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: list[float] = []
        self._cursor = 0
        self._cap = max_samples
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._samples) < self._cap:
                self._samples.append(value)
            else:
                self._samples[self._cursor] = value
                self._cursor = (self._cursor + 1) % self._cap

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile over the reservoir (``q`` in [0, 100])."""
        with self._lock:
            samples = list(self._samples)  # sort a copy, not the live slot list
        if not samples:
            return None
        samples.sort()
        rank = max(0, min(len(samples) - 1, round(q / 100.0 * (len(samples) - 1))))
        return samples[rank]

    def snapshot(self) -> dict:
        with self._lock:
            count, total = self.count, self.total
            lo, hi = self.min, self.max
            samples = list(self._samples)
        samples.sort()

        def rank_of(q: float) -> Optional[float]:
            if not samples:
                return None
            rank = max(0, min(len(samples) - 1,
                              round(q / 100.0 * (len(samples) - 1))))
            return samples[rank]

        return {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": (total / count) if count else None,
            "p50": rank_of(50),
            "p95": rank_of(95),
            "p99": rank_of(99),
        }


class MetricSet:
    """Base for plain-attribute counter bundles (the former ad-hoc stats).

    Subclasses are ordinary dataclasses (or ``__slots__`` classes) whose
    fields are incremented directly on the hot path; :meth:`snapshot`
    reads them into a dict, including any ``float``/``int`` properties
    the class declares (``hit_rate`` and friends), so a registry dump
    needs no per-class knowledge.
    """

    def snapshot(self) -> dict:
        out: dict = {}
        if dataclasses.is_dataclass(self):
            for field in dataclasses.fields(self):
                out[field.name] = getattr(self, field.name)
        else:  # __slots__ bundles
            for name in getattr(self, "__slots__", ()):
                if not name.startswith("_"):
                    out[name] = getattr(self, name)
        for name in dir(type(self)):
            if name.startswith("_") or name in out:
                continue
            attr = getattr(type(self), name)
            if isinstance(attr, property):
                out[name] = getattr(self, name)
        return out


Source = Union[Counter, Gauge, Histogram, MetricSet, Callable[[], object]]


class MetricsRegistry:
    """Name → metric-source directory with a single JSON-ready dump.

    Sources are *pulled*: registering an object costs one dict entry and
    nothing at increment time.  A source may be a :class:`Counter` /
    :class:`Gauge` / :class:`Histogram`, any object with a
    ``snapshot()`` method (:class:`MetricSet`, another registry), or a
    zero-argument callable returning a JSON-ready value — the callable
    form is how lazily computed summaries (tree shapes, health reports)
    join the dump without being paid for on every query.
    """

    def __init__(self) -> None:
        self._sources: dict[str, Source] = {}
        # registration can race a snapshot (`repro stats --json` under
        # load); the lock plus the snapshot's item-list copy keep the
        # dump free of "dict changed size during iteration"
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """Create (or return the existing) counter under ``name``."""
        return self._own(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._own(name, Gauge)

    def histogram(self, name: str, max_samples: int = 1024) -> Histogram:
        with self._lock:
            existing = self._sources.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(f"metric {name!r} already registered as "
                                     f"{type(existing).__name__}")
                return existing
            metric = Histogram(max_samples)
            self._sources[name] = metric
            return metric

    def _own(self, name: str, cls):
        with self._lock:
            existing = self._sources.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(f"metric {name!r} already registered as "
                                     f"{type(existing).__name__}")
                return existing
            metric = cls()
            self._sources[name] = metric
            return metric

    def register(self, name: str, source: Source) -> None:
        """Attach an external source (stat bundle, callable, sub-registry)."""
        with self._lock:
            self._sources[name] = source

    def unregister(self, name: str) -> None:
        with self._lock:
            self._sources.pop(name, None)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._sources)

    def snapshot(self) -> dict:
        """The full registry as a nested JSON-ready dict.

        Dotted names split into nesting (``"pager.reads"`` lands at
        ``out["pager"]["reads"]``); sources that fail to produce a value
        surface as an ``"<error: ...>"`` string instead of aborting the
        dump — an observability read must never take the process down.
        """
        with self._lock:
            sources = sorted(self._sources.items())  # stable copy to walk
        out: dict = {}
        for name, source in sources:
            try:
                if callable(source) and not hasattr(source, "snapshot"):
                    value = source()
                else:
                    value = source.snapshot()
            except Exception as exc:  # pragma: no cover - defensive
                value = f"<error: {type(exc).__name__}: {exc}>"
            node = out
            parts = name.split(".")
            for part in parts[:-1]:
                nxt = node.setdefault(part, {})
                if not isinstance(nxt, dict):
                    nxt = node[part] = {"": nxt}
                node = nxt
            node[parts[-1]] = value
        return out
