"""Observability: the metrics registry and the per-query trace recorder.

Two complementary windows into a running index (docs/INTERNALS.md §10):

* :mod:`repro.obs.metrics` — process-lifetime aggregates.  A
  :class:`MetricsRegistry` unifies the counter bundles that used to live
  as ad-hoc stat objects on ``BufferPool``, ``PostingCache``,
  ``SequenceMatcher`` and the B+Trees, adds true counters, gauges and
  bounded histograms (p50/p95/p99), and dumps the lot as one JSON
  document (``repro stats --json``, ``BENCH_*.json``).
* :mod:`repro.obs.trace` — per-query attribution.  A
  :class:`QueryTrace` records the evaluation as a tree of lightweight
  spans (translation, per-level frontier expansion, DocId output,
  verification, degraded fallback), each annotated with the counter
  *deltas* it consumed — page reads, cache hits, candidates — so a slow
  query names its slow stage (``repro query --explain``).

Overhead contract: all hot-path instrumentation is hoisted-local — the
live counters stay plain attribute increments exactly as before, the
registry only *reads* them at snapshot time, and span recording costs
one ``if trace is not None`` per frontier level (never per state or per
candidate).  With tracing off the query path is within noise of the
uninstrumented baseline (the bench smoke job enforces 2%).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSet,
    MetricsRegistry,
)
from repro.obs.trace import QueryTrace, Span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSet",
    "MetricsRegistry",
    "QueryTrace",
    "Span",
]
