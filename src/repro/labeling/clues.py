"""Semantic/statistical clues for dynamic labelling (paper Eq. 1–4).

Given a schema, this module predicts, for any sequence item ``x``, the
ordered list of items that can *immediately follow* ``x`` in a
structure-encoded sequence — the paper's *follow set* (Definition 2) —
together with the probability that each one is the immediate successor
(Eq. 2, with the multiple-occurrence adjustment).  The clue-based scope
allocator then carves the parent scope proportionally (Eq. 3–4).

The follow set of ``x = (sym, prefix)`` is assembled in preorder order:

1. the *value leaf* of ``sym`` (our sibling order puts a node's value
   before its element children);
2. the declared children of ``sym``, in schema order, each with
   ``p(child | sym)``;
3. a repeat of ``sym`` itself when its declaration under its parent is
   ``*``/``+`` (geometric continuation probability — the paper's
   ``p_n(x|d)`` model);
4. the following siblings of ``sym`` under its parent, then of each
   ancestor in turn, each with ``p(y | d)`` where ``d`` is the declaring
   parent (Eq. 1: independence across branches lets ``p(y|x) = p(y|d)``);
5. implicitly ε (the sequence ends) — never allocated, as the paper
   notes below Eq. 3.

For a *value* item the chain starts at step 2 with the children of the
element that owns the value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.doc.schema import Schema
from repro.sequence.encoding import Item

VALUE = "\x00value"  # sentinel label for "a hashed value leaf"

__all__ = ["VALUE", "FollowCandidate", "FollowSets"]


@dataclass(frozen=True)
class FollowCandidate:
    """One entry of a follow set: the item shape and its Eq. 2 probability."""

    label: str  # element/attribute name, or the VALUE sentinel
    prefix: tuple[str, ...]
    probability: float

    @property
    def is_value(self) -> bool:
        return self.label == VALUE

    def matches(self, item: Item) -> bool:
        """True when ``item`` instantiates this candidate."""
        if item.prefix != self.prefix:
            return False
        if self.is_value:
            return item.is_value
        return item.symbol == self.label


class FollowSets:
    """Computes and caches follow sets over a schema."""

    def __init__(self, schema: Schema, *, value_prob: float = 0.9) -> None:
        self.schema = schema
        self.value_prob = value_prob
        self._cache: dict[tuple, list[FollowCandidate]] = {}

    def root_candidates(self) -> list[FollowCandidate]:
        """Candidates for the first item of any sequence (the record root)."""
        return [FollowCandidate(self.schema.root, (), 1.0)]

    def candidates(self, item: Item) -> list[FollowCandidate]:
        """Ordered follow set of ``item`` with immediate-successor probs."""
        key = (item.symbol if not item.is_value else VALUE, item.prefix)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._compute(item)
            self._cache[key] = cached
        return cached

    # -- internals -----------------------------------------------------------

    def _compute(self, item: Item) -> list[FollowCandidate]:
        raw: list[tuple[str, tuple[str, ...], float]] = []
        if item.is_value:
            # value leaf: successors start at the owning element's children
            chain = item.prefix
            if chain:
                self._append_children(raw, chain[-1], chain, include_value=False)
        else:
            label = str(item.symbol)
            chain = item.prefix + (label,)
            self._append_children(raw, label, chain, include_value=True)
        # climb the chain: repeats of each node, then its following siblings
        for depth in range(len(chain) - 1, 0, -1):
            current = chain[depth]
            parent = chain[depth - 1]
            prefix = chain[:depth]
            decl = self.schema.get(parent)
            if decl is None:
                continue
            spec = decl.child(current)
            if spec is not None and spec.repeatable:
                raw.append((current, prefix, spec.repeat_continue_prob()))
            position = decl.child_position(current)
            start = position + 1 if position is not None else len(decl.children)
            for later in decl.children[start:]:
                raw.append((later.name, prefix, later.prob))
        # chain Eq. 2: Px(y_i) = p_i * prod_{j<i} (1 - p_j)
        out: list[FollowCandidate] = []
        still_here = 1.0
        for label, prefix, prob in raw:
            prob = min(max(prob, 0.0), 1.0)
            out.append(FollowCandidate(label, prefix, prob * still_here))
            still_here *= 1.0 - prob
        return out

    def _append_children(
        self,
        raw: list[tuple[str, tuple[str, ...], float]],
        label: str,
        chain: tuple[str, ...],
        include_value: bool,
    ) -> None:
        decl = self.schema.get(label)
        if include_value:
            has_value = decl is None or decl.has_text or not decl.children
            if has_value:
                raw.append((VALUE, chain, self.value_prob))
        if decl is None:
            return
        for spec in decl.children:
            raw.append((spec.name, chain, spec.prob))
