"""Scope labels for (virtual) suffix-tree nodes.

A node labelled ``<n, size>`` owns the id ``n``; its descendants carry ids
in the half-open-at-the-left interval ``(n, n + size]`` (paper Section
3.3).  Both labelling schemes produce the same shape:

* **static** (RIST): ``n`` is the preorder number and ``size`` the number
  of descendants, so descendant ids are exactly ``n+1 .. n+size``;
* **dynamic** (ViST): a node owns the integer range ``[n, n + size + 1)``
  and allocates child ranges strictly inside ``(n, n + size]``.

Document-id lookups use the *closed* range ``[n, n + size]`` — the node's
own id plus every descendant id.  (The paper writes ``[n, n+size)`` in
Algorithm 2, which would drop documents attached to the last descendant;
with preorder labels the closed interval is the correct reading, and our
tests on Figure 5's example confirm it.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LabelingError

__all__ = ["Scope"]


@dataclass(frozen=True)
class Scope:
    """A ``<n, size>`` label."""

    n: int
    size: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise LabelingError(f"scope id must be non-negative, got {self.n}")
        if self.size < 0:
            raise LabelingError(f"scope size must be non-negative, got {self.size}")

    @property
    def end(self) -> int:
        """Largest id this scope covers (``n + size``)."""
        return self.n + self.size

    def contains_descendant_id(self, node_id: int) -> bool:
        """True when ``node_id`` lies in ``(n, n + size]`` — a descendant."""
        return self.n < node_id <= self.end

    def covers(self, other: "Scope") -> bool:
        """True when ``other`` is a descendant scope: strictly inside."""
        return self.n < other.n and other.end <= self.end

    def covers_or_equal(self, other: "Scope") -> bool:
        return self == other or self.covers(other)

    def doc_range(self) -> tuple[int, int]:
        """Closed id interval ``[n, n + size]`` for DocId lookups."""
        return self.n, self.end

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.n},{self.size}>"
