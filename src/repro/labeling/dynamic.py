"""Dynamic virtual suffix tree labelling (paper Section 3.4.1).

ViST never materialises the suffix tree.  Each (virtual) node carries a
*dynamic scope* ``<n, size, ...>``; when a new child must be created, a
sub-scope is carved out of the parent on the fly (Algorithm 3):

* with clues (Eq. 3–4): each follow-set candidate owns a deterministic
  slot sized by its Eq. 2 probability;
* without clues (Eq. 5–6): the ``k``-th inserted child receives
  ``(r - l - 1)(λ-1)^{k-1} / λ^k`` of the parent range.

Every node also *reserves* the tail of its scope, and when allocation
bottoms out (scope underflow), the insert path borrows a sequential block
of ids from the nearest ancestor whose reserve can cover the rest of the
sequence — the paper's repair, implemented in
:class:`repro.index.vist.VistIndex`.

:class:`NodeState` is the bookkeeping stored in each S-Ancestor B+Tree
entry: the scope, the parent id (used for the immediate-child test of
Algorithm 4), λ-chain cursors, the reserve watermark and a reference
count for deletion.  λ-chains persist a ``(next, remaining)`` cursor so
allocating the ``k``-th child is O(1) in exact integer arithmetic — no
floating point ever touches a label, because at ``Max = 2**256`` float
rounding would overlap scopes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.doc.stats import CorpusStats
from repro.errors import CodecError, LabelingError
from repro.labeling.clues import FollowCandidate, FollowSets
from repro.labeling.scope import Scope
from repro.sequence.encoding import Item
from repro.storage.serialization import decode_uint, encode_uint

DEFAULT_MAX = 1 << 256  # root scope [0, 2^256); labels are unbounded ints

_FLAG_PRIVATE = 0x01
_WEIGHT_SCALE = 1_000_000

__all__ = [
    "DEFAULT_MAX",
    "Chain",
    "NodeState",
    "ScopeAllocator",
    "LambdaAllocator",
    "UniformAllocator",
    "ClueAllocator",
]


@dataclass
class Chain:
    """Cursor of one λ-chain: children carved left-to-right off a region."""

    k: int = 0  # children allocated so far
    next: int = 0  # next free id (valid once k > 0)
    remaining: int = 0  # width still unallocated (valid once k > 0)

    def allocate(self, region_lo: int, region_width: int, lam: int) -> Optional[Scope]:
        """Carve the next child scope; ``None`` on underflow (Eq. 5–6)."""
        if lam < 2:
            lam = 2
        if self.k == 0:
            self.next = region_lo
            self.remaining = region_width
        share = self.remaining // lam
        if share < 1:
            return None
        scope = Scope(self.next, share - 1)
        self.next += share
        self.remaining -= share
        self.k += 1
        return scope

    def to_bytes(self) -> bytes:
        return encode_uint(self.k) + encode_uint(self.next) + encode_uint(self.remaining)

    @classmethod
    def from_bytes(cls, data: bytes, offset: int) -> tuple["Chain", int]:
        k, offset = decode_uint(data, offset)
        nxt, offset = decode_uint(data, offset)
        remaining, offset = decode_uint(data, offset)
        return cls(k=k, next=nxt, remaining=remaining), offset


@dataclass
class NodeState:
    """Persistent per-node labelling state (the S-Ancestor entry value).

    ``plain`` is the λ-scheme chain (clue-free mode); ``value`` and
    ``extra`` are the clue allocator's value-slot and overflow chains;
    ``reserve_used`` tracks ids lent to underflowing descendants;
    ``refs`` counts sequences whose insertion passed through this node
    (for deletion).  ``private`` marks borrow-labelled nodes that must
    never be shared with later insertions (paper Section 3.4.1).
    """

    scope: Scope
    parent_n: int
    refs: int = 0
    reserve_used: int = 0
    private: bool = False
    plain: Chain = field(default_factory=Chain)
    value: Chain = field(default_factory=Chain)
    extra: Chain = field(default_factory=Chain)

    def to_bytes(self) -> bytes:
        flags = _FLAG_PRIVATE if self.private else 0
        return (
            bytes([flags])
            + encode_uint(self.scope.size)
            + encode_uint(self.parent_n)
            + encode_uint(self.refs)
            + encode_uint(self.reserve_used)
            + self.plain.to_bytes()
            + self.value.to_bytes()
            + self.extra.to_bytes()
        )

    @classmethod
    def from_bytes(cls, n: int, data: bytes) -> "NodeState":
        if not data:
            raise CodecError("empty node state")
        flags = data[0]
        offset = 1
        size, offset = decode_uint(data, offset)
        parent_n, offset = decode_uint(data, offset)
        refs, offset = decode_uint(data, offset)
        reserve_used, offset = decode_uint(data, offset)
        plain, offset = Chain.from_bytes(data, offset)
        value, offset = Chain.from_bytes(data, offset)
        extra, offset = Chain.from_bytes(data, offset)
        if offset != len(data):
            raise CodecError("trailing bytes in node state")
        return cls(
            scope=Scope(n, size),
            parent_n=parent_n,
            refs=refs,
            reserve_used=reserve_used,
            private=bool(flags & _FLAG_PRIVATE),
            plain=plain,
            value=value,
            extra=extra,
        )


class ScopeAllocator:
    """Base allocator: reserve accounting shared by both schemes."""

    def __init__(self, *, reserve_divisor: int = 16) -> None:
        if reserve_divisor < 2:
            raise LabelingError("reserve_divisor must be >= 2")
        self.reserve_divisor = reserve_divisor

    # -- geometry ---------------------------------------------------------

    def reserve_size(self, scope: Scope) -> int:
        """Ids kept back at the scope tail for underflow borrowing."""
        return scope.size // self.reserve_divisor

    def usable_size(self, scope: Scope) -> int:
        """Ids available for regular child allocation."""
        return max(0, scope.size - self.reserve_size(scope))

    def borrow_block(self, state: NodeState, count: int) -> Optional[int]:
        """Reserve-tail block of ``count`` sequential ids, or ``None``.

        The reserve occupies the last ``reserve_size`` ids of the scope;
        blocks are handed out low-to-high via ``state.reserve_used``.
        """
        reserve = self.reserve_size(state.scope)
        if count < 1 or state.reserve_used + count > reserve:
            return None
        start = state.scope.end - reserve + 1 + state.reserve_used
        state.reserve_used += count
        return start

    # -- interface ----------------------------------------------------------

    def place(
        self, parent_state: NodeState, parent_item: Optional[Item], child: Item
    ) -> Optional[Scope]:
        """Allocate a child scope inside the parent; ``None`` on underflow.

        Mutates ``parent_state`` cursors; the caller persists the state.
        ``parent_item`` is ``None`` for the virtual root.
        """
        raise NotImplementedError


class LambdaAllocator(ScopeAllocator):
    """Clue-free allocation (Eq. 5–6): the ``k``-th child gets a λ share.

    ``lam`` may be a constant or derived per parent label from
    :class:`~repro.doc.stats.CorpusStats` (``expected_fanout``), matching
    the paper's "rough estimation of the number of different elements
    that follow a given element".  The λ used by a node is fixed at its
    first child allocation (it parameterises the persisted chain).
    """

    def __init__(
        self,
        lam: int = 2,
        *,
        stats: Optional[CorpusStats] = None,
        reserve_divisor: int = 16,
    ) -> None:
        super().__init__(reserve_divisor=reserve_divisor)
        if lam < 2:
            raise LabelingError(f"lambda must be >= 2, got {lam}")
        self.lam = lam
        self.stats = stats

    def lam_for(self, parent_item: Optional[Item]) -> int:
        if self.stats is None or parent_item is None:
            return self.lam
        if parent_item.is_value:
            label = parent_item.prefix[-1] if parent_item.prefix else ""
        else:
            label = str(parent_item.symbol)
        return max(2, round(self.stats.expected_fanout(label, default=self.lam)))

    def place(
        self, parent_state: NodeState, parent_item: Optional[Item], child: Item
    ) -> Optional[Scope]:
        scope = parent_state.scope
        return parent_state.plain.allocate(
            scope.n + 1, self.usable_size(scope), self.lam_for(parent_item)
        )


class UniformAllocator(ScopeAllocator):
    """Equal-share allocation for a known child-count estimate.

    Section 3.4.1, "Dynamic Scope Allocation without Clues": when "all
    that we can rely on is a rough estimation of the number of different
    elements that follow a given element ... the best we can do is to
    assume each of these elements occurs at roughly the same rate" —
    e.g. ``CountryOfBirth`` with ≈100 distinct values.  The ``k``-th
    inserted child receives exactly ``usable / m``; the ``m+1``-th child
    underflows (and borrows), which is the price of a tight estimate.
    """

    def __init__(self, expected_children: int, *, reserve_divisor: int = 16) -> None:
        super().__init__(reserve_divisor=reserve_divisor)
        if expected_children < 1:
            raise LabelingError("expected_children must be >= 1")
        self.expected_children = expected_children

    def place(
        self, parent_state: NodeState, parent_item: Optional[Item], child: Item
    ) -> Optional[Scope]:
        scope = parent_state.scope
        usable = self.usable_size(scope)
        share = usable // self.expected_children
        k = parent_state.plain.k
        if share < 1 or k >= self.expected_children:
            return None
        child_scope = Scope(scope.n + 1 + k * share, share - 1)
        parent_state.plain.k = k + 1
        return child_scope


class ClueAllocator(ScopeAllocator):
    """Clue-based allocation (Eq. 1–4) with a λ fallback region.

    The usable range splits into a *clue region* (``clue_fraction`` of
    it) carved into follow-set slots proportional to Eq. 2 probabilities,
    and an *overflow region* for children the schema did not predict.
    Element candidates own their whole slot (the trie has at most one
    child per item).  The value slot hosts every distinct hashed value
    through a λ-chain with ``λ = value cardinality`` — the paper's
    uniform-rate assumption for attribute values.

    All slot boundaries are computed with integer weights
    (``round(p * 1e6)``); floats never touch label arithmetic.
    """

    def __init__(
        self,
        follow_sets: FollowSets,
        *,
        clue_fraction: float = 0.875,
        fallback_lam: int = 4,
        reserve_divisor: int = 16,
    ) -> None:
        super().__init__(reserve_divisor=reserve_divisor)
        if not 0.0 < clue_fraction < 1.0:
            raise LabelingError("clue_fraction must be in (0, 1)")
        if fallback_lam < 2:
            raise LabelingError("fallback_lam must be >= 2")
        self.follow_sets = follow_sets
        self.fallback_lam = fallback_lam
        self._frac_num = round(clue_fraction * 1024)
        self._frac_den = 1024

    def place(
        self, parent_state: NodeState, parent_item: Optional[Item], child: Item
    ) -> Optional[Scope]:
        scope = parent_state.scope
        usable = self.usable_size(scope)
        clue_width = usable * self._frac_num // self._frac_den
        extra_lo = scope.n + 1 + clue_width
        extra_width = usable - clue_width
        if parent_item is None:
            candidates = self.follow_sets.root_candidates()
        else:
            candidates = self.follow_sets.candidates(parent_item)
        slot = self._find_slot(candidates, child, scope.n + 1, clue_width)
        if slot is None:
            # not predicted by the schema: λ-chain in the overflow region
            return parent_state.extra.allocate(extra_lo, extra_width, self.fallback_lam)
        slot_lo, slot_width, is_value = slot
        if not is_value:
            if slot_width < 1:
                return None
            return Scope(slot_lo, slot_width - 1)
        # value slot: λ-chain with λ = estimated number of distinct values
        owner = child.prefix[-1] if child.prefix else self.follow_sets.schema.root
        lam = max(2, self.follow_sets.schema.value_cardinality(owner))
        return parent_state.value.allocate(slot_lo, slot_width, lam)

    @staticmethod
    def _find_slot(
        candidates: list[FollowCandidate],
        child: Item,
        lo: int,
        width: int,
    ) -> Optional[tuple[int, int, bool]]:
        """Deterministic Eq. 3–4 slot for ``child``: ``(lo, width, is_value)``."""
        weights = [max(1, round(c.probability * _WEIGHT_SCALE)) for c in candidates]
        total = sum(weights)
        if total <= 0:
            return None
        acc = 0
        for candidate, weight in zip(candidates, weights):
            slot_lo = lo + width * acc // total
            slot_hi = lo + width * (acc + weight) // total
            if candidate.matches(child):
                return slot_lo, slot_hi - slot_lo, candidate.is_value
            acc += weight
        return None
