"""Scope labelling: static (RIST) and dynamic (ViST) schemes plus clues."""

from repro.labeling.clues import VALUE, FollowCandidate, FollowSets
from repro.labeling.dynamic import (
    DEFAULT_MAX,
    Chain,
    ClueAllocator,
    LambdaAllocator,
    NodeState,
    ScopeAllocator,
    UniformAllocator,
)
from repro.labeling.scope import Scope

__all__ = [
    "Scope",
    "Chain",
    "NodeState",
    "ScopeAllocator",
    "LambdaAllocator",
    "UniformAllocator",
    "ClueAllocator",
    "FollowSets",
    "FollowCandidate",
    "VALUE",
    "DEFAULT_MAX",
]
