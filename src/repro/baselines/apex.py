"""APEX-like length-2 path index (Chung, Min & Shim, SIGMOD 2002).

The paper's related work describes APEX as an adaptive path index that,
absent workload information, "maintains every path of length two.
Therefore, it also has to rely on join operations to answer path queries
with more than two elements."  This baseline implements that ground
state (APEX₀, no workload-mined refinements): one posting list per
``(parent label, child label)`` edge plus per-label and value postings,
with every longer query assembled from parent–child semi-joins.

Compared to the raw-path index it never scans key ranges for wildcards
(an edge lookup is exact), but it pays one join per query edge — so it
sits between :class:`~repro.baselines.pathindex.PathIndex` and
:class:`~repro.baselines.nodeindex.XissIndex` in the design space the
paper surveys.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.joins import merge_doc_ids, structural_semijoin
from repro.baselines.labels import Occurrence, sequence_occurrences
from repro.index.base import XmlIndexBase
from repro.query.ast import QueryNode
from repro.sequence.encoding import StructureEncodedSequence
from repro.sequence.transform import SequenceEncoder
from repro.storage.bptree import BPlusTree, TreeStats
from repro.storage.docstore import DocStore
from repro.storage.pager import MemoryPager, Pager
from repro.storage.serialization import decode_tuple, encode_tuple

# key families inside the single postings tree:
_EDGE = 0  # (0, parent_label, child_label) -> child occurrence
_LABEL = 1  # (1, label) -> occurrence (root lookups and // steps)
_VALUE = 2  # (2, hash) -> value-leaf occurrence

__all__ = ["ApexIndex"]


class ApexIndex(XmlIndexBase):
    """Length-2 path postings with join-based query evaluation."""

    def __init__(
        self,
        encoder: Optional[SequenceEncoder] = None,
        docstore: Optional[DocStore] = None,
        pager: Optional[Pager] = None,
        *,
        source_store=None,
        max_alternatives: int = 24,
    ) -> None:
        super().__init__(
            encoder, docstore,
            source_store=source_store, max_alternatives=max_alternatives,
        )
        self._pager = pager if pager is not None else MemoryPager()
        self.postings = BPlusTree(self._pager, slot=0)
        self.join_count = 0

    # -- ingestion ---------------------------------------------------------

    def add_sequence(self, sequence: StructureEncodedSequence) -> int:
        doc_id = self.docstore.add(self._sequence_to_payload(sequence))
        for symbol, prefix, occ in sequence_occurrences(sequence, doc_id):
            payload = encode_tuple(occ)
            if isinstance(symbol, int):
                self.postings.insert(
                    encode_tuple((_VALUE, symbol)), payload, allow_exact_dup=True
                )
                continue
            self.postings.insert(
                encode_tuple((_LABEL, symbol)), payload, allow_exact_dup=True
            )
            parent = prefix[-1] if prefix else ""
            self.postings.insert(
                encode_tuple((_EDGE, parent, symbol)), payload, allow_exact_dup=True
            )
        return doc_id

    # -- evaluation ------------------------------------------------------------

    def _needs_verification(self, root: QueryNode) -> bool:
        # join-based evaluation handles childless wildcards natively
        return False

    def _needs_relaxed_candidates(self, root: QueryNode) -> bool:
        # join-based evaluation is exact for same-label branches too
        return False

    def _execute(self, root: QueryNode, guard=None, trace=None) -> set[int]:
        self._guard = guard
        if root.is_dslash:
            doc_sets = [
                merge_doc_ids(self._eval(child, parent_label=None, anchored=False))
                for child in root.children
            ]
            if not doc_sets:
                return set()
            out = doc_sets[0]
            for ids in doc_sets[1:]:
                out &= ids
            return out
        return merge_doc_ids(self._eval(root, parent_label="", anchored=True))

    def _eval(
        self, qnode: QueryNode, parent_label: Optional[str], anchored: bool
    ) -> list[Occurrence]:
        """Occurrences of ``qnode`` satisfying its subtree, fetched through
        the length-2 edge postings when the parent label is concrete."""
        if getattr(self, "_guard", None) is not None:
            self._guard.step()
        occs = self._fetch(qnode, parent_label)
        if anchored:
            occs = [occ for occ in occs if occ.level == 0]
        if qnode.value is not None and qnode.op == "=":
            # non-equality comparisons are enforced by verification
            values = self._postings((_VALUE, self.encoder.hasher(qnode.value)))
            occs = structural_semijoin(occs, values, parent_child=True)
            self.join_count += 1
        own_label = None if qnode.is_wildcard else qnode.label
        for child in qnode.children:
            if child.is_dslash:
                for grandchild in child.children:
                    occs = structural_semijoin(
                        occs, self._eval(grandchild, None, anchored=False)
                    )
                    self.join_count += 1
            else:
                occs = structural_semijoin(
                    occs,
                    self._eval(child, own_label, anchored=False),
                    parent_child=True,
                )
                self.join_count += 1
            if not occs:
                return []
        return occs

    def _fetch(self, qnode: QueryNode, parent_label: Optional[str]) -> list[Occurrence]:
        if qnode.is_star:
            # any label: scan the per-label family and re-sort to join order
            lo = encode_tuple((_LABEL,))
            hi = encode_tuple((_VALUE,))
            occs = [
                Occurrence(*decode_tuple(value))
                for _, value in self.postings.range(lo, hi)
            ]
            occs.sort(key=lambda occ: (occ.doc_id, occ.start))
            return occs
        if parent_label is None:
            return self._postings((_LABEL, qnode.label))
        return self._postings((_EDGE, parent_label, qnode.label))

    def _postings(self, key_items: tuple) -> list[Occurrence]:
        return [
            Occurrence(*decode_tuple(value))
            for value in self.postings.values(encode_tuple(key_items))
        ]

    # -- measurements -----------------------------------------------------------

    def index_stats(self) -> dict[str, TreeStats]:
        return {"postings": self.postings.stats()}
