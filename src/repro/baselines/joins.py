"""Structural joins over extended-preorder occurrence lists.

The baselines answer branching/wildcard queries the way the paper
describes: "disassemble a query into multiple sub-queries, and then join
the results" — precisely the cost ViST avoids.  Occurrence lists are
sorted by ``(doc_id, start)``; :func:`structural_semijoin` keeps the
ancestors (or parents) that contain at least one occurrence from the
inner list, which is all a document-membership query needs when queries
are evaluated bottom-up.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.baselines.labels import Occurrence

__all__ = ["structural_semijoin", "merge_doc_ids"]


def structural_semijoin(
    outer: list[Occurrence],
    inner: list[Occurrence],
    *,
    parent_child: bool = False,
) -> list[Occurrence]:
    """Ancestor–descendant (or parent–child) semi-join.

    Returns the outer occurrences having at least one inner occurrence in
    their subtree.  Both inputs must be sorted by ``(doc_id, start)``;
    the output preserves that order.  Complexity is
    ``O(|outer| * log |inner| + matches)``.
    """
    if not outer or not inner:
        return []
    keys = [(occ.doc_id, occ.start) for occ in inner]
    result: list[Occurrence] = []
    for anc in outer:
        idx = bisect_right(keys, (anc.doc_id, anc.start))
        while idx < len(inner):
            desc = inner[idx]
            if desc.doc_id != anc.doc_id or desc.start > anc.end:
                break
            if not parent_child or desc.level == anc.level + 1:
                result.append(anc)
                break
            idx += 1
    return result


def merge_doc_ids(occurrences: list[Occurrence]) -> set[int]:
    """Distinct document ids of an occurrence list."""
    return {occ.doc_id for occ in occurrences}
