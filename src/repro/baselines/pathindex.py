"""Index Fabric-like raw-path index (Cooper et al., VLDB 2001) — the
paper's first comparator, re-implemented "without the extra index for
refined paths", exactly as Section 4 describes.

Every node occurrence is keyed by its *root-to-node label path* (value
leaves by path + hashed value).  A query that is a single raw path —
optionally ending in a value — is one key lookup, which is why Index
Fabric ties ViST on Table 4's Q1.  Everything else (branches, ``*``,
``//``) decomposes into per-path lookups glued together with structural
joins, and wildcards degrade further into key-range scans filtered by
pattern matching — the behaviour behind its Q3/Q4 blow-up.
"""

from __future__ import annotations

from itertools import count
from typing import Optional

from repro.baselines.joins import merge_doc_ids, structural_semijoin
from repro.baselines.labels import Occurrence, sequence_occurrences
from repro.index.base import XmlIndexBase
from repro.index.matching import match_prefix_pattern
from repro.query.ast import Dslash, PrefixToken, QueryNode, Star
from repro.sequence.encoding import StructureEncodedSequence
from repro.sequence.transform import SequenceEncoder
from repro.storage.bptree import BPlusTree, TreeStats
from repro.storage.docstore import DocStore
from repro.storage.pager import MemoryPager, Pager
from repro.storage.serialization import decode_tuple, encode_tuple, prefix_range_end

__all__ = ["PathIndex"]

PathTokens = tuple[PrefixToken, ...]


class PathIndex(XmlIndexBase):
    """Raw-path index with join-based branching-query evaluation."""

    def __init__(
        self,
        encoder: Optional[SequenceEncoder] = None,
        docstore: Optional[DocStore] = None,
        pager: Optional[Pager] = None,
        *,
        source_store=None,
        max_alternatives: int = 24,
    ) -> None:
        super().__init__(
            encoder, docstore,
            source_store=source_store, max_alternatives=max_alternatives,
        )
        self._pager = pager if pager is not None else MemoryPager()
        self.paths = BPlusTree(self._pager, slot=0)
        self.join_count = 0
        self.scanned_keys = 0  # wildcard-scan effort, reported by benchmarks

    # -- ingestion ---------------------------------------------------------

    def add_sequence(self, sequence: StructureEncodedSequence) -> int:
        doc_id = self.docstore.add(self._sequence_to_payload(sequence))
        for symbol, prefix, occ in sequence_occurrences(sequence, doc_id):
            # element path = prefix + own label; value path = prefix + hash
            self.paths.insert(
                encode_tuple((*prefix, symbol)),
                encode_tuple(occ),
                allow_exact_dup=True,
            )
        return doc_id

    # -- evaluation ------------------------------------------------------------

    def _needs_verification(self, root: QueryNode) -> bool:
        # join-based evaluation handles childless wildcards natively
        return False

    def _needs_relaxed_candidates(self, root: QueryNode) -> bool:
        # join-based evaluation is exact for same-label branches too
        return False

    def _execute(self, root: QueryNode, guard=None, trace=None) -> set[int]:
        self._guard = guard
        chain = self._as_raw_path(root)
        if chain is not None:
            return merge_doc_ids(self._fetch(chain))
        self._wid = count(1 << 20)  # fresh ids, disjoint from translator wids
        if root.is_dslash:
            doc_sets = [
                merge_doc_ids(self._eval(child, (Dslash(next(self._wid)),)))
                for child in root.children
            ]
            if not doc_sets:
                return set()
            out = doc_sets[0]
            for ids in doc_sets[1:]:
                out &= ids
            return out
        return merge_doc_ids(self._eval(root, ()))

    def _as_raw_path(self, root: QueryNode) -> Optional[PathTokens]:
        """The full key path if the query is one raw path, else ``None``.

        Raw = a single chain of concrete labels with at most one value
        predicate, on the last node.  This is the case Index Fabric
        answers with a single lookup.
        """
        tokens: list[PrefixToken] = []
        node = root
        while True:
            if node.is_wildcard:
                return None
            tokens.append(node.label)
            if len(node.children) > 1:
                return None
            if node.value is not None:
                if node.children or node.op != "=":
                    return None
                return (*tokens, self.encoder.hasher(node.value))
            if not node.children:
                return tuple(tokens)
            node = node.children[0]

    def _eval(self, qnode: QueryNode, parent_path: PathTokens) -> list[Occurrence]:
        if getattr(self, "_guard", None) is not None:
            self._guard.step()
        if qnode.is_star:
            path = parent_path + (Star(next(self._wid)),)
        elif qnode.is_dslash:
            raise AssertionError("dslash nodes are expanded by their parent")
        else:
            path = parent_path + (qnode.label,)
        occs = self._fetch(path)
        if qnode.value is not None and qnode.op == "=":
            # non-equality comparisons are enforced by verification
            values = self._fetch(path + (self.encoder.hasher(qnode.value),))
            occs = structural_semijoin(occs, values, parent_child=True)
            self.join_count += 1
        for child in qnode.children:
            if child.is_dslash:
                dpath = path + (Dslash(next(self._wid)),)
                for grandchild in child.children:
                    occs = structural_semijoin(occs, self._eval(grandchild, dpath))
                    self.join_count += 1
            else:
                occs = structural_semijoin(
                    occs, self._eval(child, path), parent_child=True
                )
                self.join_count += 1
            if not occs:
                return []
        return occs

    # -- posting access -----------------------------------------------------

    def _fetch(self, path: PathTokens) -> list[Occurrence]:
        """Postings of every stored path matching the token pattern.

        A trailing ``int`` token is a hashed value (value-leaf lookup);
        the other tokens are labels or wildcard placeholders.
        """
        value_hash: Optional[int] = None
        pattern = path
        if pattern and isinstance(pattern[-1], int):
            value_hash = pattern[-1]
            pattern = pattern[:-1]
        leading: list[str] = []
        tail: list[PrefixToken] = []
        for token in pattern:
            if not tail and isinstance(token, str):
                leading.append(token)
            else:
                tail.append(token)
        if not tail:
            key_items = (*leading, value_hash) if value_hash is not None else tuple(leading)
            return [
                Occurrence(*decode_tuple(value))
                for value in self.paths.values(encode_tuple(key_items))
            ]
        # wildcard path: range-scan all keys under the concrete leading
        # labels and pattern-match the remainder (the expensive case)
        scan = encode_tuple(tuple(leading))
        out: list[Occurrence] = []
        for key, value in self.paths.range(scan, prefix_range_end(scan)):
            self.scanned_keys += 1
            parts = decode_tuple(key)
            rest = parts[len(leading) :]
            if value_hash is not None:
                if not rest or rest[-1] != value_hash:
                    continue
                rest = rest[:-1]
            elif rest and isinstance(rest[-1], int):
                continue  # element pattern must not match value keys
            if match_prefix_pattern(tuple(tail), tuple(rest), ()):
                out.append(Occurrence(*decode_tuple(value)))
        out.sort(key=lambda occ: (occ.doc_id, occ.start))
        return out

    # -- measurements -----------------------------------------------------------

    def index_stats(self) -> dict[str, TreeStats]:
        return {"paths": self.paths.stats()}
