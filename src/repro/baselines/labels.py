"""Extended preorder labels for the baseline indexes.

XISS (Li & Moon, VLDB 2001) and the Index Fabric re-implementation label
every document node with ``(start, end, level)``: ``start`` is the
preorder number, ``end`` the preorder number of the last node in the
subtree, ``level`` the depth.  ``a`` is an ancestor of ``d`` iff
``a.start < d.start <= a.end`` (same document), and the parent iff
additionally ``d.level == a.level + 1``.

The labels are derived directly from a structure-encoded sequence — a
preorder listing with depths — so the baselines ingest the very same
representation ViST does, keeping the comparison apples-to-apples.
"""

from __future__ import annotations

from typing import NamedTuple, Union

from repro.sequence.encoding import StructureEncodedSequence

__all__ = ["Occurrence", "sequence_occurrences"]


class Occurrence(NamedTuple):
    """One labelled node occurrence inside one document."""

    doc_id: int
    start: int
    end: int
    level: int

    def contains(self, other: "Occurrence") -> bool:
        """Ancestor test (same document, strict containment)."""
        return (
            self.doc_id == other.doc_id
            and self.start < other.start <= self.end
        )

    def is_parent_of(self, other: "Occurrence") -> bool:
        return self.contains(other) and other.level == self.level + 1


def sequence_occurrences(
    sequence: StructureEncodedSequence, doc_id: int
) -> list[tuple[Union[str, int], tuple[str, ...], Occurrence]]:
    """Label every item of a sequence: ``(symbol, prefix, occurrence)``.

    ``start`` is the item's position; ``end`` spans the item's subtree
    (for value leaves, ``end == start``); ``level`` is the prefix length.
    """
    items = sequence.items
    n = len(items)
    ends = [0] * n
    stack: list[int] = []  # indexes of open elements
    for i, item in enumerate(items):
        depth = len(item.prefix)
        while stack and len(items[stack[-1]].prefix) >= depth:
            ends[stack.pop()] = i - 1
        ends[i] = i  # provisional: leaf until proven otherwise
        if not item.is_value:
            stack.append(i)
    while stack:
        ends[stack.pop()] = n - 1
    return [
        (item.symbol, item.prefix, Occurrence(doc_id, i, ends[i], len(item.prefix)))
        for i, item in enumerate(items)
    ]
