"""XISS-like node index (Li & Moon, "Indexing and querying XML data for
regular path expressions", VLDB 2001) — the paper's second comparator.

"XISS uses single elements/attributes as the basic unit of query.  A
complex path expression is decomposed into a collection of basic path
expressions ...  All other forms of expressions involve join operations."

One B+Tree holds every node occurrence keyed by its label (elements and
attributes) or hashed value (value leaves); the payload is the extended
preorder label ``(doc_id, start, end, level)``.  Queries are evaluated
bottom-up with structural semi-joins; a ``*`` step fetches *every*
element occurrence, which is exactly why XISS is slow on the wildcard
queries of Table 4.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.joins import merge_doc_ids, structural_semijoin
from repro.baselines.labels import Occurrence, sequence_occurrences
from repro.index.base import XmlIndexBase
from repro.query.ast import QueryNode
from repro.sequence.encoding import StructureEncodedSequence
from repro.sequence.transform import SequenceEncoder
from repro.storage.bptree import BPlusTree, TreeStats
from repro.storage.docstore import DocStore
from repro.storage.pager import MemoryPager, Pager
from repro.storage.serialization import decode_tuple, encode_tuple

# All labels are strings; the str type tag in encode_tuple is 0x15 and the
# int tag 0x05, so every element key sorts after every value key and this
# boundary splits the tree into the two posting families.
_FIRST_STR_KEY = b"\x15"

__all__ = ["XissIndex"]


class XissIndex(XmlIndexBase):
    """Node-granularity index with structural joins."""

    def __init__(
        self,
        encoder: Optional[SequenceEncoder] = None,
        docstore: Optional[DocStore] = None,
        pager: Optional[Pager] = None,
        *,
        source_store=None,
        max_alternatives: int = 24,
    ) -> None:
        super().__init__(
            encoder, docstore,
            source_store=source_store, max_alternatives=max_alternatives,
        )
        self._pager = pager if pager is not None else MemoryPager()
        self.occurrences = BPlusTree(self._pager, slot=0)
        self.join_count = 0  # joins performed, reported by benchmarks

    # -- ingestion ---------------------------------------------------------

    def add_sequence(self, sequence: StructureEncodedSequence) -> int:
        doc_id = self.docstore.add(self._sequence_to_payload(sequence))
        for symbol, _prefix, occ in sequence_occurrences(sequence, doc_id):
            self.occurrences.insert(
                encode_tuple((symbol,)),
                encode_tuple(occ),
                allow_exact_dup=True,
            )
        return doc_id

    # -- evaluation ------------------------------------------------------------

    def _needs_verification(self, root: QueryNode) -> bool:
        # join-based evaluation handles childless wildcards natively
        return False

    def _needs_relaxed_candidates(self, root: QueryNode) -> bool:
        # join-based evaluation is exact for same-label branches too
        return False

    def _execute(self, root: QueryNode, guard=None, trace=None) -> set[int]:
        self._guard = guard
        if root.is_dslash:
            doc_sets = [
                merge_doc_ids(self._eval(child, anchored=False))
                for child in root.children
            ]
            if not doc_sets:
                return set()
            out = doc_sets[0]
            for ids in doc_sets[1:]:
                out &= ids
            return out
        return merge_doc_ids(self._eval(root, anchored=True))

    def _eval(self, qnode: QueryNode, anchored: bool) -> list[Occurrence]:
        """Occurrences of ``qnode`` whose subtree satisfies its constraints."""
        if getattr(self, "_guard", None) is not None:
            self._guard.step()
        occs = self._fetch_elements(qnode)
        if anchored:
            occs = [occ for occ in occs if occ.level == 0]
        if qnode.value is not None and qnode.op == "=":
            # non-equality comparisons are enforced by verification
            values = self._fetch_postings(
                encode_tuple((self.encoder.hasher(qnode.value),))
            )
            occs = structural_semijoin(occs, values, parent_child=True)
            self.join_count += 1
        for child in qnode.children:
            if child.is_dslash:
                for grandchild in child.children:
                    occs = structural_semijoin(
                        occs, self._eval(grandchild, anchored=False)
                    )
                    self.join_count += 1
            else:
                occs = structural_semijoin(
                    occs, self._eval(child, anchored=False), parent_child=True
                )
                self.join_count += 1
            if not occs:
                return []
        return occs

    def _fetch_elements(self, qnode: QueryNode) -> list[Occurrence]:
        if qnode.is_star:
            # a name wildcard has no selective access path: scan all
            # elements and re-sort them into (doc_id, start) join order
            occs = [
                Occurrence(*decode_tuple(value))
                for _, value in self.occurrences.range(_FIRST_STR_KEY, None)
            ]
            occs.sort(key=lambda occ: (occ.doc_id, occ.start))
            return occs
        return self._fetch_postings(encode_tuple((qnode.label,)))

    def _fetch_postings(self, key: bytes) -> list[Occurrence]:
        return [
            Occurrence(*decode_tuple(value)) for value in self.occurrences.values(key)
        ]

    # -- measurements -----------------------------------------------------------

    def index_stats(self) -> dict[str, TreeStats]:
        return {"occurrences": self.occurrences.stats()}
