"""Comparison baselines: Index Fabric-like path index, XISS-like node
index, and APEX-like length-2 path index."""

from repro.baselines.apex import ApexIndex
from repro.baselines.joins import merge_doc_ids, structural_semijoin
from repro.baselines.labels import Occurrence, sequence_occurrences
from repro.baselines.nodeindex import XissIndex
from repro.baselines.pathindex import PathIndex

__all__ = [
    "PathIndex",
    "XissIndex",
    "ApexIndex",
    "Occurrence",
    "sequence_occurrences",
    "structural_semijoin",
    "merge_doc_ids",
]
