"""Worker supervision for sharded serving: detect, restart, give up.

The failure model (docs/INTERNALS.md section 13) is a three-state
machine per shard::

    healthy ──(exit / EOF / heartbeat miss)──▶ restarting
    restarting ──(respawn ok)──▶ healthy
    restarting ──(restart budget exhausted)──▶ down      (sticky)

Detection has three independent triggers, any of which moves a shard to
``restarting``:

* **process exit** — the supervisor polls every worker's ``Popen``;
* **connection EOF/reset** — the demux reader thread notices the socket
  dying and reports the loss *immediately* (so in-flight futures fail
  with a typed :class:`~repro.errors.ShardUnavailableError` right away,
  never waiting out a spawn timeout);
* **heartbeat miss** — a periodic ``ping`` with its own deadline catches
  a worker that is alive but wedged; a miss force-kills the process so
  the EOF path takes over.

Restarts are paced by :class:`RestartPolicy`: capped exponential backoff
with jitter, and a budget of ``max_restarts`` inside a sliding
``window_s`` — one flaky worker gets retried, a crash loop is cut off by
marking the shard ``down``.  ``down`` is sticky for the executor's
lifetime: queries against a down shard fail fast (or degrade to partial
results when the caller opted in).

The supervisor doubles as the shard layer's monotonic-time event loop:
per-RPC retries, hedges, and deadlines are all :meth:`~ShardSupervisor.
schedule`\\ d callbacks on the same thread, so the executor never spawns
a timer thread per request.
"""

from __future__ import annotations

import heapq
import random
import sys
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "HEALTHY",
    "RESTARTING",
    "DOWN",
    "RestartPolicy",
    "RestartTracker",
    "ShardSupervisor",
]

# shard supervision states (JSON-friendly strings, surfaced in stats)
HEALTHY = "healthy"
RESTARTING = "restarting"
DOWN = "down"


@dataclass(frozen=True)
class RestartPolicy:
    """How hard to try bringing a dead worker back.

    ``max_restarts`` failures inside the sliding ``window_s`` mark the
    shard down.  The n-th restart in the window waits
    ``min(base_backoff_s * 2**(n-1), max_backoff_s)`` scaled by a
    uniform ±``jitter`` fraction, so a fleet of shards dying together
    does not respawn in lockstep.
    """

    max_restarts: int = 5
    window_s: float = 30.0
    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    jitter: float = 0.25
    seed: Optional[int] = None

    def tracker(self, shard: int) -> "RestartTracker":
        seed = None if self.seed is None else self.seed * 1000 + shard
        return RestartTracker(self, random.Random(seed))


class RestartTracker:
    """Per-shard restart accounting against one :class:`RestartPolicy`."""

    def __init__(self, policy: RestartPolicy, rng: random.Random) -> None:
        self.policy = policy
        self._rng = rng
        self._failures: list[float] = []

    def next_delay(self, now: Optional[float] = None) -> Optional[float]:
        """Record a failure; the backoff before the next restart attempt.

        Returns ``None`` when the budget inside the window is exhausted —
        the caller marks the shard down.
        """
        if now is None:
            now = time.monotonic()
        horizon = now - self.policy.window_s
        self._failures = [t for t in self._failures if t > horizon]
        if len(self._failures) >= self.policy.max_restarts:
            return None
        self._failures.append(now)
        n = len(self._failures)
        delay = min(
            self.policy.max_backoff_s,
            self.policy.base_backoff_s * (2.0 ** (n - 1)),
        )
        if self.policy.jitter:
            delay *= 1.0 + self.policy.jitter * (2.0 * self._rng.random() - 1.0)
        return max(0.0, delay)

    def failures_in_window(self, now: Optional[float] = None) -> int:
        if now is None:
            now = time.monotonic()
        horizon = now - self.policy.window_s
        return sum(1 for t in self._failures if t > horizon)


class ShardSupervisor:
    """One thread: scheduled callbacks + worker liveness + restarts.

    The executor reports connection losses via :meth:`on_connection_lost`
    (called from demux reader threads); the supervisor owns every state
    transition out of ``healthy`` so restarts are serialised per shard.
    ``restart_fn(client)`` (supplied by the executor) performs the actual
    respawn and must raise on failure; ``on_down(client, reason)`` is
    notified once when a shard's budget runs out.
    """

    def __init__(
        self,
        *,
        restart_fn: Callable,
        policy: Optional[RestartPolicy] = None,
        heartbeat_s: Optional[float] = 2.0,
        heartbeat_fn: Optional[Callable] = None,
        on_down: Optional[Callable] = None,
    ) -> None:
        self.policy = policy if policy is not None else RestartPolicy()
        self.restart_fn = restart_fn
        self.heartbeat_s = heartbeat_s
        self.heartbeat_fn = heartbeat_fn
        self.on_down = on_down
        self._trackers: dict[int, RestartTracker] = {}
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._cond = threading.Condition()
        self._stopped = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-shard-supervisor", daemon=True
        )
        self._thread.start()
        if self.heartbeat_s is not None and self.heartbeat_fn is not None:
            self.schedule(self.heartbeat_s, self._heartbeat_tick)

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    @property
    def stopped(self) -> bool:
        return self._stopped

    # -- the event loop --------------------------------------------------

    def schedule(self, delay_s: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the supervisor thread after ``delay_s`` seconds.

        After :meth:`stop` this is a no-op — a late retry or hedge fired
        into a closing executor must not resurrect anything.
        """
        with self._cond:
            if self._stopped:
                return
            self._seq += 1
            heapq.heappush(self._heap, (time.monotonic() + delay_s, self._seq, fn))
            self._cond.notify_all()

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._stopped:
                    if self._heap:
                        wait = self._heap[0][0] - time.monotonic()
                        if wait <= 0:
                            break
                        self._cond.wait(timeout=min(wait, 0.5))
                    else:
                        self._cond.wait(timeout=0.5)
                if self._stopped:
                    return
                _when, _seq, fn = heapq.heappop(self._heap)
            try:
                fn()
            except Exception as exc:  # pragma: no cover - defensive
                # a supervision callback must never kill the loop
                print(
                    f"repro.shard.supervisor: callback failed: "
                    f"{type(exc).__name__}: {exc}",
                    file=sys.stderr,
                )

    def _heartbeat_tick(self) -> None:
        try:
            if self.heartbeat_fn is not None:
                self.heartbeat_fn()
        finally:
            if self.heartbeat_s is not None:
                self.schedule(self.heartbeat_s, self._heartbeat_tick)

    # -- restart orchestration -------------------------------------------

    def on_connection_lost(self, client, reason: str) -> None:
        """A shard's worker died or its connection broke: begin recovery.

        Called from demux reader threads and heartbeat callbacks; safe to
        call repeatedly — only the transition out of ``healthy`` (done by
        the client under its own lock before calling here) schedules a
        restart, so one death never queues two respawns.
        """
        if self._stopped:
            return
        tracker = self._trackers.get(client.shard)
        if tracker is None:
            tracker = self._trackers[client.shard] = self.policy.tracker(client.shard)
        delay = tracker.next_delay()
        if delay is None:
            self._mark_down(client, f"restart budget exhausted after: {reason}")
            return
        self.schedule(delay, lambda: self._attempt_restart(client, reason))

    def _attempt_restart(self, client, reason: str) -> None:
        if self._stopped or client.state != RESTARTING:
            return
        try:
            self.restart_fn(client)
        except Exception as exc:
            tracker = self._trackers[client.shard]
            delay = tracker.next_delay()
            if delay is None:
                self._mark_down(
                    client,
                    f"restart budget exhausted (last spawn failure: "
                    f"{type(exc).__name__}: {exc})",
                )
                return
            self.schedule(delay, lambda: self._attempt_restart(client, reason))

    def _mark_down(self, client, reason: str) -> None:
        client.mark_down(reason)
        if self.on_down is not None:
            self.on_down(client, reason)

    def restart_counts(self) -> dict[int, int]:
        """Failures inside the current window, per shard that ever failed."""
        return {
            shard: tracker.failures_in_window()
            for shard, tracker in self._trackers.items()
        }
