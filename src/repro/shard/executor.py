"""ShardedExecutor: fault-tolerant scatter-gather over worker processes.

The process-parallel counterpart of :class:`~repro.exec.QueryExecutor`:
one worker **process** per shard (spawned as ``python -m
repro.shard.worker``, each holding its shard's index open with its own
pager/WAL and answering over a loopback socket), a demultiplexing reader
thread per connection, and request pipelining — any number of client
threads can have queries in flight against every shard at once, which is
what actually breaks the GIL wall: the matching work runs in N
interpreters.

Every submitted query is fanned out to *all* shards and the per-shard
answers (local doc ids) are mapped through the
:class:`~repro.shard.routing.ShardMap` back to global ids and merged —
an exact union, because membership is a per-document decision.

**Fault tolerance** (docs/INTERNALS.md section 13) is layered on top:

* *Supervision* — a :class:`~repro.shard.supervisor.ShardSupervisor`
  watches every worker (process exit, connection EOF, heartbeat ping
  with its own deadline).  A death fails all in-flight futures for that
  shard immediately with a typed
  :class:`~repro.errors.ShardUnavailableError` — never a silent stall —
  and the worker is restarted with capped exponential backoff + jitter;
  past the restart budget the shard is marked ``down`` (sticky).
* *Per-RPC resilience* — every shard call carries a deadline (derived
  from the query guard's ``deadline_ms`` plus a grace period, else the
  executor-wide ``rpc_timeout_s``); idempotent ops (query/stats/ping)
  get bounded retries with backoff across worker restarts; ``hedge_ms``
  optionally duplicates a straggling query call and takes the first
  answer.
* *Graceful degradation* — with ``partial=True``, availability failures
  degrade to partial results annotated with the missing shard set
  (``QueryOutcome.missing_shards``) and counted in the
  ``shard.<K>.unavailable`` metrics; the default is fail-loud, where a
  missing shard poisons that outcome with a
  :class:`~repro.errors.ShardQueryError` whose causes are typed.

Writes route: :meth:`add` assigns the next global id, computes its shard
by the stable hash, and ships the document to exactly that worker (the
worker asserts the expected local id *before* mutating, so router/worker
layout drift is loud and side-effect free).  Writes are not idempotent,
so they never retry: a write against a restarting or down shard fails
fast with :class:`~repro.errors.ShardUnavailableError`.  The manifest is
re-written on :meth:`close`; a crash in between is absorbed by
:meth:`ShardMap.recover` on the next open.
"""

from __future__ import annotations

import os
import select
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.errors import ShardError, ShardQueryError, ShardUnavailableError
from repro.exec.executor import QueryOutcome
from repro.obs import MetricsRegistry
from repro.shard.protocol import recv_frame, rehydrate_error, send_frame
from repro.shard.routing import ShardMap, read_manifest, shard_dir, write_manifest
from repro.shard.supervisor import (
    DOWN,
    HEALTHY,
    RESTARTING,
    RestartPolicy,
    ShardSupervisor,
)

__all__ = ["ShardedExecutor"]

_SPAWN_TIMEOUT = 30.0
_SHUTDOWN_TIMEOUT = 10.0
#: poll interval while an RPC waits out a worker restart
_RESTART_WAIT_TICK = 0.05


class _ShardClient:
    """One worker process + its connection: spawn, pipeline, demux, respawn.

    The client owns the liveness *detection* half of supervision: the
    demux reader thread notices EOF/reset and immediately fails every
    pending future with a typed :class:`ShardUnavailableError` (the PR-6
    behaviour was to leave them hanging until a spawn timeout), flips the
    state to ``restarting``, and reports the loss via ``on_lost``.  The
    *recovery* half (backoff, budget, respawn) lives in the supervisor,
    which calls :meth:`restart` / :meth:`mark_down`.
    """

    def __init__(
        self,
        shard: int,
        path: Path,
        threads: int,
        *,
        worker_module: str = "repro.shard.worker",
        extra_env: Optional[dict] = None,
        socket_wrapper: Optional[Callable] = None,
        on_lost: Optional[Callable] = None,
    ) -> None:
        self.shard = shard
        self.path = path
        self.threads = threads
        self.worker_module = worker_module
        self.extra_env = dict(extra_env) if extra_env else None
        self.socket_wrapper = socket_wrapper
        self.on_lost = on_lost
        self.proc: Optional[subprocess.Popen] = None
        self.sock: Optional[socket.socket] = None
        self.state = RESTARTING  # becomes healthy once start() connects
        self.generation = 0
        self.down_reason: Optional[str] = None
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()  # state + pending map
        self._pending: dict[int, Future] = {}
        self._next_id = 0
        self._reader: Optional[threading.Thread] = None
        self._closed = False

    def start(self) -> None:
        import repro

        env = os.environ.copy()
        package_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        # informative for logs; the chaos harness seeds per-worker rngs
        # from these so injected fault schedules are reproducible
        env["REPRO_SHARD_ID"] = str(self.shard)
        env["REPRO_SHARD_GENERATION"] = str(self.generation)
        if self.extra_env:
            env.update(self.extra_env)
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", self.worker_module, str(self.path),
                "--port", "0", "--threads", str(self.threads),
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        port = self._await_port()
        sock = socket.create_connection(("127.0.0.1", port), timeout=_SPAWN_TIMEOUT)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        if self.socket_wrapper is not None:
            sock = self.socket_wrapper(self.shard, sock)
        self.sock = sock
        with self._lock:
            self.state = HEALTHY
            generation = self.generation
        self._reader = threading.Thread(
            target=self._read_loop, args=(sock, generation), daemon=True
        )
        self._reader.start()

    def _await_port(self) -> int:
        """Read the worker's ``PORT <n>`` announcement, bounded in time."""
        assert self.proc is not None and self.proc.stdout is not None
        deadline = time.monotonic() + _SPAWN_TIMEOUT
        stream = self.proc.stdout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ShardError(
                    f"shard {self.shard} worker did not announce a port "
                    f"within {_SPAWN_TIMEOUT:g}s"
                )
            if self.proc.poll() is not None:
                raise ShardError(
                    f"shard {self.shard} worker exited with code "
                    f"{self.proc.returncode} before announcing a port"
                )
            ready, _, _ = select.select([stream], [], [], min(remaining, 0.25))
            if not ready:
                continue
            line = stream.readline()
            if not line:
                continue
            if line.startswith("PORT "):
                return int(line.split()[1])

    # -- pipelined request/response --------------------------------------

    def call(self, payload: dict) -> Future:
        """Send one frame; the future resolves to the response object.

        Never raises: a send against a closed, restarting, or down shard
        returns a future pre-failed with a typed error, so callers (and
        the retry machinery above them) handle exactly one failure path.
        """
        future: Future = Future()
        with self._lock:
            if self._closed:
                future.set_exception(
                    ShardError(f"shard {self.shard} connection is closed")
                )
                return future
            if self.state != HEALTHY:
                future.set_exception(
                    ShardUnavailableError(
                        self.shard,
                        self.down_reason or f"worker is {self.state}",
                    )
                )
                return future
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = future
            sock = self.sock
        try:
            with self._send_lock:
                send_frame(sock, {"id": request_id, **payload})
        except (OSError, ShardError) as exc:
            with self._lock:
                self._pending.pop(request_id, None)
            if not future.done():
                future.set_exception(
                    ShardUnavailableError(self.shard, f"send failed: {exc}")
                )
        return future

    def _read_loop(self, sock: socket.socket, generation: int) -> None:
        error: Optional[BaseException] = None
        try:
            while True:
                response = recv_frame(sock)
                if response is None:
                    break
                with self._lock:
                    future = self._pending.pop(response.get("id", -1), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (OSError, ShardError) as exc:
            error = exc
        reason = "worker connection lost" + (
            f": {error}" if error is not None else " (EOF)"
        )
        self._connection_lost(generation, reason)

    def _connection_lost(self, generation: int, reason: str) -> None:
        """The detection path: fail in-flight futures *now*, typed.

        Idempotent per generation — the reader thread and a heartbeat
        :meth:`force_lost` may both report the same death; only the first
        transition out of ``healthy`` notifies ``on_lost`` (and thus
        schedules a restart).
        """
        with self._lock:
            if self.generation != generation:
                return  # a stale reader outliving a completed restart
            transitioned = False
            if not self._closed and self.state == HEALTHY:
                self.state = RESTARTING
                transitioned = True
            pending, self._pending = self._pending, {}
        exc = ShardUnavailableError(self.shard, reason)
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)
        if transitioned and self.on_lost is not None:
            self.on_lost(self, reason)

    def force_lost(self, reason: str) -> None:
        """Kill a wedged worker and run the connection-lost path.

        Used by the heartbeat: a worker that stopped answering pings may
        still hold its socket open, so waiting for EOF is not enough.
        """
        if self.proc is not None and self.proc.poll() is None:
            try:
                self.proc.kill()
            except OSError:
                pass
        self._connection_lost(self.generation, reason)

    # -- supervisor-driven recovery --------------------------------------

    def restart(self) -> None:
        """Respawn the worker (supervisor thread only).  Raises on failure."""
        self._teardown_process()
        with self._lock:
            if self._closed:
                raise ShardError(f"shard {self.shard} client is closed")
            self.generation += 1
        self.start()

    def mark_down(self, reason: str) -> None:
        with self._lock:
            if self.state != DOWN:
                self.state = DOWN
                self.down_reason = reason

    def _teardown_process(self) -> None:
        """Make sure the old process is dead before a respawn reuses its
        shard directory (two workers over one WAL would be corruption)."""
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None
        if self.proc is not None:
            if self.proc.poll() is None:
                try:
                    self.proc.kill()
                except OSError:
                    pass
            try:
                self.proc.wait(timeout=_SHUTDOWN_TIMEOUT)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                pass
            for stream in (self.proc.stdin, self.proc.stdout):
                if stream is not None:
                    try:
                        stream.close()
                    except OSError:
                        pass
            self.proc = None

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    ShardUnavailableError(self.shard, "executor is closing")
                )
        # polite shutdown frame first; the stdin EOF and process kill below
        # are the backstops for a wedged worker
        try:
            if self.sock is not None:
                with self._send_lock:
                    send_frame(self.sock, {"id": -1, "op": "shutdown"})
        except (OSError, ShardError):
            pass
        if self.proc is not None and self.proc.stdin is not None:
            try:
                self.proc.stdin.close()
            except OSError:
                pass
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
        if self.proc is not None:
            try:
                self.proc.wait(timeout=_SHUTDOWN_TIMEOUT)
            except subprocess.TimeoutExpired:
                self.proc.terminate()
                try:
                    self.proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    self.proc.kill()
                    self.proc.wait()
            if self.proc.stdout is not None:
                self.proc.stdout.close()


class ShardedExecutor:
    """Scatter-gather query execution over a sharded database directory.

    ``workers`` must equal the manifest's shard count when given (one
    process per shard; change the count with ``repro reshard``).
    ``guard_spec`` is a dict of per-query guard budgets (``deadline_ms``,
    ``max_steps``, ``max_page_reads``) applied worker-side with a fresh
    guard per query; its ``deadline_ms`` also derives the per-RPC
    deadline (plus ``rpc_grace_s``).

    Fault-tolerance knobs (see the module docstring):

    ``supervise``
        restart dead workers per ``restart_policy`` and heartbeat them
        every ``heartbeat_s`` (default on).  With ``supervise=False`` a
        dead worker's shard goes straight to ``down``: in-flight futures
        still fail promptly and typed, but nothing respawns.
    ``partial``
        degrade availability failures to partial results annotated with
        ``missing_shards`` instead of failing the outcome.
    ``hedge_ms``
        duplicate a query call that has not answered after this many
        milliseconds and take the first response.
    ``rpc_retries`` / ``retry_backoff_s``
        bounded retries (with exponential backoff) for idempotent calls
        that hit an availability failure — e.g. a worker that died and
        is being respawned.
    ``rpc_timeout_s``
        the default per-RPC deadline when no query guard supplies one.

    ``worker_module`` / ``worker_env`` / ``socket_wrapper`` are the chaos
    seams: the fault-injection harness in :mod:`repro.testing.chaos`
    swaps the spawned module for a ``FaultyWorker`` and interposes on the
    wire without the production path paying anything for it.

    The executor is a context manager; :meth:`close` shuts every worker
    down and persists the manifest.
    """

    def __init__(
        self,
        dbdir,
        *,
        workers: Optional[int] = None,
        verify: bool = False,
        guard_spec: Optional[dict] = None,
        threads_per_worker: int = 2,
        partial: bool = False,
        hedge_ms: Optional[float] = None,
        rpc_retries: int = 2,
        retry_backoff_s: float = 0.05,
        rpc_timeout_s: Optional[float] = 60.0,
        rpc_grace_s: float = 2.0,
        supervise: bool = True,
        restart_policy: Optional[RestartPolicy] = None,
        heartbeat_s: Optional[float] = 2.0,
        heartbeat_timeout_s: float = 10.0,
        worker_module: str = "repro.shard.worker",
        worker_env: Optional[dict] = None,
        socket_wrapper: Optional[Callable] = None,
    ) -> None:
        self.dbdir = Path(dbdir)
        manifest = read_manifest(self.dbdir)
        nshards = manifest["nshards"]
        if workers is not None and workers != nshards:
            raise ShardError(
                f"{self.dbdir} is sharded {nshards} ways; --workers "
                f"{workers} does not match (run `repro reshard` first)"
            )
        self.nshards = nshards
        self.verify = verify
        self.guard_spec = dict(guard_spec) if guard_spec else None
        self.partial = partial
        self.hedge_ms = hedge_ms
        self.rpc_retries = max(0, rpc_retries)
        self.retry_backoff_s = retry_backoff_s
        self.rpc_timeout_s = rpc_timeout_s
        self.rpc_grace_s = rpc_grace_s
        self.supervise = supervise
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.metrics = MetricsRegistry()
        self.map = ShardMap(nshards, manifest["next_doc_id"])
        self._write_lock = threading.Lock()  # serialises add/remove routing
        self._manifest_dirty = False
        self._closed = False
        self.clients: list[_ShardClient] = []
        self._supervisor = ShardSupervisor(
            restart_fn=self._restart_client,
            policy=restart_policy,
            heartbeat_s=heartbeat_s if supervise else None,
            heartbeat_fn=self._heartbeat if supervise else None,
        )
        try:
            for k in range(nshards):
                client = _ShardClient(
                    k,
                    shard_dir(self.dbdir, k),
                    threads_per_worker,
                    worker_module=worker_module,
                    extra_env=worker_env,
                    socket_wrapper=socket_wrapper,
                    on_lost=self._on_connection_lost,
                )
                client.start()
                self.clients.append(client)
            # supervision is live before the first RPC so even the
            # manifest-recovery stats below survive a worker dying young
            self._supervisor.start()
            bounds = []
            for client in self.clients:
                response = self._call(
                    client,
                    {"op": "stats"},
                    retryable=True,
                    timeout_s=_SPAWN_TIMEOUT,
                ).result(_SPAWN_TIMEOUT + 5.0)
                bound = response.get("id_bound") if response.get("ok") else None
                if not isinstance(bound, int):
                    raise ShardError(
                        f"shard {client.shard} stats carry no id_bound; "
                        "cannot reconcile the manifest"
                    )
                bounds.append(bound)
            if self.map.recover(bounds):
                self._manifest_dirty = True
        except BaseException:
            self.close()
            raise

    # -- supervision plumbing --------------------------------------------

    def _on_connection_lost(self, client: _ShardClient, reason: str) -> None:
        self._shard_counter(client.shard, "losses").inc()
        if self._closed:
            return
        if not self.supervise:
            client.mark_down(f"supervision disabled; {reason}")
            return
        self._supervisor.on_connection_lost(client, reason)

    def _restart_client(self, client: _ShardClient) -> None:
        client.restart()
        self._shard_counter(client.shard, "restarts").inc()

    def _heartbeat(self) -> None:
        """Ping every healthy worker; a miss force-kills and restarts it."""
        for client in self.clients:
            if client.state != HEALTHY:
                continue
            generation = client.generation

            def check(fut: Future, client=client, generation=generation) -> None:
                try:
                    fut.result()
                except BaseException as exc:  # noqa: BLE001 - liveness signal
                    if (
                        client.state == HEALTHY
                        and client.generation == generation
                        and not self._closed
                    ):
                        self._shard_counter(client.shard, "heartbeat_misses").inc()
                        client.force_lost(f"heartbeat failed: {exc}")

            self._call(
                client,
                {"op": "ping"},
                retryable=False,
                timeout_s=self.heartbeat_timeout_s,
            ).add_done_callback(check)

    def _shard_counter(self, shard: int, name: str):
        return self.metrics.counter(f"shard.{shard}.{name}")

    @property
    def healthy(self) -> bool:
        """Every shard's worker is up and connected."""
        return all(client.state == HEALTHY for client in self.clients)

    def shard_states(self) -> dict[int, str]:
        return {client.shard: client.state for client in self.clients}

    def await_healthy(self, timeout_s: float = 30.0) -> bool:
        """Block until all shards are healthy (or the timeout passes)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.healthy:
                return True
            time.sleep(0.02)
        return self.healthy

    # -- resilient per-RPC machinery -------------------------------------

    def _call(
        self,
        client: _ShardClient,
        payload: dict,
        *,
        retryable: bool,
        timeout_s: Optional[float],
        hedge_ms: Optional[float] = None,
    ) -> Future:
        """One logical RPC: deadline + bounded retries + optional hedge.

        The returned future resolves to the worker's response object
        (``ok`` true or false — worker-side typed errors are *answers*,
        not availability failures) or fails with a typed
        :class:`ShardUnavailableError` once retries/deadline are spent.
        Scheduling runs on the supervisor's event loop, so no timer
        threads are spawned per request.
        """
        logical: Future = Future()
        deadline = time.monotonic() + timeout_s if timeout_s is not None else None
        attempts = [0]

        def resolve(response) -> None:
            if not logical.done():
                try:
                    logical.set_result(response)
                except Exception:  # pragma: no cover - hedge race
                    pass

        def fail(exc: BaseException) -> None:
            if not logical.done():
                try:
                    logical.set_exception(exc)
                except Exception:  # pragma: no cover - hedge race
                    pass

        def attempt() -> None:
            if logical.done():
                return
            state = client.state
            if state == DOWN:
                fail(
                    ShardUnavailableError(
                        client.shard, client.down_reason or "shard is down"
                    )
                )
                return
            if state != HEALTHY and retryable and deadline is not None:
                # a restart is in flight: wait it out (without consuming
                # retry budget) as long as the deadline allows
                if time.monotonic() + _RESTART_WAIT_TICK < deadline:
                    self._supervisor.schedule(_RESTART_WAIT_TICK, attempt)
                else:
                    fail(
                        ShardUnavailableError(
                            client.shard, f"worker still {state} at the rpc deadline"
                        )
                    )
                return
            client.call(payload).add_done_callback(on_raw)

        def on_raw(fut: Future) -> None:
            if logical.done():
                return
            try:
                response = fut.result()
            except BaseException as exc:  # noqa: BLE001 - routed below
                on_failure(exc)
                return
            resolve(response)

        def on_failure(exc: BaseException) -> None:
            if logical.done():
                return
            can_retry = (
                retryable
                and isinstance(exc, ShardUnavailableError)
                and attempts[0] < self.rpc_retries
            )
            if can_retry:
                attempts[0] += 1
                delay = self.retry_backoff_s * (2.0 ** (attempts[0] - 1))
                if deadline is None or time.monotonic() + delay < deadline:
                    self._shard_counter(client.shard, "retries").inc()
                    self._supervisor.schedule(delay, attempt)
                    return
            fail(exc)

        def on_deadline() -> None:
            if logical.done():
                return
            self._shard_counter(client.shard, "rpc_timeouts").inc()
            fail(
                ShardUnavailableError(
                    client.shard,
                    f"no response within the {timeout_s:g}s rpc deadline",
                )
            )

        def on_hedge() -> None:
            if logical.done() or client.state != HEALTHY:
                return
            self._shard_counter(client.shard, "hedges").inc()

            def on_hedged(fut: Future) -> None:
                try:
                    response = fut.result()
                except BaseException:  # noqa: BLE001 - primary path decides
                    return
                resolve(response)

            client.call(payload).add_done_callback(on_hedged)

        attempt()
        if deadline is not None:
            self._supervisor.schedule(timeout_s, on_deadline)
        if hedge_ms is not None:
            self._supervisor.schedule(hedge_ms / 1000.0, on_hedge)
        return logical

    def _rpc_deadline_s(self) -> Optional[float]:
        """Per-RPC deadline derived from the query guard, else the default."""
        if self.guard_spec and self.guard_spec.get("deadline_ms") is not None:
            return self.guard_spec["deadline_ms"] / 1000.0 + self.rpc_grace_s
        return self.rpc_timeout_s

    # -- querying --------------------------------------------------------

    def submit(
        self, query: str, position: int = 0, *, verify: Optional[bool] = None
    ) -> "Future[QueryOutcome]":
        """Fan one query out to every shard; resolves to a merged outcome."""
        if self._closed:
            raise ShardError("executor is closed")
        payload = {
            "op": "query",
            "xpath": query,
            "verify": self.verify if verify is None else verify,
        }
        if self.guard_spec:
            payload["guard"] = self.guard_spec
        outcome_future: Future = Future()
        state_lock = threading.Lock()
        results: dict[int, list[int]] = {}
        errors: dict[int, BaseException] = {}
        missing: dict[int, str] = {}
        detail: dict[int, dict] = {}
        remaining = [len(self.clients)]
        t0 = time.perf_counter()
        timeout_s = self._rpc_deadline_s()

        def finish() -> None:
            outcome = QueryOutcome(position=position, query=query)
            outcome.elapsed_ms = (time.perf_counter() - t0) * 1000.0
            outcome.shard_detail = {s: detail[s] for s in sorted(detail)}
            if errors:
                outcome.error = ShardQueryError(errors)
            else:
                merged: list[int] = []
                for s, locals_ in results.items():
                    globals_of = self.map.globals_of(s)
                    merged.extend(globals_of[local] for local in locals_)
                outcome.result = sorted(merged)
                if missing:
                    outcome.missing_shards = sorted(missing)
                    self.metrics.counter("queries.partial").inc()
            outcome_future.set_result(outcome)

        def on_shard(s: int):
            def record_unavailable(exc: BaseException) -> None:
                if self.partial:
                    missing[s] = str(exc)
                    detail[s] = {"status": "missing", "error": str(exc)}
                    self._shard_counter(s, "unavailable").inc()
                else:
                    errors[s] = exc
                    detail[s] = {"status": "error", "error": str(exc)}

            def callback(fut: Future) -> None:
                try:
                    response = fut.result()
                except ShardUnavailableError as exc:
                    with state_lock:
                        record_unavailable(exc)
                except BaseException as exc:  # noqa: BLE001 - captured per shard
                    with state_lock:
                        errors[s] = exc
                        detail[s] = {"status": "error", "error": str(exc)}
                else:
                    with state_lock:
                        if response.get("ok"):
                            results[s] = response.get("result", [])
                            detail[s] = {
                                "status": "ok",
                                "elapsed_ms": response.get("elapsed_ms", 0.0),
                            }
                        else:
                            exc = rehydrate_error(response)
                            if isinstance(exc, ShardUnavailableError):
                                record_unavailable(exc)
                            else:
                                errors[s] = exc
                                detail[s] = {"status": "error", "error": str(exc)}
                with state_lock:
                    remaining[0] -= 1
                    done = remaining[0] == 0
                if done:
                    finish()

            return callback

        for client in self.clients:
            self._call(
                client,
                payload,
                retryable=True,
                timeout_s=timeout_s,
                hedge_ms=self.hedge_ms,
            ).add_done_callback(on_shard(client.shard))
        return outcome_future

    def run(self, queries: Sequence[str]) -> list[QueryOutcome]:
        """Run a batch; outcomes come back in submission order."""
        futures = [self.submit(query, i) for i, query in enumerate(queries)]
        return [future.result() for future in futures]

    # -- routed writes ---------------------------------------------------

    def _write_call(self, shard: int, payload: dict) -> dict:
        """One non-idempotent call: fail fast, never retry, never hang."""
        client = self.clients[shard]
        future = self._call(
            client, payload, retryable=False, timeout_s=self.rpc_timeout_s
        )
        timeout = (self.rpc_timeout_s or _SPAWN_TIMEOUT) + 5.0
        try:
            response = future.result(timeout)
        except TimeoutError as exc:  # pragma: no cover - deadline fires first
            raise ShardUnavailableError(shard, "write rpc stalled") from exc
        if not response.get("ok"):
            raise rehydrate_error(response)
        return response

    def add(self, document) -> int:
        """Route one document (XML text, node, or document) to its shard."""
        from repro.doc.model import XmlDocument, XmlNode

        if isinstance(document, XmlDocument):
            xml = document.root.to_xml()
        elif isinstance(document, XmlNode):
            xml = document.to_xml()
        else:
            xml = str(document)
        with self._write_lock:
            g = self.map.next_doc_id
            from repro.shard.routing import shard_of

            s = shard_of(g, self.nshards, self.map.hash_fn)
            expect_local = len(self.map.globals_of(s))
            self._write_call(
                s, {"op": "add", "xml": xml, "expect_local": expect_local}
            )
            self.map.append_next()
            self._manifest_dirty = True
            return g

    def remove(self, doc_id: int) -> None:
        with self._write_lock:
            s, local = self.map.route(doc_id)
            self._write_call(s, {"op": "remove", "local_id": local})

    # -- observability ---------------------------------------------------

    def supervision_snapshot(self) -> dict:
        """Supervision state + counters, JSON-ready (for stats/explain)."""
        snapshot = self.metrics.snapshot()
        snapshot["states"] = {
            str(client.shard): client.state for client in self.clients
        }
        snapshot["down"] = sorted(
            client.shard for client in self.clients if client.state == DOWN
        )
        snapshot["restarts_in_window"] = {
            str(k): n for k, n in sorted(self._supervisor.restart_counts().items())
        }
        return snapshot

    def stats(self) -> dict:
        """Per-shard metrics snapshots under ``shard.<K>`` keys."""
        futures = [
            (
                client.shard,
                self._call(
                    client,
                    {"op": "stats"},
                    retryable=True,
                    timeout_s=self.rpc_timeout_s,
                ),
            )
            for client in self.clients
        ]
        shards: dict[str, object] = {}
        for s, future in futures:
            try:
                response = future.result(_SPAWN_TIMEOUT)
            except BaseException as exc:  # noqa: BLE001 - reported inline
                shards[str(s)] = f"<error: {exc}>"
                continue
            shards[str(s)] = (
                response.get("snapshot")
                if response.get("ok")
                else f"<error: {response.get('error')}>"
            )
        return {
            "shard": shards,
            "routing": {
                "nshards": self.nshards,
                "next_doc_id": self.map.next_doc_id,
                "routed": self.map.shard_counts(),
            },
            "supervision": self.supervision_snapshot(),
        }

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._supervisor.stop()
        for client in self.clients:
            try:
                client.close()
            except Exception:
                pass
        if self._manifest_dirty:
            write_manifest(self.dbdir, self.nshards, self.map.next_doc_id)

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
