"""ShardedExecutor: scatter-gather queries over per-shard worker processes.

The process-parallel counterpart of :class:`~repro.exec.QueryExecutor`:
one worker **process** per shard (spawned as ``python -m
repro.shard.worker``, each holding its shard's index open with its own
pager/WAL and answering over a loopback socket), a demultiplexing reader
thread per connection, and request pipelining — any number of client
threads can have queries in flight against every shard at once, which is
what actually breaks the GIL wall: the matching work runs in N
interpreters.

Every submitted query is fanned out to *all* shards and the per-shard
answers (local doc ids) are mapped through the
:class:`~repro.shard.routing.ShardMap` back to global ids and merged —
an exact union, because membership is a per-document decision.  Failures
are captured per outcome: a shard that times out, hits corruption, or
dies poisons that :class:`~repro.exec.executor.QueryOutcome` with a
:class:`~repro.errors.ShardQueryError` naming the shard(s); the executor
and the surviving shards keep serving.

Writes route: :meth:`add` assigns the next global id, computes its shard
by the stable hash, and ships the document to exactly that worker (the
worker asserts the expected local id, so router/worker layout drift is
loud).  The manifest is re-written on :meth:`close`; a crash in between
is absorbed by :meth:`ShardMap.recover` on the next open.
"""

from __future__ import annotations

import os
import select
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import ShardError, ShardQueryError
from repro.exec.executor import QueryOutcome
from repro.shard.protocol import recv_frame, rehydrate_error, send_frame
from repro.shard.routing import ShardMap, read_manifest, shard_dir, write_manifest

__all__ = ["ShardedExecutor"]

_SPAWN_TIMEOUT = 30.0
_SHUTDOWN_TIMEOUT = 10.0


class _ShardClient:
    """One worker process + its connection: spawn, pipeline, demux."""

    def __init__(self, shard: int, path: Path, threads: int) -> None:
        self.shard = shard
        self.path = path
        self.threads = threads
        self.proc: Optional[subprocess.Popen] = None
        self.sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._next_id = 0
        self._reader: Optional[threading.Thread] = None
        self._closed = False

    def start(self) -> None:
        import repro

        env = os.environ.copy()
        package_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.shard.worker", str(self.path),
                "--port", "0", "--threads", str(self.threads),
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        port = self._await_port()
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=_SPAWN_TIMEOUT)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock.settimeout(None)
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()

    def _await_port(self) -> int:
        """Read the worker's ``PORT <n>`` announcement, bounded in time."""
        assert self.proc is not None and self.proc.stdout is not None
        deadline = time.monotonic() + _SPAWN_TIMEOUT
        stream = self.proc.stdout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ShardError(
                    f"shard {self.shard} worker did not announce a port "
                    f"within {_SPAWN_TIMEOUT:g}s"
                )
            if self.proc.poll() is not None:
                raise ShardError(
                    f"shard {self.shard} worker exited with code "
                    f"{self.proc.returncode} before announcing a port"
                )
            ready, _, _ = select.select([stream], [], [], min(remaining, 0.25))
            if not ready:
                continue
            line = stream.readline()
            if not line:
                continue
            if line.startswith("PORT "):
                return int(line.split()[1])

    # -- pipelined request/response --------------------------------------

    def call(self, payload: dict) -> Future:
        """Send one frame; the future resolves to the response object."""
        future: Future = Future()
        with self._pending_lock:
            if self._closed:
                raise ShardError(f"shard {self.shard} connection is closed")
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = future
        try:
            with self._send_lock:
                send_frame(self.sock, {"id": request_id, **payload})
        except (OSError, ShardError) as exc:
            with self._pending_lock:
                self._pending.pop(request_id, None)
            future.set_exception(
                ShardError(f"shard {self.shard} send failed: {exc}")
            )
        return future

    def _read_loop(self) -> None:
        error: Optional[BaseException] = None
        try:
            while True:
                response = recv_frame(self.sock)
                if response is None:
                    break
                with self._pending_lock:
                    future = self._pending.pop(response.get("id", -1), None)
                if future is not None:
                    future.set_result(response)
        except (OSError, ShardError) as exc:
            error = exc
        # connection is gone: every in-flight request fails, loudly
        with self._pending_lock:
            pending, self._pending = self._pending, {}
        for future in pending.values():
            future.set_exception(
                ShardError(
                    f"shard {self.shard} worker connection lost"
                    + (f": {error}" if error is not None else "")
                )
            )

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        with self._pending_lock:
            self._closed = True
        # polite shutdown frame first; the stdin EOF and process kill below
        # are the backstops for a wedged worker
        try:
            if self.sock is not None:
                with self._send_lock:
                    send_frame(self.sock, {"id": -1, "op": "shutdown"})
        except (OSError, ShardError):
            pass
        if self.proc is not None and self.proc.stdin is not None:
            try:
                self.proc.stdin.close()
            except OSError:
                pass
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
        if self.proc is not None:
            try:
                self.proc.wait(timeout=_SHUTDOWN_TIMEOUT)
            except subprocess.TimeoutExpired:
                self.proc.terminate()
                try:
                    self.proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    self.proc.kill()
                    self.proc.wait()
            if self.proc.stdout is not None:
                self.proc.stdout.close()


class ShardedExecutor:
    """Scatter-gather query execution over a sharded database directory.

    ``workers`` must equal the manifest's shard count when given (one
    process per shard; change the count with ``repro reshard``).
    ``guard_spec`` is a dict of per-query guard budgets (``deadline_ms``,
    ``max_steps``, ``max_page_reads``) applied worker-side with a fresh
    guard per query.  The executor is a context manager; :meth:`close`
    shuts every worker down and persists the manifest.
    """

    def __init__(
        self,
        dbdir,
        *,
        workers: Optional[int] = None,
        verify: bool = False,
        guard_spec: Optional[dict] = None,
        threads_per_worker: int = 2,
    ) -> None:
        self.dbdir = Path(dbdir)
        manifest = read_manifest(self.dbdir)
        nshards = manifest["nshards"]
        if workers is not None and workers != nshards:
            raise ShardError(
                f"{self.dbdir} is sharded {nshards} ways; --workers "
                f"{workers} does not match (run `repro reshard` first)"
            )
        self.nshards = nshards
        self.verify = verify
        self.guard_spec = dict(guard_spec) if guard_spec else None
        self.map = ShardMap(nshards, manifest["next_doc_id"])
        self._write_lock = threading.Lock()  # serialises add/remove routing
        self._manifest_dirty = False
        self._closed = False
        self.clients: list[_ShardClient] = []
        try:
            for k in range(nshards):
                client = _ShardClient(k, shard_dir(self.dbdir, k), threads_per_worker)
                client.start()
                self.clients.append(client)
            # recover a manifest the last writer didn't get to persist
            bounds = []
            for client in self.clients:
                response = client.call({"op": "stats"}).result(_SPAWN_TIMEOUT)
                bound = response.get("id_bound") if response.get("ok") else None
                if not isinstance(bound, int):
                    raise ShardError(
                        f"shard {client.shard} stats carry no id_bound; "
                        "cannot reconcile the manifest"
                    )
                bounds.append(bound)
            if self.map.recover(bounds):
                self._manifest_dirty = True
        except BaseException:
            self.close()
            raise

    # -- querying --------------------------------------------------------

    def submit(
        self, query: str, position: int = 0, *, verify: Optional[bool] = None
    ) -> "Future[QueryOutcome]":
        """Fan one query out to every shard; resolves to a merged outcome."""
        if self._closed:
            raise ShardError("executor is closed")
        payload = {
            "op": "query",
            "xpath": query,
            "verify": self.verify if verify is None else verify,
        }
        if self.guard_spec:
            payload["guard"] = self.guard_spec
        outcome_future: Future = Future()
        state_lock = threading.Lock()
        results: dict[int, list[int]] = {}
        errors: dict[int, BaseException] = {}
        elapsed: dict[int, float] = {}
        remaining = [len(self.clients)]
        t0 = time.perf_counter()

        def finish() -> None:
            outcome = QueryOutcome(position=position, query=query)
            outcome.elapsed_ms = (time.perf_counter() - t0) * 1000.0
            if errors:
                outcome.error = ShardQueryError(errors)
            else:
                merged: list[int] = []
                for s, locals_ in results.items():
                    globals_of = self.map.globals_of(s)
                    merged.extend(globals_of[local] for local in locals_)
                outcome.result = sorted(merged)
            outcome_future.set_result(outcome)

        def on_shard(s: int):
            def callback(fut: Future) -> None:
                try:
                    response = fut.result()
                except BaseException as exc:  # connection-level failure
                    with state_lock:
                        errors[s] = exc
                else:
                    with state_lock:
                        if response.get("ok"):
                            results[s] = response.get("result", [])
                            elapsed[s] = response.get("elapsed_ms", 0.0)
                        else:
                            errors[s] = rehydrate_error(response)
                with state_lock:
                    remaining[0] -= 1
                    done = remaining[0] == 0
                if done:
                    finish()

            return callback

        for client in self.clients:
            client.call(payload).add_done_callback(on_shard(client.shard))
        return outcome_future

    def run(self, queries: Sequence[str]) -> list[QueryOutcome]:
        """Run a batch; outcomes come back in submission order."""
        futures = [self.submit(query, i) for i, query in enumerate(queries)]
        return [future.result() for future in futures]

    # -- routed writes ---------------------------------------------------

    def add(self, document) -> int:
        """Route one document (XML text, node, or document) to its shard."""
        from repro.doc.model import XmlDocument, XmlNode

        if isinstance(document, XmlDocument):
            xml = document.root.to_xml()
        elif isinstance(document, XmlNode):
            xml = document.to_xml()
        else:
            xml = str(document)
        with self._write_lock:
            g = self.map.next_doc_id
            from repro.shard.routing import shard_of

            s = shard_of(g, self.nshards, self.map.hash_fn)
            expect_local = len(self.map.globals_of(s))
            response = self.clients[s].call(
                {"op": "add", "xml": xml, "expect_local": expect_local}
            ).result()
            if not response.get("ok"):
                raise rehydrate_error(response)
            self.map.append_next()
            self._manifest_dirty = True
            return g

    def remove(self, doc_id: int) -> None:
        with self._write_lock:
            s, local = self.map.route(doc_id)
            response = self.clients[s].call(
                {"op": "remove", "local_id": local}
            ).result()
            if not response.get("ok"):
                raise rehydrate_error(response)

    # -- observability ---------------------------------------------------

    def stats(self) -> dict:
        """Per-shard metrics snapshots under ``shard.<K>`` keys."""
        futures = [
            (client.shard, client.call({"op": "stats"})) for client in self.clients
        ]
        shards: dict[str, object] = {}
        for s, future in futures:
            try:
                response = future.result(_SPAWN_TIMEOUT)
            except BaseException as exc:  # noqa: BLE001 - reported inline
                shards[str(s)] = f"<error: {exc}>"
                continue
            shards[str(s)] = (
                response.get("snapshot")
                if response.get("ok")
                else f"<error: {response.get('error')}>"
            )
        return {
            "shard": shards,
            "routing": {
                "nshards": self.nshards,
                "next_doc_id": self.map.next_doc_id,
                "routed": self.map.shard_counts(),
            },
        }

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for client in self.clients:
            try:
                client.close()
            except Exception:
                pass
        if self._manifest_dirty:
            write_manifest(self.dbdir, self.nshards, self.map.next_doc_id)

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
