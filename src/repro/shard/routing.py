"""Document routing: the stable hash, the manifest, and the id map.

**Routing rule.**  Global document ids are assigned by a monotonic
counter (``next_doc_id`` in the manifest) and never reused; the shard of
a document is a *stable* hash of its global id — ``crc32`` of the 8-byte
little-endian id, modulo the shard count — so the placement of every
document is a pure function of ``(doc_id, nshards)``.  No per-document
routing state is ever persisted.

**The id map is derivable.**  Adds flow through the router in global-id
order and removals tombstone (both the per-shard docstores and the
source stores preserve positional ids), so the *local* id of global id
``g`` inside its shard is simply the rank of ``g`` among all global ids
that hash to that shard.  :class:`ShardMap` recomputes the full
bidirectional map from nothing but ``(nshards, next_doc_id)`` — one
linear pass at open time — and both the embedded
:class:`~repro.shard.router.ShardRouter` and the process-backed
:class:`~repro.shard.executor.ShardedExecutor` share it.

**Crash recovery.**  The manifest is written *after* the shard stores,
so a crash can leave it behind reality (never ahead).  ``recover``
advances ``next_doc_id`` while some shard's docstore holds more slots
than the map accounts for; any other disagreement is a layout drift the
map refuses to paper over.
"""

from __future__ import annotations

import json
import os
from binascii import crc32
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.errors import IndexStateError

__all__ = [
    "MANIFEST_FILE",
    "SHARD_DIR_FMT",
    "ShardMap",
    "is_sharded",
    "read_manifest",
    "shard_dir",
    "shard_of",
    "write_manifest",
]

MANIFEST_FILE = "shards.json"
SHARD_DIR_FMT = "shard-{}"
_MANIFEST_VERSION = 1

HashFn = Callable[[int], int]


def shard_of(doc_id: int, nshards: int, hash_fn: Optional[HashFn] = None) -> int:
    """The shard holding ``doc_id`` — stable across processes and runs.

    ``hash()`` is salted per process and useless here; crc32 over the
    8-byte little-endian id gives the same answer everywhere.  Tests pass
    a custom ``hash_fn`` to force skew (e.g. every document on shard 0).
    """
    if nshards < 1:
        raise IndexStateError(f"nshards must be >= 1, got {nshards}")
    h = hash_fn(doc_id) if hash_fn is not None else crc32(doc_id.to_bytes(8, "little"))
    return h % nshards


def shard_dir(dbdir: Path, shard: int) -> Path:
    return Path(dbdir) / SHARD_DIR_FMT.format(shard)


def is_sharded(dbdir) -> bool:
    """Whether ``dbdir`` is a sharded database directory (has a manifest)."""
    return (Path(dbdir) / MANIFEST_FILE).exists()


def read_manifest(dbdir) -> dict:
    path = Path(dbdir) / MANIFEST_FILE
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexStateError(f"{path}: unreadable shard manifest: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("version") != _MANIFEST_VERSION:
        raise IndexStateError(
            f"{path}: unsupported shard manifest {manifest.get('version')!r}"
        )
    nshards = manifest.get("nshards")
    next_doc_id = manifest.get("next_doc_id")
    if not isinstance(nshards, int) or nshards < 1:
        raise IndexStateError(f"{path}: bad nshards {nshards!r}")
    if not isinstance(next_doc_id, int) or next_doc_id < 0:
        raise IndexStateError(f"{path}: bad next_doc_id {next_doc_id!r}")
    return manifest


def write_manifest(dbdir, nshards: int, next_doc_id: int) -> None:
    """Atomically persist the manifest (side file + ``os.replace``)."""
    path = Path(dbdir) / MANIFEST_FILE
    side = path.with_suffix(".json.tmp")
    side.write_text(
        json.dumps(
            {
                "version": _MANIFEST_VERSION,
                "nshards": nshards,
                "next_doc_id": next_doc_id,
            },
            indent=2,
        )
        + "\n"
    )
    os.replace(side, path)


class ShardMap:
    """Bidirectional global↔local document-id map for one shard layout.

    Built by replaying the routing rule over ``range(next_doc_id)``;
    holds, per shard, the ordered list of global ids routed there (the
    list index *is* the local id) plus the inverse dict.  Removals never
    touch the map — tombstones keep local ids positional.
    """

    def __init__(
        self,
        nshards: int,
        next_doc_id: int = 0,
        *,
        hash_fn: Optional[HashFn] = None,
    ) -> None:
        if nshards < 1:
            raise IndexStateError(f"nshards must be >= 1, got {nshards}")
        self.nshards = nshards
        self.next_doc_id = 0
        self.hash_fn = hash_fn
        self._locals: list[list[int]] = [[] for _ in range(nshards)]
        self._route: dict[int, tuple[int, int]] = {}
        for _ in range(next_doc_id):
            self.append_next()

    def append_next(self) -> tuple[int, int, int]:
        """Assign the next global id; returns ``(global, shard, local)``."""
        g = self.next_doc_id
        s = shard_of(g, self.nshards, self.hash_fn)
        local = len(self._locals[s])
        self._locals[s].append(g)
        self._route[g] = (s, local)
        self.next_doc_id = g + 1
        return g, s, local

    def route(self, doc_id: int) -> tuple[int, int]:
        """``(shard, local_id)`` of a global id ever assigned."""
        try:
            return self._route[doc_id]
        except KeyError:
            raise IndexStateError(
                f"doc id {doc_id} was never assigned "
                f"(next_doc_id is {self.next_doc_id})"
            ) from None

    def global_of(self, shard: int, local_id: int) -> int:
        """The global id sitting at ``local_id`` inside ``shard``."""
        try:
            return self._locals[shard][local_id]
        except IndexError:
            raise IndexStateError(
                f"shard {shard} has no local id {local_id} "
                f"({len(self._locals[shard])} routed)"
            ) from None

    def globals_of(self, shard: int) -> Sequence[int]:
        return self._locals[shard]

    def shard_counts(self) -> list[int]:
        """Documents ever routed to each shard (tombstones included)."""
        return [len(locals_) for locals_ in self._locals]

    def recover(self, shard_id_bounds: Sequence[int]) -> int:
        """Reconcile with the shards' actual docstore ``id_bound`` values.

        A crash between a shard-store add and the manifest write leaves
        ``next_doc_id`` stale; replaying the routing rule forward absorbs
        exactly those documents.  Returns how many ids were recovered.
        Any state the replay cannot explain — a shard holding *fewer*
        slots than the map routed to it, or extra slots the forward
        replay never reaches — raises :class:`IndexStateError` instead of
        guessing.
        """
        if len(shard_id_bounds) != self.nshards:
            raise IndexStateError(
                f"manifest says {self.nshards} shard(s) but "
                f"{len(shard_id_bounds)} were found on disk"
            )
        for s, bound in enumerate(shard_id_bounds):
            if len(self._locals[s]) > bound:
                raise IndexStateError(
                    f"shard {s} holds {bound} document slot(s) but the "
                    f"manifest routed {len(self._locals[s])} there — the "
                    "shard files and the manifest have diverged"
                )
        recovered = 0
        while any(
            len(self._locals[s]) < bound
            for s, bound in enumerate(shard_id_bounds)
        ):
            s = shard_of(self.next_doc_id, self.nshards, self.hash_fn)
            if len(self._locals[s]) >= shard_id_bounds[s]:
                lagging = [
                    k
                    for k, bound in enumerate(shard_id_bounds)
                    if len(self._locals[k]) < bound
                ]
                raise IndexStateError(
                    f"cannot recover shard layout: next doc id "
                    f"{self.next_doc_id} routes to shard {s} (already full) "
                    f"while shard(s) {lagging} hold unexplained documents"
                )
            self.append_next()
            recovered += 1
        return recovered
