"""ShardRouter: the embedded (in-process) view of a sharded directory.

A sharded database directory holds a manifest plus one *complete* index
directory per shard::

    DBDIR/
      shards.json          # {"version": 1, "nshards": N, "next_doc_id": M}
      schema.dtd           # optional, copied into every shard
      shard-0/  vist.db  vist.db.wal  docs.dat  sources.dat  schema.dtd
      shard-1/  ...

Each shard is opened exactly like a single-directory database
(:func:`repro.cli.open_index`): its own pager, WAL, buffer pool,
docstore and source store.  The router owns add/remove routing (global
id → stable hash → shard, see :mod:`repro.shard.routing`), answers
queries by a *sequential* scatter over the open shards (the
process-parallel path is :class:`~repro.shard.executor.ShardedExecutor`),
and implements ``repro reshard`` — rebuilding the directory under a new
shard count while preserving every global id and every answer.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from repro.doc.model import XmlDocument, XmlNode
from repro.errors import IndexStateError
from repro.obs.metrics import MetricsRegistry
from repro.shard.routing import (
    MANIFEST_FILE,
    HashFn,
    ShardMap,
    is_sharded,
    read_manifest,
    shard_dir,
    write_manifest,
)

__all__ = ["ShardRouter", "reshard_db"]

_SCHEMA_FILE = "schema.dtd"


def _open_shard(path: Path, wal: bool = False):
    from repro.cli import open_index

    return open_index(path, wal=wal)


def _close_shard(index) -> None:
    from repro.cli import _close_index

    _close_index(index)


class ShardRouter:
    """Open (or create) a sharded database directory in-process.

    ``nshards`` is required when creating, must match the manifest (or be
    ``None``) when opening.  ``hash_fn`` overrides the stable routing
    hash — test-only, for forcing placement (it is *not* persisted, so a
    directory written with a custom hash must be reopened with it).
    """

    def __init__(
        self,
        dbdir,
        nshards: Optional[int] = None,
        *,
        schema_path: Optional[Path] = None,
        hash_fn: Optional[HashFn] = None,
        wal: bool = False,
    ) -> None:
        self.dbdir = Path(dbdir)
        self._wal = wal
        if is_sharded(self.dbdir):
            manifest = read_manifest(self.dbdir)
            if nshards is not None and nshards != manifest["nshards"]:
                raise IndexStateError(
                    f"{self.dbdir} is sharded {manifest['nshards']} ways; "
                    f"got nshards={nshards} (use `repro reshard` to change)"
                )
            self.nshards = manifest["nshards"]
            next_doc_id = manifest["next_doc_id"]
        else:
            if nshards is None:
                raise IndexStateError(
                    f"{self.dbdir} has no {MANIFEST_FILE}; pass nshards to "
                    "create a sharded database"
                )
            self.nshards = nshards
            next_doc_id = 0
            self.dbdir.mkdir(parents=True, exist_ok=True)
            if schema_path is not None:
                (self.dbdir / _SCHEMA_FILE).write_text(schema_path.read_text())
        self.map = ShardMap(self.nshards, next_doc_id, hash_fn=hash_fn)
        schema_text = None
        top_schema = self.dbdir / _SCHEMA_FILE
        if top_schema.exists():
            schema_text = top_schema.read_text()
        self.shards = []
        for k in range(self.nshards):
            path = shard_dir(self.dbdir, k)
            path.mkdir(parents=True, exist_ok=True)
            if schema_text is not None and not (path / _SCHEMA_FILE).exists():
                (path / _SCHEMA_FILE).write_text(schema_text)
            self.shards.append(_open_shard(path, self._wal))
        # a crash may have left the manifest behind the shard stores;
        # replay the routing rule forward until the map explains them
        recovered = self.map.recover(
            [shard.docstore.id_bound for shard in self.shards]
        )
        self._closed = False
        if recovered or not is_sharded(self.dbdir):
            self._write_manifest()
        # per-shard registries aggregated under shard.K.* dotted names
        self.metrics = MetricsRegistry()
        for k, shard in enumerate(self.shards):
            self.metrics.register(f"shard.{k}", shard.metrics)
        self.metrics.register("routing", self._routing_report)

    # -- routing ---------------------------------------------------------

    def _routing_report(self) -> dict:
        live = [0] * self.nshards
        for k, shard in enumerate(self.shards):
            live[k] = len(shard.docstore)
        return {
            "nshards": self.nshards,
            "next_doc_id": self.map.next_doc_id,
            "routed": self.map.shard_counts(),
            "live": live,
        }

    def _write_manifest(self) -> None:
        write_manifest(self.dbdir, self.nshards, self.map.next_doc_id)

    def shard_dirs(self) -> list[Path]:
        return [shard_dir(self.dbdir, k) for k in range(self.nshards)]

    # -- ingestion -------------------------------------------------------

    def add(self, document: Union[XmlDocument, XmlNode]) -> int:
        """Route one document to its shard; returns its *global* id."""
        from repro.shard.routing import shard_of

        self._ensure_open()
        g = self.map.next_doc_id  # peek: only commit the id if the add lands
        s = shard_of(g, self.nshards, self.map.hash_fn)
        expect_local = len(self.map.globals_of(s))
        local = self.shards[s].add(document)
        if local != expect_local:
            raise IndexStateError(
                f"shard {s} assigned local id {local} to global {g} "
                f"(expected {expect_local}); the shard was mutated outside "
                "the router"
            )
        g2, s2, l2 = self.map.append_next()
        assert (g2, s2, l2) == (g, s, expect_local)
        return g

    def add_all(self, documents: Iterable[Union[XmlDocument, XmlNode]]) -> list[int]:
        return self.add_batch(documents, durability="none")

    def add_batch(
        self,
        documents: Iterable[Union[XmlDocument, XmlNode]],
        *,
        batch_size: int = 1000,
        durability: str = "batch",
    ) -> list[int]:
        """Bulk-route documents: one shard-level batch per chunk and shard.

        Each chunk of ``batch_size`` documents is planned against the
        routing map (global id → shard) without advancing it, grouped by
        shard, and handed to each shard's
        :meth:`~repro.index.base.XmlIndexBase.add_batch` as one group.
        The map advances and the manifest is rewritten only once the
        whole chunk landed, so a process crash between chunks recovers
        cleanly by forward replay.

        If a chunk dies *between shards* (one shard landed its group,
        another did not), the planned global ids that never landed are
        burned as positional tombstones and the map advanced over the
        whole plan — the only layout :class:`ShardMap.recover` can
        explain.  The raised error names the burned ids; the documents
        they stood for must be re-submitted (under fresh ids).
        """
        from itertools import islice

        self._ensure_open()
        if durability not in ("batch", "none"):
            raise IndexStateError(
                f"unknown durability mode {durability!r} (use 'batch' or 'none')"
            )
        if batch_size < 1:
            raise IndexStateError(f"batch_size must be >= 1, got {batch_size}")
        doc_ids: list[int] = []
        it = iter(documents)
        while True:
            chunk = list(islice(it, batch_size))
            if not chunk:
                return doc_ids
            doc_ids.extend(self._add_chunk(chunk, durability))

    def _add_chunk(self, chunk: list, durability: str) -> list[int]:
        from repro.shard.routing import shard_of

        base = self.map.next_doc_id
        plan = [
            (base + i, shard_of(base + i, self.nshards, self.map.hash_fn))
            for i in range(len(chunk))
        ]
        groups: dict[int, list] = {}
        for (_, s), doc in zip(plan, chunk):
            groups.setdefault(s, []).append(doc)
        pre_bound = {s: self.shards[s].docstore.id_bound for s in groups}
        try:
            for s, docs in groups.items():  # insertion order = global order
                start = len(self.map.globals_of(s))
                locals_ = self.shards[s].add_batch(
                    docs, batch_size=len(docs), durability=durability
                )
                if locals_ != list(range(start, start + len(docs))):
                    raise IndexStateError(
                        f"shard {s} assigned local ids starting at "
                        f"{locals_[0] if locals_ else '?'} (expected {start}); "
                        "the shard was mutated outside the router"
                    )
        except BaseException as exc:
            burned = self._repair_partial_chunk(plan, pre_bound, durability)
            raise IndexStateError(
                f"bulk chunk failed after partially landing; {len(burned)} "
                f"planned global id(s) tombstoned to keep the layout "
                f"recoverable: {burned[:10]}{'...' if len(burned) > 10 else ''}"
            ) from exc
        for g, s in plan:
            g2, s2, _ = self.map.append_next()
            assert (g2, s2) == (g, s)
        self._write_manifest()
        return [g for g, _ in plan]

    def _repair_partial_chunk(
        self, plan: list[tuple[int, int]], pre_bound: dict[int, int], durability: str
    ) -> list[int]:
        """A chunk died between shards: burn the ids that never landed.

        Per-shard landed counts (docstore id-bound deltas) consume the
        plan in global order; every remaining planned id is written as a
        positional tombstone (the :func:`reshard_db` idiom — an empty
        record appended then removed, in both stores).  The map then
        advances over the whole plan: any other layout would leave a
        later-global-id document explainable only by skipping an earlier
        one, which :meth:`ShardMap.recover` rightly refuses.
        """
        landed = {
            s: max(0, self.shards[s].docstore.id_bound - pre_bound[s])
            for s in pre_bound
        }
        burned: list[int] = []
        for g, s in plan:
            if landed.get(s, 0) > 0:
                landed[s] -= 1
            else:
                shard = self.shards[s]
                local = shard.docstore.add(b"")
                shard.docstore.remove(local)
                if shard.source_store is not None:
                    sid = shard.source_store.add(b"")
                    shard.source_store.remove(sid)
                burned.append(g)
            g2, s2, _ = self.map.append_next()
            assert (g2, s2) == (g, s)
        if durability == "batch":
            for s in pre_bound:
                try:
                    self.shards[s].flush()
                except Exception:
                    pass  # the original failure is the one to surface
        self._write_manifest()
        return burned

    def remove(self, doc_id: int) -> None:
        """Tombstone a document in its shard; global ids are never reused."""
        self._ensure_open()
        s, local = self.map.route(doc_id)
        self.shards[s].remove(local)

    # -- querying --------------------------------------------------------

    def query(self, query, *, verify: bool = False, guard_factory=None) -> list[int]:
        """Sequential scatter-gather: the union of per-shard answers.

        Each shard evaluates independently (its own guard when
        ``guard_factory`` is given) and local ids are mapped back to
        global ids; the union is exact because membership is a
        per-document decision.  Errors propagate — the fault-isolating
        path is the process-backed executor.
        """
        self._ensure_open()
        out: list[int] = []
        for s, shard in enumerate(self.shards):
            guard = guard_factory() if guard_factory is not None else None
            locals_ = shard.query(query, verify=verify, guard=guard)
            globals_of = self.map.globals_of(s)
            out.extend(globals_of[local] for local in locals_)
        return sorted(out)

    def query_nodes(self, query) -> dict[int, list[int]]:
        """Node-granularity scatter: global doc id → matched positions."""
        self._ensure_open()
        out: dict[int, list[int]] = {}
        for s, shard in enumerate(self.shards):
            globals_of = self.map.globals_of(s)
            for local, positions in shard.query_nodes(query).items():
                out[globals_of[local]] = positions
        return out

    # -- document access -------------------------------------------------

    def doc_ids(self) -> Iterator[int]:
        """Live global ids, ascending."""
        for g in range(self.map.next_doc_id):
            s, local = self.map.route(g)
            if local in self.shards[s].docstore:
                yield g

    def __len__(self) -> int:
        return sum(len(shard.docstore) for shard in self.shards)

    def load_sequence(self, doc_id: int):
        s, local = self.map.route(doc_id)
        return self.shards[s].load_sequence(local)

    def get_document(self, doc_id: int):
        s, local = self.map.route(doc_id)
        return self.shards[s].get_document(local)

    # -- lifecycle -------------------------------------------------------

    def flush(self) -> None:
        self._ensure_open()
        for shard in self.shards:
            shard.flush()
        self._write_manifest()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        errors = []
        for shard in self.shards:
            try:
                _close_shard(shard)
            except Exception as exc:  # close every shard before raising
                errors.append(exc)
        self._write_manifest()
        if errors:
            raise errors[0]

    def _ensure_open(self) -> None:
        if self._closed:
            raise IndexStateError("router is closed")

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def reshard_db(
    dbdir,
    new_nshards: int,
    *,
    hash_fn: Optional[HashFn] = None,
) -> dict:
    """Rebalance ``dbdir`` to ``new_nshards`` shards, preserving global ids.

    Every global id ever assigned is replayed into a fresh layout built
    under ``DBDIR/reshard.tmp`` — live documents re-inserted (sequence
    and stored source), removed ids tombstoned positionally — so the
    derivable id map stays exact under the new shard count.  The fresh
    shards must pass every structural invariant before they atomically
    replace the old directories.  Returns a small report dict.
    """
    from repro.testing.invariants import assert_invariants

    if new_nshards < 1:
        raise IndexStateError(f"new_nshards must be >= 1, got {new_nshards}")
    dbdir = Path(dbdir)
    old = ShardRouter(dbdir, hash_fn=hash_fn)
    tmp_root = dbdir / "reshard.tmp"
    if tmp_root.exists():
        shutil.rmtree(tmp_root)  # leftovers of an interrupted reshard
    tmp_root.mkdir()
    report = {"old_nshards": old.nshards, "new_nshards": new_nshards,
              "documents": 0, "tombstones": 0}
    schema_text = None
    top_schema = dbdir / _SCHEMA_FILE
    if top_schema.exists():
        schema_text = top_schema.read_text()
    new_map = ShardMap(new_nshards, hash_fn=hash_fn)
    new_shards = []
    for k in range(new_nshards):
        path = tmp_root / f"shard-{k}"
        path.mkdir()
        if schema_text is not None:
            (path / _SCHEMA_FILE).write_text(schema_text)
        new_shards.append(_open_shard(path))
    try:
        for g in range(old.map.next_doc_id):
            g2, s, expect_local = new_map.append_next()
            assert g2 == g
            target = new_shards[s]
            old_s, old_local = old.map.route(g)
            old_shard = old.shards[old_s]
            if old_local in old_shard.docstore:
                local = target.add_sequence(old_shard.load_sequence(old_local))
                source = None
                if (
                    old_shard.source_store is not None
                    and old_local in old_shard.source_store
                ):
                    source = old_shard.source_store.get(old_local)
                if target.source_store is not None:
                    sid = target.source_store.add(source if source is not None else b"")
                    if source is None:
                        target.source_store.remove(sid)
                    if sid != expect_local:
                        raise IndexStateError(
                            f"reshard source-id drift: global {g} landed at "
                            f"source slot {sid}, expected {expect_local}"
                        )
                report["documents"] += 1
            else:
                # burn the id positionally in both stores
                local = target.docstore.add(b"")
                target.docstore.remove(local)
                if target.source_store is not None:
                    sid = target.source_store.add(b"")
                    target.source_store.remove(sid)
                report["tombstones"] += 1
            if local != expect_local:
                raise IndexStateError(
                    f"reshard id drift: global {g} landed at local {local}, "
                    f"expected {expect_local}; aborting before replacing anything"
                )
        for shard in new_shards:
            assert_invariants(shard)
            shard.flush()
    finally:
        for shard in new_shards:
            try:
                _close_shard(shard)
            except Exception:
                pass
        next_doc_id = old.map.next_doc_id
        old.close()
    # promote: move the old shard dirs aside, the new ones in, then drop
    # the old.  The manifest is rewritten only after the swap succeeds.
    old_root = dbdir / "reshard.old"
    if old_root.exists():
        shutil.rmtree(old_root)
    old_root.mkdir()
    for k in range(report["old_nshards"]):
        os.replace(shard_dir(dbdir, k), old_root / f"shard-{k}")
    for k in range(new_nshards):
        os.replace(tmp_root / f"shard-{k}", shard_dir(dbdir, k))
    write_manifest(dbdir, new_nshards, next_doc_id)
    shutil.rmtree(old_root)
    tmp_root.rmdir()
    return report
