"""Sharded multi-process serving (docs/INTERNALS.md section 12).

ViST's DocId-labeled postings make hash-sharding by document trivially
correct: every query answer is a per-document decision, so the union of
per-shard result sets *is* the exact global answer.  This package
partitions documents across N full index directories
(``DBDIR/shard-K/``), each with its own pager/WAL/docstore, and executes
queries scatter-gather over per-shard worker **processes** — the route
around the GIL wall PR 5 measured (4 threads at 0.99x single-thread
qps).

Layers:

* :mod:`repro.shard.routing` — the stable DocId hash, the manifest, and
  the derivable global↔local id map (:class:`ShardMap`);
* :mod:`repro.shard.router` — :class:`ShardRouter`, the embedded
  (in-process) view of a sharded directory: add/remove routing,
  sequential scatter queries, and ``reshard``;
* :mod:`repro.shard.protocol` — length-prefixed JSON frames;
* :mod:`repro.shard.worker` — the per-shard worker process
  (``python -m repro.shard.worker``) wrapping the existing
  :class:`~repro.exec.executor.QueryExecutor` + RWLock machinery;
* :mod:`repro.shard.executor` — :class:`ShardedExecutor`, the
  scatter-gather client that fans queries out over sockets and merges
  ordered :class:`~repro.exec.executor.QueryOutcome` results;
* :mod:`repro.shard.supervisor` — worker supervision: the
  healthy → restarting → down state machine, the jittered-backoff
  :class:`RestartPolicy`, and the scheduler thread that also drives
  per-RPC retries, hedges, and deadlines (docs/INTERNALS.md section 13).
"""

from repro.shard.routing import MANIFEST_FILE, ShardMap, is_sharded, shard_of
from repro.shard.router import ShardRouter, reshard_db

__all__ = [
    "MANIFEST_FILE",
    "RestartPolicy",
    "ShardMap",
    "ShardRouter",
    "ShardedExecutor",
    "is_sharded",
    "reshard_db",
    "shard_of",
]

_LAZY = {
    # executor pulls in subprocess/socket plumbing; supervisor rides along
    "ShardedExecutor": "repro.shard.executor",
    "RestartPolicy": "repro.shard.supervisor",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
