"""Length-prefixed JSON frames — the one wire format of the shard layer.

Framing: a 4-byte big-endian payload length followed by that many bytes
of UTF-8 JSON.  The same framing carries both the worker protocol
(parent ↔ per-shard worker process) and the ``repro serve --port`` client
protocol; only the payload schemas differ.

Worker requests are objects with an ``op`` and a caller-chosen ``id``
echoed back in the response (responses may arrive out of order — the
worker answers queries from a thread pool)::

    {"id": 7, "op": "query", "xpath": "//a[b]", "verify": false,
     "guard": {"deadline_ms": 100.0}}          # guard keys optional
    {"id": 8, "op": "add", "xml": "<a/>", "expect_local": 3}
    {"id": 9, "op": "remove", "local_id": 3}
    {"id": 0, "op": "ping"} | {"op": "stats"} | {"op": "shutdown"}

Responses: ``{"id": n, "ok": true, ...}`` with op-specific payload
(``result`` for queries — *local* doc ids — ``local_id`` for adds,
``snapshot`` for stats), or ``{"id": n, "ok": false, "error": "...",
"error_type": "QueryTimeoutError"}``.  ``error_type`` is the exception
class name; clients rehydrate it against :mod:`repro.errors` so guard
deadlines keep their CLI exit codes across the process boundary.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

from repro.errors import ProtocolError, ShardError

__all__ = [
    "FrameError",
    "MAX_FRAME",
    "recv_frame",
    "send_frame",
    "rehydrate_error",
]

_LEN = struct.Struct(">I")
#: Upper bound on one frame's payload; a peer announcing more than this
#: is treated as corrupt framing rather than a 4 GiB allocation request.
MAX_FRAME = 64 * 1024 * 1024


class FrameError(ProtocolError):
    """The byte stream does not parse as length-prefixed JSON frames.

    A :class:`~repro.errors.ProtocolError` (CLI exit code 7): raised for
    oversized length prefixes, streams cut mid-frame, and payloads that
    are not UTF-8 JSON — never a raw ``ValueError``/``JSONDecodeError``.
    """


def send_frame(sock: socket.socket, obj) -> None:
    """Serialise ``obj`` and write one frame (atomic ``sendall``)."""
    try:
        data = json.dumps(obj, default=str).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"payload is not JSON-serialisable: {exc}") from exc
    if len(data) > MAX_FRAME:
        raise FrameError(f"frame of {len(data)} bytes exceeds {MAX_FRAME}")
    sock.sendall(_LEN.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes, or ``None`` on a clean EOF at a boundary."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 16))
        if not chunk:
            if got == 0:
                return None
            raise FrameError(f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket):
    """Read one frame; returns the decoded object, or ``None`` on EOF."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(f"peer announced a {length}-byte frame (max {MAX_FRAME})")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise FrameError("connection closed between header and payload")
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from exc


def rehydrate_error(response: dict) -> BaseException:
    """An exception mirroring a worker's ``ok: false`` response.

    Known :mod:`repro.errors` classes come back as a same-class instance
    (message-only — structured constructor args do not cross the wire),
    so ``QueryTimeoutError`` still maps to exit code 4 at the CLI.
    Anything else — an unknown ``error_type``, a non-exception name, a
    class whose construction misbehaves, even a response that is not a
    dict — degrades to a generic :class:`ShardError`; rehydration never
    raises on its own.
    """
    import repro.errors as errors_mod

    if not isinstance(response, dict):
        return errors_mod.ShardError(f"malformed worker error response: {response!r}")
    message = str(response.get("error", "unknown worker error"))
    name = response.get("error_type", "")
    cls = getattr(errors_mod, str(name), None)
    if isinstance(cls, type) and issubclass(cls, errors_mod.ReproError):
        # bypass structured __init__ signatures (QueryTimeoutError takes
        # floats, CorruptPageError a path/page/checksums …): the class is
        # what isinstance-based handling keys on, the message is display
        try:
            exc = cls.__new__(cls)
            BaseException.__init__(exc, message)
            return exc
        except Exception:  # exotic __new__ — fall through to the generic
            pass
    return errors_mod.ShardError(f"{name}: {message}" if name else message)
