"""Per-shard worker process: ``python -m repro.shard.worker SHARD_DIR``.

One worker owns one shard directory — a complete single-directory index
(pager, WAL, buffer pool, docstore) opened exactly as ``repro query``
would open it — and serves the frame protocol of
:mod:`repro.shard.protocol` on a loopback TCP socket.  Queries are
answered through the existing thread machinery: every ``query`` frame is
submitted to a :class:`~repro.exec.executor.QueryExecutor` over the open
index (snapshot isolation via the index RWLock, fresh
:class:`~repro.index.guard.QueryGuard` per query), so responses may
complete out of order and carry the request ``id`` for demultiplexing.
``add``/``remove`` frames run inline on the connection thread — the
index write lock already serialises them against in-flight reads.

Lifecycle: the worker announces ``PORT <n>`` on stdout once listening
(the parent spawns with ``--port 0`` and reads the line), exits on a
``shutdown`` frame, on SIGTERM/SIGINT, or when its stdin reaches EOF —
the parent holds the write end, so an orphaned worker always folds
instead of holding the shard's WAL hostage.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading
from pathlib import Path

from repro.errors import ReproError
from repro.exec.executor import QueryExecutor
from repro.index.guard import QueryGuard
from repro.shard.protocol import FrameError, recv_frame, send_frame

__all__ = ["main", "serve_shard"]


def _guard_factory_from(spec):
    """A per-query guard factory for a frame's ``guard`` object, or None."""
    if not spec:
        return None
    deadline_ms = spec.get("deadline_ms")
    max_steps = spec.get("max_steps")
    max_page_reads = spec.get("max_page_reads")
    if deadline_ms is None and max_steps is None and max_page_reads is None:
        return None
    return lambda: QueryGuard(
        deadline_ms=deadline_ms,
        max_steps=max_steps,
        max_page_reads=max_page_reads,
    )


class _ShardServer:
    def __init__(self, index, threads: int) -> None:
        self.index = index
        self.executor = QueryExecutor(index, threads=threads)
        self.stop = threading.Event()
        self._conn_threads: list[threading.Thread] = []

    # -- per-connection --------------------------------------------------

    def handle_connection(self, conn: socket.socket) -> None:
        send_lock = threading.Lock()
        try:
            while not self.stop.is_set():
                try:
                    request = recv_frame(conn)
                except (FrameError, OSError):
                    break
                if request is None:  # client hung up
                    break
                self._dispatch(conn, send_lock, request)
                if request.get("op") == "shutdown":
                    break
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _reply(self, conn, send_lock, request_id, payload) -> None:
        try:
            with send_lock:
                send_frame(conn, {"id": request_id, **payload})
        except OSError:
            pass  # client gone; the work is already done

    def _fail(self, conn, send_lock, request_id, exc: BaseException) -> None:
        self._reply(
            conn,
            send_lock,
            request_id,
            {"ok": False, "error": str(exc), "error_type": type(exc).__name__},
        )

    def _dispatch(self, conn, send_lock, request) -> None:
        request_id = request.get("id", 0)
        op = request.get("op")
        try:
            if op == "query":
                guard_factory = _guard_factory_from(request.get("guard"))
                future = self.executor.submit_with(
                    request["xpath"],
                    verify=bool(request.get("verify", False)),
                    guard_factory=guard_factory,
                )

                def deliver(fut, _id=request_id):
                    outcome = fut.result()
                    if outcome.ok:
                        self._reply(conn, send_lock, _id, {
                            "ok": True,
                            "result": list(outcome.result),
                            "elapsed_ms": outcome.elapsed_ms,
                        })
                    else:
                        self._fail(conn, send_lock, _id, outcome.error)

                future.add_done_callback(deliver)
            elif op == "add":
                from repro.doc.parser import parse_document

                document = parse_document(request["xml"])
                expect = request.get("expect_local")
                # check the router's expectation BEFORE mutating: a stale,
                # duplicated, or replayed add must fail loudly without
                # inserting — writes are at-most-once, never retried
                if expect is not None and self.index.docstore.id_bound != expect:
                    raise ReproError(
                        f"shard would assign local id "
                        f"{self.index.docstore.id_bound}, router expected "
                        f"{expect} — layouts have diverged"
                    )
                local = self.index.add(document)
                if expect is not None and local != expect:
                    raise ReproError(
                        f"shard assigned local id {local}, router expected "
                        f"{expect} — layouts have diverged"
                    )
                self._reply(conn, send_lock, request_id,
                            {"ok": True, "local_id": local})
            elif op == "remove":
                self.index.remove(int(request["local_id"]))
                self._reply(conn, send_lock, request_id, {"ok": True})
            elif op == "stats":
                snapshot = self.index.metrics.snapshot()
                snapshot["documents"] = len(self.index)
                self._reply(conn, send_lock, request_id, {
                    "ok": True,
                    "snapshot": snapshot,
                    # id_bound (tombstones included) is what the router's
                    # manifest recovery reconciles against
                    "id_bound": self.index.docstore.id_bound,
                    "documents": len(self.index),
                })
            elif op == "flush":
                self.index.flush()
                self._reply(conn, send_lock, request_id, {"ok": True})
            elif op == "ping":
                self._reply(conn, send_lock, request_id, {"ok": True})
            elif op == "shutdown":
                self._reply(conn, send_lock, request_id, {"ok": True})
                self.stop.set()
            else:
                raise ReproError(f"unknown op {op!r}")
        except BaseException as exc:  # noqa: BLE001 - captured per frame
            if isinstance(exc, (SystemExit, KeyboardInterrupt)):
                raise
            self._fail(conn, send_lock, request_id, exc)

    # -- accept loop -----------------------------------------------------

    def serve(self, listener: socket.socket) -> None:
        listener.settimeout(0.25)  # poll the stop flag between accepts
        while not self.stop.is_set():
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(
                target=self.handle_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._conn_threads.append(thread)

    def close(self) -> None:
        self.stop.set()
        self.executor.close()


def serve_shard(
    shard_dir: Path,
    host: str,
    port: int,
    threads: int,
    server_cls: type = _ShardServer,
) -> int:
    """Open the shard and serve it until told to stop.

    ``server_cls`` is the fault-injection seam: the chaos harness
    (:mod:`repro.testing.chaos`) reuses this whole lifecycle — port
    announcement, stdin orphan watchdog, SIGTERM handling — around a
    server subclass that injects faults into the reply path.
    """
    from repro.cli import _close_index, open_index

    index = open_index(shard_dir)
    server = server_cls(index, threads)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen()
        print(f"PORT {listener.getsockname()[1]}", flush=True)

        def stdin_watch():
            # parent death closes our stdin pipe; fold instead of orphaning.
            # Raw os.read, NOT sys.stdin.buffer.read(): a daemon thread
            # parked inside the BufferedReader holds its lock, and
            # interpreter finalization (SIGTERM exit) aborts the whole
            # process trying to re-acquire it for the flush-on-shutdown.
            try:
                fd = sys.stdin.fileno()
                while os.read(fd, 4096):
                    pass
            except (OSError, ValueError):
                pass
            server.stop.set()

        threading.Thread(target=stdin_watch, daemon=True).start()
        signal.signal(signal.SIGTERM, lambda *_: server.stop.set())
        try:
            server.serve(listener)
        except KeyboardInterrupt:
            pass
    finally:
        try:
            listener.close()
        except OSError:
            pass
        server.close()
        _close_index(index)
    return 0


def main(argv=None, server_cls: type = _ShardServer) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.shard.worker",
        description="serve one index shard over the frame protocol",
    )
    parser.add_argument("shard_dir", type=Path)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 picks an ephemeral port (announced on stdout)")
    parser.add_argument("--threads", type=int, default=2,
                        help="query worker threads over the shard (default 2)")
    args = parser.parse_args(argv)
    return serve_shard(
        args.shard_dir, args.host, args.port, args.threads, server_cls=server_cls
    )


if __name__ == "__main__":
    sys.exit(main())
