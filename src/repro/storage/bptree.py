"""A paged B+Tree with duplicate keys, range scans and deletion.

This is the reproduction's stand-in for the Berkeley DB B+Trees the paper
builds ViST on.  Keys and values are opaque byte strings; the *sort unit*
is the ``(key, value)`` pair (Berkeley DB's ``DUPSORT`` mode), which is
exactly what the ViST DocId B+Tree needs (many document ids under one
label) and makes unique-key trees a trivial special case.

Layout
------
Every node occupies one page of the underlying
:class:`~repro.storage.pager.Pager`:

* leaf page:     ``[0x01][n:u16][next:u64]`` then ``n`` cells of
  ``(klen:u16, vlen:u16, key, value)``;
* internal page: ``[0x02][n:u16][child0:u64]`` then ``n`` cells of
  ``(klen:u16, vlen:u16, key, value, child:u64)`` — separators are full
  pairs so duplicate keys route deterministically.

Several logical trees can share one pager: each tree occupies a *slot* in
the pager's metadata blob holding its root page id and entry count.

Concurrency and caching
-----------------------
Nodes are decoded once and cached in memory; dirty nodes are written back
on :meth:`BPlusTree.flush` / :meth:`BPlusTree.close` or on an explicit
:meth:`BPlusTree.checkpoint`, which may also drop the cache at a quiescent
point.  With the packed kernels enabled (``REPRO_PACKED``, see
:mod:`repro.kernels`), a leaf "decode" is just a one-pass cell-offset
table over the page buffer — keys and values are sliced out on access,
so a point lookup touches O(log n) cells of a page instead of
materialising all of them; mutation paths materialise the entry list
once and proceed as before.  The tree is **single-writer**: mutation is
serialised by the owning index's readers–writer lock
(:class:`repro.exec.locks.RWLock`), the same operating envelope the
paper's experiments use.  Concurrent *readers* are tolerated by
construction on the lookup path: the descent cache is a small LRU of
immutable :class:`_DescentSlot` objects held as one atomically-swapped
tuple; each slot carries its own structure version and is re-validated
after the leaf is fetched, so a reader that raced a writer retries the
full descent instead of trusting a stale slot, and the leaf-chain walk
in :meth:`BPlusTree._seek` recovers from landing on a leaf that a
concurrent split has since divided.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import DuplicateEntryError, KeyTooLargeError, PageError, StorageError
from repro.kernels import leaf_cell_offsets, packed_enabled
from repro.obs.metrics import MetricSet
from repro.storage.pager import MemoryPager, Pager

_LEAF = 0x01
_INTERNAL = 0x02
_LEAF_HEADER = 1 + 2 + 8
_INTERNAL_HEADER = 1 + 2 + 8
_LEAF_CELL_OVERHEAD = 4
_INTERNAL_CELL_OVERHEAD = 12
_SLOT_FMT = "<QQ"  # root pid, entry count
_SLOT_SIZE = struct.calcsize(_SLOT_FMT)
_META_FMT = "<H"  # number of slots

Pair = tuple[bytes, bytes]


# How many recent descents each tree remembers.  One slot thrashes on the
# combined tree (Algorithm 2 interleaves D-Ancestor key groups level by
# level, so consecutive seeks alternate between distant leaves); a handful
# covers a whole frontier level's worth of hot groups.
_DESCENT_SLOTS = 8


class _DescentSlot:
    """One remembered descent: routing separators + leaf, version-stamped.

    Immutable after construction; ``BPlusTree._descents`` holds up to
    ``_DESCENT_SLOTS`` of these as one tuple swapped atomically as a
    whole, so a concurrent reader either sees a complete slot list or an
    older one — never a half-updated ``(version, lo, hi, pid)``.  The
    stamped ``version`` makes validation a single comparison against the
    tree's current structure version.
    """

    __slots__ = ("version", "lo", "hi", "pid")

    def __init__(
        self, version: int, lo: Optional[Pair], hi: Optional[Pair], pid: int
    ) -> None:
        self.version = version
        self.lo = lo
        self.hi = hi
        self.pid = pid

__all__ = [
    "BPlusTree",
    "TreeStats",
    "decode_slot_directory",
    "reachable_page_ids",
]


def decode_slot_directory(meta: bytes) -> list[tuple[int, int]]:
    """Parse a pager metadata blob into ``(root_pid, count)`` slot entries.

    This is the inverse of the blob :meth:`BPlusTree._store_slot` writes;
    the scrub reachability walk uses it to find every tree root in a page
    file without opening the trees.
    """
    if not meta:
        return []
    (nslots,) = struct.unpack_from(_META_FMT, meta)
    header = struct.calcsize(_META_FMT)
    need = header + nslots * _SLOT_SIZE
    if len(meta) < need:
        raise PageError(
            f"slot directory truncated: {nslots} slot(s) need {need} bytes, "
            f"blob has {len(meta)}"
        )
    return [
        struct.unpack_from(_SLOT_FMT, meta, header + i * _SLOT_SIZE)
        for i in range(nslots)
    ]


def reachable_page_ids(meta: bytes, read_page) -> set[int]:
    """Every page id reachable from the slot directory's tree roots.

    ``read_page(pid)`` must return the raw node payload of page ``pid``.
    The walk decodes only node kinds and internal-cell child pointers, so
    it works on raw file bytes without a pager; a malformed node raises
    :class:`~repro.errors.PageError` naming the page.
    """
    live: set[int] = set()
    for root_pid, _count in decode_slot_directory(meta):
        if root_pid == 0:
            continue
        stack = [root_pid]
        while stack:
            pid = stack.pop()
            if pid in live:  # shared page or cycle: visit once
                continue
            live.add(pid)
            data = read_page(pid)
            if not data:
                raise PageError(f"page {pid}: empty node payload")
            kind = data[0]
            if kind == _LEAF:
                continue
            if kind != _INTERNAL:
                raise PageError(f"page {pid} has unknown node type {kind:#x}")
            (n,) = struct.unpack_from("<H", data, 1)
            stack.append(struct.unpack_from("<Q", data, 3)[0])
            off = _INTERNAL_HEADER
            for _ in range(n):
                klen, vlen = struct.unpack_from("<HH", data, off)
                off += 4 + klen + vlen
                stack.append(struct.unpack_from("<Q", data, off)[0])
                off += 8
    return live


@dataclass
class TreeStats(MetricSet):
    """Size/shape statistics for one tree (used by the Figure 11 benches).

    ``descent_hits``/``descent_misses`` count root-to-leaf descents served
    from (vs missing) the last-descent cache — see :meth:`BPlusTree._seek`.
    """

    entries: int
    height: int
    leaf_pages: int
    internal_pages: int
    page_size: int
    used_bytes: int
    descent_hits: int = 0
    descent_misses: int = 0

    @property
    def total_pages(self) -> int:
        return self.leaf_pages + self.internal_pages

    @property
    def total_bytes(self) -> int:
        return self.total_pages * self.page_size


class _Node:
    __slots__ = ("pid",)


class _Leaf(_Node):
    """A leaf node, eager or *lazy*.

    Lazy leaves (packed decode) carry the raw page buffer plus a flat
    cell-offset table instead of a materialised entry list; the read-path
    accessors (:meth:`count`, :meth:`key_at`, :meth:`pair_at`,
    :meth:`bisect_entries`) slice cells out of the buffer on demand.
    Reading :attr:`entries` materialises the full list once and caches it
    (``_raw``/``_offsets`` are deliberately *not* cleared then: a reader
    racing the materialisation keeps valid offsets).  Assigning
    ``entries`` — the structural-rewrite paths — drops the raw view, so
    a mutated leaf can never serve stale page bytes.
    """

    __slots__ = ("_entries", "next", "_used", "_raw", "_offsets")

    def __init__(
        self,
        pid: int,
        entries: Optional[list[Pair]],
        next_pid: int,
        *,
        raw: Optional[bytes] = None,
        offsets=None,
        used: Optional[int] = None,
    ) -> None:
        self.pid = pid
        self._entries = entries
        self.next = next_pid
        # cached used_bytes: insert/delete maintain it by delta (the hot
        # paths), structural rewrites reset it to None for a lazy recount
        self._used: Optional[int] = used
        self._raw = raw
        self._offsets = offsets

    @property
    def entries(self) -> list[Pair]:
        entries = self._entries
        if entries is None:
            raw, offs = self._raw, self._offsets
            entries = [
                (
                    raw[offs[j] : offs[j] + offs[j + 1]],
                    raw[offs[j] + offs[j + 1] : offs[j] + offs[j + 1] + offs[j + 2]],
                )
                for j in range(0, len(offs), 3)
            ]
            self._entries = entries
        return entries

    @entries.setter
    def entries(self, entries: list[Pair]) -> None:
        self._entries = entries
        self._raw = None
        self._offsets = None

    @property
    def count(self) -> int:
        entries = self._entries
        if entries is not None:
            return len(entries)
        return len(self._offsets) // 3

    def key_at(self, i: int) -> bytes:
        entries = self._entries
        if entries is not None:
            return entries[i][0]
        offs = self._offsets
        j = 3 * i
        base = offs[j]
        return self._raw[base : base + offs[j + 1]]

    def pair_at(self, i: int) -> Pair:
        entries = self._entries
        if entries is not None:
            return entries[i]
        offs = self._offsets
        j = 3 * i
        base = offs[j]
        ksplit = base + offs[j + 1]
        return self._raw[base:ksplit], self._raw[ksplit : ksplit + offs[j + 2]]

    def bisect_entries(self, bound: Pair) -> int:
        """``bisect_left(self.entries, bound)`` without materialising."""
        entries = self._entries
        if entries is not None:
            return bisect_left(entries, bound)
        raw, offs = self._raw, self._offsets
        bkey, bval = bound
        lo, hi = 0, len(offs) // 3
        while lo < hi:
            mid = (lo + hi) >> 1
            j = 3 * mid
            base = offs[j]
            ksplit = base + offs[j + 1]
            key = raw[base:ksplit]
            if key < bkey or (
                key == bkey and raw[ksplit : ksplit + offs[j + 2]] < bval
            ):
                lo = mid + 1
            else:
                hi = mid
        return lo

    def used_bytes(self) -> int:
        if self._used is None:
            self._used = _LEAF_HEADER + sum(
                _LEAF_CELL_OVERHEAD + len(k) + len(v) for k, v in self.entries
            )
        return self._used


class _Internal(_Node):
    __slots__ = ("seps", "children", "_used")

    def __init__(self, pid: int, seps: list[Pair], children: list[int]) -> None:
        self.pid = pid
        self.seps = seps
        self.children = children
        self._used: Optional[int] = None

    def used_bytes(self) -> int:
        if self._used is None:
            self._used = _INTERNAL_HEADER + sum(
                _INTERNAL_CELL_OVERHEAD + len(k) + len(v) for k, v in self.seps
            )
        return self._used


class BPlusTree:
    """B+Tree over a pager slot.  See the module docstring for semantics."""

    def __init__(self, pager: Optional[Pager] = None, slot: int = 0) -> None:
        self._pager = pager if pager is not None else MemoryPager()
        self._slot = slot
        self._capacity = self._pager.page_size
        self._max_cell = max(16, self._capacity // 4)
        self._min_fill = self._capacity // 4
        self._cache: dict[int, _Node] = {}
        self._dirty: set[int] = set()
        self._closed = False
        # Descent cache.  Consecutive seeks over nearby keys — Algorithm
        # 2's dominant pattern — reuse a leaf when the seek bound still
        # falls between the separators that routed a recent descent.  A
        # small LRU of immutable _DescentSlot objects, held as one tuple
        # swapped atomically as a whole so concurrent readers can never
        # observe a torn update; multiple slots keep the interleaved key
        # groups of a frontier level from evicting each other.
        self._descents: tuple[_DescentSlot, ...] = ()
        self._structure_version = 0
        self.descent_hits = 0
        self.descent_misses = 0
        root_pid, count = self._load_slot()
        if root_pid == 0:
            root = self._new_leaf()
            root_pid = root.pid
            count = 0
        self._root_pid = root_pid
        self._count = count

    # ------------------------------------------------------------------
    # slot metadata

    def _load_slot(self) -> tuple[int, int]:
        blob = self._pager.get_metadata()
        if not blob:
            return 0, 0
        (nslots,) = struct.unpack_from(_META_FMT, blob)
        if self._slot >= nslots:
            return 0, 0
        off = struct.calcsize(_META_FMT) + self._slot * _SLOT_SIZE
        return struct.unpack_from(_SLOT_FMT, blob, off)

    def _store_slot(self) -> None:
        blob = bytearray(self._pager.get_metadata())
        header = struct.calcsize(_META_FMT)
        nslots = struct.unpack_from(_META_FMT, blob)[0] if blob else 0
        if self._slot >= nslots:
            nslots = self._slot + 1
            need = header + nslots * _SLOT_SIZE
            if len(blob) < need:
                blob.extend(b"\x00" * (need - len(blob)))
            struct.pack_into(_META_FMT, blob, 0, nslots)
        off = header + self._slot * _SLOT_SIZE
        struct.pack_into(_SLOT_FMT, blob, off, self._root_pid, self._count)
        self._pager.set_metadata(bytes(blob))

    # ------------------------------------------------------------------
    # node lifecycle

    def _new_leaf(self, entries: Optional[list[Pair]] = None, next_pid: int = 0) -> _Leaf:
        pid = self._pager.allocate()
        node = _Leaf(pid, entries if entries is not None else [], next_pid)
        self._cache[pid] = node
        self._dirty.add(pid)
        return node

    def _new_internal(self, seps: list[Pair], children: list[int]) -> _Internal:
        pid = self._pager.allocate()
        node = _Internal(pid, seps, children)
        self._cache[pid] = node
        self._dirty.add(pid)
        return node

    def _node(self, pid: int) -> _Node:
        node = self._cache.get(pid)
        if node is None:
            node = self._decode(pid, self._pager.read(pid))
            self._cache[pid] = node
        return node

    def _touch(self, node: _Node) -> None:
        self._dirty.add(node.pid)

    def _free_node(self, node: _Node) -> None:
        self._cache.pop(node.pid, None)
        self._dirty.discard(node.pid)
        self._pager.free(node.pid)

    # ------------------------------------------------------------------
    # (de)serialization

    def _decode(self, pid: int, raw: bytes) -> _Node:
        kind = raw[0]
        (n,) = struct.unpack_from("<H", raw, 1)
        if kind == _LEAF:
            (next_pid,) = struct.unpack_from("<Q", raw, 3)
            if packed_enabled():
                # zero-copy decode: offset table only, cells sliced from
                # the page buffer on access (the end offset is exactly
                # the page's used-bytes figure, cached for free)
                offsets, end = leaf_cell_offsets(raw, n, _LEAF_HEADER)
                return _Leaf(
                    pid, None, next_pid, raw=raw, offsets=offsets, used=end
                )
            off = _LEAF_HEADER
            entries: list[Pair] = []
            for _ in range(n):
                klen, vlen = struct.unpack_from("<HH", raw, off)
                off += 4
                key = raw[off : off + klen]
                off += klen
                value = raw[off : off + vlen]
                off += vlen
                entries.append((key, value))
            return _Leaf(pid, entries, next_pid)
        if kind == _INTERNAL:
            (child0,) = struct.unpack_from("<Q", raw, 3)
            off = _INTERNAL_HEADER
            seps: list[Pair] = []
            children = [child0]
            for _ in range(n):
                klen, vlen = struct.unpack_from("<HH", raw, off)
                off += 4
                key = raw[off : off + klen]
                off += klen
                value = raw[off : off + vlen]
                off += vlen
                (child,) = struct.unpack_from("<Q", raw, off)
                off += 8
                seps.append((key, value))
                children.append(child)
            return _Internal(pid, seps, children)
        raise PageError(f"page {pid} has unknown node type {kind:#x}")

    def _encode(self, node: _Node) -> bytes:
        out = bytearray()
        if isinstance(node, _Leaf):
            out += struct.pack("<BHQ", _LEAF, len(node.entries), node.next)
            for key, value in node.entries:
                out += struct.pack("<HH", len(key), len(value))
                out += key
                out += value
        else:
            assert isinstance(node, _Internal)
            out += struct.pack("<BHQ", _INTERNAL, len(node.seps), node.children[0])
            for (key, value), child in zip(node.seps, node.children[1:]):
                out += struct.pack("<HH", len(key), len(value))
                out += key
                out += value
                out += struct.pack("<Q", child)
        if len(out) > self._capacity:
            raise StorageError(
                f"internal error: node {node.pid} serialized to {len(out)} bytes"
            )
        return bytes(out)

    # ------------------------------------------------------------------
    # public API

    def bulk_load(
        self, pairs: Iterator[Pair] | list[Pair], *, fill_fraction: float = 0.9
    ) -> int:
        """Bottom-up build of an **empty** tree from pre-sorted entries.

        ``pairs`` must be sorted ascending by ``(key, value)`` with no
        exact duplicates; each page is filled to ``fill_fraction`` of its
        byte capacity.  Orders of magnitude faster than repeated
        :meth:`insert` for batch construction (RIST's finalize and any
        offline rebuild).  Returns the number of entries loaded.
        """
        self._ensure_open()
        if self._count or not isinstance(self._node(self._root_pid), _Leaf):
            raise StorageError("bulk_load requires an empty tree")
        if not 0.1 <= fill_fraction <= 1.0:
            raise StorageError("fill_fraction must be in [0.1, 1.0]")
        budget = int(self._capacity * fill_fraction)
        old_root = self._node(self._root_pid)

        # -- build the leaf level ----------------------------------------
        leaves: list[tuple[Pair, int]] = []  # (first pair, pid)
        current: list[Pair] = []
        used = _LEAF_HEADER
        count = 0
        previous: Optional[Pair] = None

        def close_leaf() -> None:
            nonlocal current, used
            if not current:
                return
            leaf = self._new_leaf(list(current), 0)
            if leaves:
                prev_leaf = self._node(leaves[-1][1])
                assert isinstance(prev_leaf, _Leaf)
                prev_leaf.next = leaf.pid
                self._touch(prev_leaf)
            leaves.append((current[0], leaf.pid))
            current = []
            used = _LEAF_HEADER

        for pair in pairs:
            pair = (bytes(pair[0]), bytes(pair[1]))
            if previous is not None and pair <= previous:
                raise StorageError(
                    "bulk_load input must be strictly ascending by (key, value)"
                )
            previous = pair
            cell = _LEAF_CELL_OVERHEAD + len(pair[0]) + len(pair[1])
            if cell > self._max_cell:
                raise KeyTooLargeError(
                    f"entry of {cell} bytes exceeds the per-cell limit {self._max_cell}"
                )
            if used + cell > budget and current:
                close_leaf()
            current.append(pair)
            used += cell
            count += 1
        close_leaf()
        if not leaves:
            return 0

        # -- build internal levels ----------------------------------------
        level: list[tuple[Pair, int]] = leaves
        while len(level) > 1:
            next_level: list[tuple[Pair, int]] = []
            seps: list[Pair] = []
            children: list[int] = [level[0][1]]
            used = _INTERNAL_HEADER
            first_pair = level[0][0]
            for pair, pid in level[1:]:
                cell = _INTERNAL_CELL_OVERHEAD + len(pair[0]) + len(pair[1])
                if used + cell > budget and seps:
                    node = self._new_internal(seps, children)
                    next_level.append((first_pair, node.pid))
                    seps, children = [], [pid]
                    used = _INTERNAL_HEADER
                    first_pair = pair
                else:
                    seps.append(pair)
                    children.append(pid)
                    used += cell
            node = self._new_internal(seps, children)
            next_level.append((first_pair, node.pid))
            level = next_level

        self._bump_structure_version()
        self._free_node(old_root)
        self._root_pid = level[0][1]
        self._count = count
        return count

    def insert(self, key: bytes, value: bytes = b"", *, allow_exact_dup: bool = False) -> None:
        """Insert one ``(key, value)`` entry.

        Duplicate *keys* are always allowed; an exact duplicate *pair*
        raises :class:`DuplicateEntryError` unless ``allow_exact_dup`` is
        set (in which case a second physical copy is stored).
        """
        self._ensure_open()
        cell = _LEAF_CELL_OVERHEAD + len(key) + len(value)
        if cell > self._max_cell:
            raise KeyTooLargeError(
                f"entry of {cell} bytes exceeds the per-cell limit {self._max_cell}"
            )
        pair = (bytes(key), bytes(value))
        split = self._insert_rec(self._root_pid, pair, allow_exact_dup)
        if split is not None:
            sep, right_pid = split
            new_root = self._new_internal([sep], [self._root_pid, right_pid])
            self._root_pid = new_root.pid
        self._count += 1

    def put(self, key: bytes, value: bytes) -> None:
        """Unique-key upsert: remove every entry under ``key``, insert one."""
        self.delete(key)
        self.insert(key, value)

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the smallest value stored under ``key``, or ``None``."""
        self._ensure_open()
        key = bytes(key)
        leaf, idx = self._seek(key, True)
        if leaf is not None:
            ekey, value = leaf.pair_at(idx)
            if ekey == key:
                return value
        return None

    def values(self, key: bytes) -> Iterator[bytes]:
        """Iterate every value stored under ``key`` (ascending value order)."""
        for _, value in self.range(key, key, include_hi=True):
            yield value

    def contains(self, key: bytes) -> bool:
        """True if at least one entry is stored under ``key``.

        Stops at the first hit via a single :meth:`_seek` — with duplicate
        keys this never walks the whole duplicate run the way a full
        ``get``-style leaf scan would.
        """
        self._ensure_open()
        key = bytes(key)
        leaf, idx = self._seek(key, True)
        return leaf is not None and leaf.key_at(idx) == key

    def range(
        self,
        lo: Optional[bytes] = None,
        hi: Optional[bytes] = None,
        *,
        include_lo: bool = True,
        include_hi: bool = False,
    ) -> Iterator[Pair]:
        """Yield ``(key, value)`` pairs with ``lo <(=) key <(=) hi`` in order.

        ``None`` bounds are open.  The default half-open interval
        ``[lo, hi)`` matches the DocId range queries of Algorithm 2.
        """
        self._ensure_open()
        if lo is None:
            leaf = self._leftmost_leaf()
            idx = 0
        else:
            leaf, idx = self._seek(bytes(lo), include_lo)
        hi_b = bytes(hi) if hi is not None else None
        while leaf is not None:
            entries = leaf.entries
            while idx < len(entries):
                key, value = entries[idx]
                if hi_b is not None:
                    if include_hi:
                        if key > hi_b:
                            return
                    elif key >= hi_b:
                        return
                yield key, value
                idx += 1
            leaf = self._node(leaf.next) if leaf.next else None
            idx = 0

    def items(self) -> Iterator[Pair]:
        """Iterate every entry in order."""
        return self.range()

    def delete(self, key: bytes, value: Optional[bytes] = None) -> int:
        """Delete entries under ``key``.

        With ``value`` given, removes at most one exact ``(key, value)``
        pair; otherwise removes every entry under ``key``.  Returns the
        number of entries removed.
        """
        self._ensure_open()
        key = bytes(key)
        if value is not None:
            return 1 if self._delete_pair((key, bytes(value))) else 0
        removed = 0
        # Re-seek the first surviving entry each round instead of
        # materialising the whole victim list up front (the run under one
        # key can be large — DocId trees store one entry per document).
        while True:
            leaf, idx = self._seek(key, True)
            if leaf is None or leaf.key_at(idx) != key:
                return removed
            if not self._delete_pair(leaf.pair_at(idx)):  # pragma: no cover
                return removed
            removed += 1

    def first(self) -> Optional[Pair]:
        """Smallest entry, or ``None`` for an empty tree."""
        for pair in self.range():
            return pair
        return None

    def last(self) -> Optional[Pair]:
        """Largest entry, or ``None`` for an empty tree."""
        node = self._node(self._root_pid)
        while isinstance(node, _Internal):
            node = self._node(node.children[-1])
        assert isinstance(node, _Leaf)
        # The rightmost leaf can be empty only when the tree is empty.
        return node.pair_at(node.count - 1) if node.count else None

    def __len__(self) -> int:
        return self._count

    def is_empty(self) -> bool:
        return self._count == 0

    def stats(self) -> TreeStats:
        """Walk the tree and report its size and shape."""
        self._ensure_open()
        leaf_pages = internal_pages = used = 0
        height = 0
        stack = [(self._root_pid, 1)]
        while stack:
            pid, depth = stack.pop()
            node = self._node(pid)
            height = max(height, depth)
            used += node.used_bytes()
            if isinstance(node, _Leaf):
                leaf_pages += 1
            else:
                internal_pages += 1
                stack.extend((child, depth + 1) for child in node.children)
        return TreeStats(
            entries=self._count,
            height=height,
            leaf_pages=leaf_pages,
            internal_pages=internal_pages,
            page_size=self._capacity,
            used_bytes=used,
            descent_hits=self.descent_hits,
            descent_misses=self.descent_misses,
        )

    def flush(self) -> None:
        """Serialize dirty nodes and persist slot metadata."""
        self._ensure_open()
        for pid in sorted(self._dirty):
            node = self._cache.get(pid)
            if node is not None:
                self._pager.write(pid, self._encode(node))
        self._dirty.clear()
        self._store_slot()

    def checkpoint(self, clear_cache: bool = False) -> None:
        """Flush; optionally drop the decoded-node cache to bound memory."""
        self.flush()
        self._pager.sync()
        if clear_cache:
            self._cache.clear()

    def close(self) -> None:
        """Flush and detach from the pager (the pager itself stays open)."""
        if self._closed:
            return
        self.flush()
        self._closed = True

    @property
    def pager(self) -> Pager:
        return self._pager

    # ------------------------------------------------------------------
    # insertion internals

    def _insert_rec(
        self, pid: int, pair: Pair, allow_exact_dup: bool
    ) -> Optional[tuple[Pair, int]]:
        node = self._node(pid)
        if isinstance(node, _Leaf):
            idx = bisect_left(node.entries, pair)
            if (
                not allow_exact_dup
                and idx < len(node.entries)
                and node.entries[idx] == pair
            ):
                raise DuplicateEntryError(f"entry already present: {pair!r}")
            node.entries.insert(idx, pair)
            if node._used is not None:
                node._used += _LEAF_CELL_OVERHEAD + len(pair[0]) + len(pair[1])
            self._touch(node)
            if node.used_bytes() > self._capacity:
                return self._split_leaf(node)
            return None
        assert isinstance(node, _Internal)
        child_idx = bisect_right(node.seps, pair)
        split = self._insert_rec(node.children[child_idx], pair, allow_exact_dup)
        if split is None:
            return None
        sep, right_pid = split
        node.seps.insert(child_idx, sep)
        node.children.insert(child_idx + 1, right_pid)
        if node._used is not None:
            node._used += _INTERNAL_CELL_OVERHEAD + len(sep[0]) + len(sep[1])
        self._touch(node)
        if node.used_bytes() > self._capacity:
            return self._split_internal(node)
        return None

    def _split_point(self, sizes: list[int], header: int) -> int:
        """Index splitting cells into two runs of roughly equal bytes."""
        total = sum(sizes)
        acc = 0
        for i, size in enumerate(sizes):
            acc += size
            if acc >= total // 2 and i + 1 < len(sizes):
                return i + 1
        return max(1, len(sizes) - 1)

    def _split_leaf(self, node: _Leaf) -> tuple[Pair, int]:
        self._bump_structure_version()
        sizes = [_LEAF_CELL_OVERHEAD + len(k) + len(v) for k, v in node.entries]
        cut = self._split_point(sizes, _LEAF_HEADER)
        right_entries = node.entries[cut:]
        node.entries = node.entries[:cut]
        node._used = None
        right = self._new_leaf(right_entries, node.next)
        node.next = right.pid
        self._touch(node)
        return right.entries[0], right.pid

    def _split_internal(self, node: _Internal) -> tuple[Pair, int]:
        self._bump_structure_version()
        sizes = [_INTERNAL_CELL_OVERHEAD + len(k) + len(v) for k, v in node.seps]
        cut = self._split_point(sizes, _INTERNAL_HEADER)
        # The separator at `cut` moves up; children split around it.
        up = node.seps[cut]
        right = self._new_internal(node.seps[cut + 1 :], node.children[cut + 1 :])
        node.seps = node.seps[:cut]
        node.children = node.children[: cut + 1]
        node._used = None
        self._touch(node)
        return up, right.pid

    # ------------------------------------------------------------------
    # lookup internals

    def _leftmost_leaf(self) -> _Leaf:
        node = self._node(self._root_pid)
        while isinstance(node, _Internal):
            node = self._node(node.children[0])
        assert isinstance(node, _Leaf)
        return node

    def _seek(self, key: bytes, inclusive: bool) -> tuple[Optional[_Leaf], int]:
        """Find the first leaf position with entry key >= (or >) ``key``."""
        # Route by (key, b""), which sorts at-or-before any real entry of
        # `key`, so bisect lands on the leftmost child that may contain it.
        bound = (key, b"")
        node = self._node(self._root_pid)
        if isinstance(node, _Internal):
            leaf = self._cached_descent(bound)
            if leaf is None:
                # Walk down, remembering the separators that routed the
                # descent: any later bound between them lands on the same
                # leaf, so the interior reads can be skipped wholesale.
                lo: Optional[Pair] = None
                hi: Optional[Pair] = None
                while isinstance(node, _Internal):
                    idx = bisect_right(node.seps, bound)
                    if idx > 0:
                        lo = node.seps[idx - 1]
                    if idx < len(node.seps):
                        hi = node.seps[idx]
                    node = self._node(node.children[idx])
                assert isinstance(node, _Leaf)
                slots = self._descents  # snapshot; swapped back as a whole
                if len(slots) >= _DESCENT_SLOTS:
                    slots = slots[len(slots) - _DESCENT_SLOTS + 1 :]
                self._descents = slots + (
                    _DescentSlot(self._structure_version, lo, hi, node.pid),
                )
                self.descent_misses += 1
            else:
                self.descent_hits += 1
                node = leaf
        assert isinstance(node, _Leaf)
        idx = node.bisect_entries(bound)
        leaf: Optional[_Leaf] = node
        while leaf is not None:
            count = leaf.count
            while idx < count:
                ekey = leaf.key_at(idx)
                if inclusive:
                    if ekey >= key:
                        return leaf, idx
                elif ekey > key:
                    return leaf, idx
                idx += 1
            leaf = self._node(leaf.next) if leaf.next else None
            idx = 0
        return None, 0

    def _cached_descent(self, bound: Pair) -> Optional[_Leaf]:
        """Re-validate a recent descent: structure unchanged and ``bound``
        between a remembered slot's routing separators means its leaf.

        The slot tuple is loaded exactly once (it may be swapped by
        another seek at any moment) and scanned newest-first; a matching
        slot's version is checked again *after* the leaf fetch: a writer
        that bumped the structure version while the page was being loaded
        invalidates the reuse, and the caller retries with a full descent
        instead of trusting a stale leaf.  A hit moves the slot to the
        MRU end — the reorder swap can lose against a concurrent update,
        which only costs eviction ordering, never correctness (a slot
        resurrected past an invalidation carries a stale version and can
        never validate).
        """
        slots = self._descents  # single load of the atomically-swapped tuple
        for i in range(len(slots) - 1, -1, -1):
            slot = slots[i]
            if slot.version != self._structure_version:
                continue
            if (slot.lo is None or slot.lo <= bound) and (
                slot.hi is None or bound < slot.hi
            ):
                node = self._node(slot.pid)
                if slot.version != self._structure_version:
                    return None  # raced a structural change mid-fetch: retry
                if not isinstance(node, _Leaf):
                    return None
                if i != len(slots) - 1:
                    self._descents = slots[:i] + slots[i + 1 :] + (slot,)
                return node
        return None

    def _bump_structure_version(self) -> None:
        """Invalidate the descent cache (any split/merge/entry movement).

        The slots are cleared *before* the version bump so a concurrent
        reader can never pair an old slot with the new version number.
        """
        self._descents = ()
        self._structure_version += 1

    @property
    def structure_version(self) -> int:
        """Monotone counter bumped on every structural change (splits,
        merges, borrows, root swaps, bulk loads).  Invariant checkers use
        it to assert monotonicity across mutations."""
        return self._structure_version

    @property
    def descent_hit_rate(self) -> float:
        """Fraction of seeks that skipped the interior walk."""
        # snapshot both counters once: re-reading them under concurrent
        # increment can report a rate above 1.0
        hits, misses = self.descent_hits, self.descent_misses
        total = hits + misses
        return hits / total if total else 0.0

    # ------------------------------------------------------------------
    # deletion internals

    def _delete_pair(self, pair: Pair) -> bool:
        found = self._delete_rec(self._root_pid, pair)
        if found:
            self._count -= 1
            root = self._node(self._root_pid)
            if isinstance(root, _Internal) and len(root.children) == 1:
                child_pid = root.children[0]
                self._bump_structure_version()
                self._free_node(root)
                self._root_pid = child_pid
        return found

    def _delete_rec(self, pid: int, pair: Pair) -> bool:
        node = self._node(pid)
        if isinstance(node, _Leaf):
            idx = bisect_left(node.entries, pair)
            if idx >= len(node.entries) or node.entries[idx] != pair:
                return False
            del node.entries[idx]
            if node._used is not None:
                node._used -= _LEAF_CELL_OVERHEAD + len(pair[0]) + len(pair[1])
            self._touch(node)
            return True
        assert isinstance(node, _Internal)
        child_idx = bisect_right(node.seps, pair)
        found = self._delete_rec(node.children[child_idx], pair)
        if found:
            child = self._node(node.children[child_idx])
            if self._is_underfull(child):
                self._fix_child(node, child_idx)
        return found

    def _is_underfull(self, node: _Node) -> bool:
        if isinstance(node, _Leaf):
            return node.used_bytes() < self._min_fill
        return len(node.children) < 2 or node.used_bytes() < self._min_fill

    def _fix_child(self, parent: _Internal, idx: int) -> None:
        """Restore the fill factor of ``parent.children[idx]``.

        Tries to borrow from the richer adjacent sibling, then to merge
        with either sibling.  With variable-size cells both can be
        impossible; the node is then left sparse, which preserves
        correctness at a small density cost.
        """
        child = self._node(parent.children[idx])
        left = self._node(parent.children[idx - 1]) if idx > 0 else None
        right = (
            self._node(parent.children[idx + 1])
            if idx + 1 < len(parent.children)
            else None
        )
        if left is not None and self._borrow_from_left(parent, idx, left, child):
            return
        if right is not None and self._borrow_from_right(parent, idx, child, right):
            return
        if left is not None and self._merge(parent, idx - 1, left, child):
            return
        if right is not None and self._merge(parent, idx, child, right):
            return

    def _borrow_from_left(
        self, parent: _Internal, idx: int, left: _Node, child: _Node
    ) -> bool:
        moved = False
        if isinstance(left, _Leaf) and isinstance(child, _Leaf):
            while (
                left.entries
                and left.used_bytes() > self._min_fill
                and child.used_bytes() < self._min_fill
            ):
                entry = left.entries[-1]
                cost = _LEAF_CELL_OVERHEAD + len(entry[0]) + len(entry[1])
                if left.used_bytes() - cost < self._min_fill:
                    break
                if child.used_bytes() + cost > self._capacity:
                    break
                child.entries.insert(0, left.entries.pop())
                left._used = None
                child._used = None
                moved = True
            if moved:
                parent.seps[idx - 1] = child.entries[0]
                parent._used = None
        elif isinstance(left, _Internal) and isinstance(child, _Internal):
            while (
                len(left.children) > 2
                and left.used_bytes() > self._min_fill
                and child.used_bytes() < self._min_fill
            ):
                sep = parent.seps[idx - 1]
                cost = _INTERNAL_CELL_OVERHEAD + len(sep[0]) + len(sep[1])
                if child.used_bytes() + cost > self._capacity:
                    break
                child.seps.insert(0, sep)
                child.children.insert(0, left.children.pop())
                parent.seps[idx - 1] = left.seps.pop()
                left._used = None
                child._used = None
                parent._used = None
                moved = True
        if moved:
            self._bump_structure_version()
            self._touch(left)
            self._touch(child)
            self._touch(parent)
        return moved and not self._is_underfull(child)

    def _borrow_from_right(
        self, parent: _Internal, idx: int, child: _Node, right: _Node
    ) -> bool:
        moved = False
        if isinstance(right, _Leaf) and isinstance(child, _Leaf):
            while (
                right.entries
                and right.used_bytes() > self._min_fill
                and child.used_bytes() < self._min_fill
            ):
                entry = right.entries[0]
                cost = _LEAF_CELL_OVERHEAD + len(entry[0]) + len(entry[1])
                if right.used_bytes() - cost < self._min_fill:
                    break
                if child.used_bytes() + cost > self._capacity:
                    break
                child.entries.append(right.entries.pop(0))
                right._used = None
                child._used = None
                moved = True
            if moved:
                parent.seps[idx] = right.entries[0]
                parent._used = None
        elif isinstance(right, _Internal) and isinstance(child, _Internal):
            while (
                len(right.children) > 2
                and right.used_bytes() > self._min_fill
                and child.used_bytes() < self._min_fill
            ):
                sep = parent.seps[idx]
                cost = _INTERNAL_CELL_OVERHEAD + len(sep[0]) + len(sep[1])
                if child.used_bytes() + cost > self._capacity:
                    break
                child.seps.append(sep)
                child.children.append(right.children.pop(0))
                parent.seps[idx] = right.seps.pop(0)
                right._used = None
                child._used = None
                parent._used = None
                moved = True
        if moved:
            self._bump_structure_version()
            self._touch(right)
            self._touch(child)
            self._touch(parent)
        return moved and not self._is_underfull(child)

    def _merge(self, parent: _Internal, sep_idx: int, left: _Node, right: _Node) -> bool:
        """Merge ``right`` into ``left`` (children ``sep_idx``/``sep_idx+1``)."""
        if isinstance(left, _Leaf) and isinstance(right, _Leaf):
            combined = left.used_bytes() + right.used_bytes() - _LEAF_HEADER
            if combined > self._capacity:
                return False
            left.entries.extend(right.entries)
            left.next = right.next
            left._used = None
        elif isinstance(left, _Internal) and isinstance(right, _Internal):
            sep = parent.seps[sep_idx]
            combined = (
                left.used_bytes()
                + right.used_bytes()
                - _INTERNAL_HEADER
                + _INTERNAL_CELL_OVERHEAD
                + len(sep[0])
                + len(sep[1])
                + 8
            )
            if combined > self._capacity:
                return False
            left.seps.append(sep)
            left.seps.extend(right.seps)
            left.children.extend(right.children)
            left._used = None
        else:  # pragma: no cover - siblings always share a level
            raise StorageError("attempted to merge nodes of different kinds")
        del parent.seps[sep_idx]
        del parent.children[sep_idx + 1]
        parent._used = None
        self._bump_structure_version()
        self._free_node(right)
        self._touch(left)
        self._touch(parent)
        return True

    def _ensure_open(self) -> None:
        if self._closed:
            raise StorageError("B+Tree is closed")
