"""Storage substrate: pager, buffer pool, codecs, B+Tree, document store.

This subpackage replaces the Berkeley DB dependency of the original ViST
implementation with a self-contained, paged B+Tree (duplicate keys, range
scans, dynamic deletes) plus the byte-level codecs its keys need.
"""

from repro.storage.bptree import BPlusTree, TreeStats
from repro.storage.cache import BufferPool, CacheStats
from repro.storage.docstore import DocStore, FileDocStore, MemoryDocStore
from repro.storage.pager import DEFAULT_PAGE_SIZE, FilePager, MemoryPager, Pager
from repro.storage.wal import WalPager
from repro.storage.serialization import (
    decode_bytes,
    decode_int,
    decode_str,
    decode_tuple,
    decode_uint,
    encode_bytes,
    encode_int,
    encode_str,
    encode_tuple,
    encode_uint,
    prefix_range_end,
)

__all__ = [
    "BPlusTree",
    "TreeStats",
    "BufferPool",
    "CacheStats",
    "DocStore",
    "FileDocStore",
    "MemoryDocStore",
    "Pager",
    "MemoryPager",
    "FilePager",
    "WalPager",
    "DEFAULT_PAGE_SIZE",
    "encode_uint",
    "decode_uint",
    "encode_int",
    "decode_int",
    "encode_bytes",
    "decode_bytes",
    "encode_str",
    "decode_str",
    "encode_tuple",
    "decode_tuple",
    "prefix_range_end",
]
