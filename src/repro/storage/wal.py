"""Crash-safe page storage: a write-ahead-logged pager.

:class:`WalPager` gives the B+Tree atomic, durable commits — something
the paper's Berkeley DB substrate provided and a plain
:class:`~repro.storage.pager.FilePager` does not.  All mutations
(page writes, allocations, frees, metadata updates) accumulate in an
in-memory overlay; :meth:`WalPager.commit` makes them durable with the
classic redo protocol:

1. every dirty page (including the rebuilt header page) is appended to a
   journal file, sealed with a CRC32 and a commit marker, and fsynced;
2. the pages are applied to the main file and fsynced;
3. the journal is deleted.

A crash before the marker lands leaves the main file untouched (the torn
journal is discarded on the next open); a crash after it is repaired by
replaying the journal.  ``sync()`` is an alias for ``commit()``, so a
B+Tree ``checkpoint()`` over a ``WalPager`` is a durable transaction
boundary.  The file layout is FilePager-compatible: a committed database
can be reopened with either pager.

The main file uses the v2 checksummed slot layout (see
:mod:`repro.storage.pager`): every page applied to it carries a CRC
trailer, verified on read — :class:`~repro.errors.CorruptPageError`
surfaces flipped bits at first touch.  Legacy v1 main files are migrated
on open, *before* recovery; journals from the pre-checksum era (magic
``ViSTWAL1``) are discarded as torn, which is safe because a v1 journal
can only coexist with a v1 main file that still holds the consistent
pre-commit state.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Optional

from repro.errors import CorruptPageError, PageError
from repro.storage.checksums import pack_trailer, verify_trailer
from repro.storage.pager import (
    DEFAULT_PAGE_SIZE,
    Pager,
    migrate_v1_page_file,
    pack_header_page,
    page_offset,
    peek_header,
    slot_size,
    unpack_header_page,
)

_WAL_MAGIC = b"ViSTWAL2"
_WAL_HEADER_FMT = "<8sII"  # magic, page_size, page count
_WAL_COMMIT = b"COMMITOK"
_NIL = 0
_HEADER_PEEK = 64  # enough bytes to cover the fixed pager-header fields

__all__ = ["WalPager"]


class WalPager(Pager):
    """A durable pager: FilePager layout plus a redo journal."""

    def __init__(
        self,
        path: str | os.PathLike,
        page_size: int = DEFAULT_PAGE_SIZE,
        journal_path: Optional[str | os.PathLike] = None,
    ) -> None:
        if page_size < 128:
            raise PageError(f"page size {page_size} is too small (min 128)")
        self.path = os.fspath(path)
        self.journal_path = (
            os.fspath(journal_path) if journal_path is not None else self.path + ".wal"
        )
        self.read_count = 0
        existing = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        if existing:
            with open(self.path, "rb") as fh:
                head = fh.read(_HEADER_PEEK)
            if peek_header(head, self.path)[1] == 1:
                migrate_v1_page_file(self.path)
        self._file = open(self.path, "r+b" if existing else "w+b")
        self._closed = False
        self._recover()
        self._freed: set[int] = set()
        if os.path.getsize(self.path) > 0:
            self._load_durable_header()
        else:
            self.page_size = page_size
            self._npages = 0
            self._freelist = _NIL
            self._meta = b""
            payload = pack_header_page(page_size, 0, _NIL, b"")
            self._file.write(payload + pack_trailer(payload))
            self._file.flush()
        self._overlay: dict[int, bytes] = {}
        self._header_dirty = False
        self._walk_freelist()

    def _load_durable_header(self) -> None:
        self._file.seek(0)
        head = self._file.read(_HEADER_PEEK)
        page_size = peek_header(head, self.path)[0]
        self.page_size = page_size
        self._file.seek(0)
        raw = self._file.read(slot_size(page_size))
        if len(raw) < slot_size(page_size):
            raise PageError(
                f"{self.path}: truncated header slot (wanted "
                f"{slot_size(page_size)} bytes, got {len(raw)})"
            )
        payload, trailer = raw[:page_size], raw[page_size:]
        ok, stored, computed = verify_trailer(payload, trailer)
        if not ok:
            raise CorruptPageError(self.path, 0, stored, computed, offset=0)
        _, self._npages, self._freelist, self._meta, _ = unpack_header_page(
            payload, self.path
        )

    def _walk_freelist(self) -> None:
        """Materialise the freed-page set from the freelist chain."""
        self._freed.clear()
        pid = self._freelist
        while pid != _NIL:
            if pid < 1 or pid > self._npages or pid in self._freed:
                raise PageError(
                    f"{self.path}: corrupt freelist chain at page {pid} "
                    f"(range 1..{self._npages}, {len(self._freed)} walked)"
                )
            self._freed.add(pid)
            (pid,) = struct.unpack_from("<Q", self._read_page(pid))

    # ------------------------------------------------------------------
    # Pager interface (all mutations land in the overlay)

    def allocate(self) -> int:
        self._ensure_open()
        if self._freelist != _NIL:
            pid = self._freelist
            raw = self._read_page(pid)
            (self._freelist,) = struct.unpack_from("<Q", raw)
            self._freed.discard(pid)
        else:
            self._npages += 1
            pid = self._npages
        self._overlay[pid] = b"\x00" * self.page_size
        self._header_dirty = True
        return pid

    def _check_range(self, page_id: int) -> None:
        if page_id < 1 or page_id > self._npages:
            raise PageError(
                f"{self.path}: page {page_id} out of range (1..{self._npages})"
            )

    def _check_live(self, page_id: int) -> None:
        self._check_range(page_id)
        if page_id in self._freed:
            raise PageError(f"{self.path}: page {page_id} is freed")

    def _read_page(self, page_id: int) -> bytes:
        """Read one page (overlay first, then checksummed main slot)."""
        cached = self._overlay.get(page_id)
        if cached is not None:
            return cached
        offset = page_offset(page_id, self.page_size)
        self._file.seek(offset)
        raw = self._file.read(slot_size(self.page_size))
        if len(raw) != slot_size(self.page_size):
            # allocated after the last commit but never written back: the
            # main file has no bytes for it yet
            return b"\x00" * self.page_size
        payload, trailer = raw[: self.page_size], raw[self.page_size :]
        ok, stored, computed = verify_trailer(payload, trailer)
        if not ok:
            raise CorruptPageError(
                self.path, page_id, stored, computed, offset=offset
            )
        return payload

    def read(self, page_id: int) -> bytes:
        self._ensure_open()
        self.read_count += 1
        self._check_live(page_id)
        return self._read_page(page_id)

    def write(self, page_id: int, data: bytes) -> None:
        self._ensure_open()
        self._check_live(page_id)
        self._overlay[page_id] = self._check_data(data)

    def free(self, page_id: int) -> None:
        self._ensure_open()
        self._check_live(page_id)
        self._overlay[page_id] = struct.pack("<Q", self._freelist) + b"\x00" * (
            self.page_size - 8
        )
        self._freelist = page_id
        self._freed.add(page_id)
        self._header_dirty = True

    def get_metadata(self) -> bytes:
        self._ensure_open()
        return self._meta

    def set_metadata(self, blob: bytes) -> None:
        self._ensure_open()
        self._meta = bytes(blob)
        self._header_dirty = True

    @property
    def page_count(self) -> int:
        return self._npages

    def sync(self) -> None:
        self.commit()

    def close(self) -> None:
        if self._closed:
            return
        self.commit()
        self._file.close()
        self._closed = True

    def abandon(self) -> None:
        """Drop the file handle *without* committing.

        Models a process death for crash-consistency harnesses: buffered
        mutations are lost, the on-disk files are left exactly as the last
        durability primitive left them, and the pager becomes unusable.
        """
        if self._closed:
            return
        self._file.close()
        self._closed = True

    # ------------------------------------------------------------------
    # the redo protocol

    def commit(self) -> None:
        """Make every buffered mutation durable (atomically)."""
        self._ensure_open()
        if not self._overlay and not self._header_dirty:
            return
        self._write_journal()
        self._apply_overlay()
        self._clear_journal()

    def rollback(self) -> None:
        """Discard every mutation since the last commit."""
        self._ensure_open()
        self._overlay.clear()
        self._header_dirty = False
        self._load_durable_header()
        self._walk_freelist()

    @property
    def dirty_page_count(self) -> int:
        """Pages buffered since the last commit (plus the header)."""
        return len(self._overlay) + (1 if self._header_dirty else 0)

    # -- internals (split out so tests can inject crashes between steps) --

    def _journal_entries(self) -> list[tuple[int, bytes]]:
        header = pack_header_page(
            self.page_size, self._npages, self._freelist, self._meta
        )
        entries = [(0, header)]
        entries.extend(sorted(self._overlay.items()))
        return entries

    def _write_journal(self) -> None:
        entries = self._journal_entries()
        crc = 0
        with open(self.journal_path, "wb") as journal:
            self._journal_write(
                journal,
                struct.pack(_WAL_HEADER_FMT, _WAL_MAGIC, self.page_size, len(entries)),
            )
            for pid, data in entries:
                record = struct.pack("<Q", pid) + data
                crc = zlib.crc32(record, crc)
                self._journal_write(journal, record)
            self._journal_write(journal, struct.pack("<I", crc))
            self._journal_write(journal, _WAL_COMMIT)
            self._journal_sync(journal)

    def _apply_overlay(self) -> None:
        for pid, data in self._journal_entries():
            self._main_write(pid, data, self.page_size)
        self._main_sync()
        self._overlay.clear()
        self._header_dirty = False

    def _clear_journal(self) -> None:
        self._journal_unlink()

    # -- durability primitives ------------------------------------------
    # Every byte the redo protocol makes durable flows through these five
    # methods, in commit order: journal writes, journal fsync, main-file
    # writes, main-file fsync, journal unlink.  Crash-consistency
    # harnesses (repro.testing.faults) subclass WalPager and override
    # them to enumerate and kill every write/fsync boundary.

    def _journal_write(self, journal, data: bytes) -> None:
        journal.write(data)

    def _journal_sync(self, journal) -> None:
        journal.flush()
        os.fsync(journal.fileno())

    def _main_write(self, page_id: int, data: bytes, page_size: int) -> None:
        self._file.seek(page_offset(page_id, page_size))
        self._file.write(data + pack_trailer(data))

    def _main_sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def _journal_unlink(self) -> None:
        if os.path.exists(self.journal_path):
            os.remove(self.journal_path)

    def _recover(self) -> None:
        """Replay a committed journal; discard a torn one."""
        if not os.path.exists(self.journal_path):
            return
        try:
            entries, page_size = self._read_journal()
        except PageError:
            os.remove(self.journal_path)  # torn write: pre-commit crash
            return
        for pid, data in entries:
            self._main_write(pid, data, page_size)
        self._main_sync()
        self._journal_unlink()

    def _read_journal(self) -> tuple[list[tuple[int, bytes]], int]:
        with open(self.journal_path, "rb") as journal:
            blob = journal.read()
        header_size = struct.calcsize(_WAL_HEADER_FMT)
        if len(blob) < header_size + 4 + len(_WAL_COMMIT):
            raise PageError(f"{self.journal_path}: journal too short")
        magic, page_size, count = struct.unpack_from(_WAL_HEADER_FMT, blob)
        if magic != _WAL_MAGIC:
            raise PageError(f"{self.journal_path}: bad journal magic {magic!r}")
        if not blob.endswith(_WAL_COMMIT):
            raise PageError(f"{self.journal_path}: journal missing commit marker")
        body = blob[header_size : -len(_WAL_COMMIT) - 4]
        (stored_crc,) = struct.unpack_from("<I", blob, len(blob) - len(_WAL_COMMIT) - 4)
        if zlib.crc32(body) != stored_crc:
            raise PageError(f"{self.journal_path}: journal checksum mismatch")
        record_size = 8 + page_size
        if len(body) != count * record_size:
            raise PageError(
                f"{self.journal_path}: journal body size mismatch "
                f"({len(body)} bytes for {count} record(s) of {record_size})"
            )
        entries = []
        for i in range(count):
            offset = i * record_size
            (pid,) = struct.unpack_from("<Q", body, offset)
            entries.append((pid, body[offset + 8 : offset + record_size]))
        return entries, page_size

    def _ensure_open(self) -> None:
        if self._closed:
            raise PageError("pager is closed")
