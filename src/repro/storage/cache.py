"""LRU buffer pool.

:class:`BufferPool` wraps any :class:`~repro.storage.pager.Pager` and keeps
the most recently used pages in memory with write-back semantics, so a
:class:`~repro.storage.pager.FilePager` behaves like a database buffer
manager: reads hit the cache, writes dirty the cached copy, and eviction or
``sync()`` pushes dirty pages down to the backing pager.

The pool also counts hits/misses/evictions, which the benchmarks report.

Thread safety: every pool operation runs under one internal ``RLock``.
The LRU *mutates on reads* (``move_to_end``), so even two concurrent
readers race without it — and the concurrent query path shares one pool
across all executor workers.  The lock is re-entrant because a miss can
re-enter the pool through the base pager in fault-injection harnesses.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import PageError
from repro.obs.metrics import MetricSet
from repro.storage.pager import Pager

__all__ = ["BufferPool", "CacheStats"]


@dataclass
class CacheStats(MetricSet):
    """Counters exposed by :attr:`BufferPool.stats`.

    Plain attributes on the hot path; the obs registry reads them via the
    inherited :meth:`~repro.obs.metrics.MetricSet.snapshot`.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from the cache (0.0 when never read)."""
        # snapshot both counters once: re-reading self.hits after summing
        # can report a rate above 1.0 under concurrent increments
        hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0


class BufferPool(Pager):
    """Write-back LRU cache in front of another pager.

    ``capacity`` is the number of pages held in memory.  The pool presents
    the full :class:`Pager` interface, so a B+Tree cannot tell whether it is
    talking to a raw pager or a buffered one.
    """

    def __init__(self, base: Pager, capacity: int = 256) -> None:
        if capacity < 1:
            raise PageError(f"buffer pool capacity must be >= 1, got {capacity}")
        self._base = base
        self._capacity = capacity
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        self._dirty: set[int] = set()
        self._lock = threading.RLock()
        self.stats = CacheStats()
        self.page_size = base.page_size
        self.read_count = 0

    @property
    def base(self) -> Pager:
        """The wrapped pager (query guards count its physical reads)."""
        return self._base

    # -- Pager interface -------------------------------------------------

    def allocate(self) -> int:
        with self._lock:
            pid = self._base.allocate()
            self._install(pid, b"\x00" * self.page_size, dirty=False)
            return pid

    def read(self, page_id: int) -> bytes:
        with self._lock:
            self.read_count += 1
            cached = self._pages.get(page_id)
            if cached is not None:
                self._pages.move_to_end(page_id)
                self.stats.hits += 1
                return cached
            self.stats.misses += 1
            # Checksum verification rides this miss path: the base pager
            # raises CorruptPageError *before* _install runs, so a frame
            # that failed its verify is never cached (and never re-served).
            data = self._base.read(page_id)
            self._install(page_id, data, dirty=False)
            return data

    def write(self, page_id: int, data: bytes) -> None:
        data = self._check_data(data)
        with self._lock:
            self._install(page_id, data, dirty=True)

    def free(self, page_id: int) -> None:
        with self._lock:
            self._pages.pop(page_id, None)
            self._dirty.discard(page_id)
            self._base.free(page_id)

    def get_metadata(self) -> bytes:
        return self._base.get_metadata()

    def set_metadata(self, blob: bytes) -> None:
        self._base.set_metadata(blob)

    @property
    def page_count(self) -> int:
        return self._base.page_count

    def sync(self) -> None:
        with self._lock:
            self.flush()
            self._base.sync()

    def close(self) -> None:
        with self._lock:
            self.flush()
            self._base.close()

    # -- cache mechanics -------------------------------------------------

    def flush(self) -> None:
        """Write every dirty page back to the base pager (keeps them cached)."""
        with self._lock:
            for pid in sorted(self._dirty):
                self._base.write(pid, self._pages[pid])
                self.stats.writebacks += 1
            self._dirty.clear()

    def _install(self, page_id: int, data: bytes, dirty: bool) -> None:
        self._pages[page_id] = data
        self._pages.move_to_end(page_id)
        if dirty:
            self._dirty.add(page_id)
        while len(self._pages) > self._capacity:
            victim, vdata = self._pages.popitem(last=False)
            self.stats.evictions += 1
            if victim in self._dirty:
                self._base.write(victim, vdata)
                self._dirty.discard(victim)
                self.stats.writebacks += 1
