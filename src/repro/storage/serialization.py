"""Order-preserving byte codecs for B+Tree keys.

The B+Tree (:mod:`repro.storage.bptree`) compares keys as raw bytes, so
every typed key must be encoded such that ``encode(a) < encode(b)`` exactly
when ``a < b`` under the intended typed ordering.  This module provides:

* unbounded unsigned and signed integers (length-prefixed magnitudes),
* byte strings and text, either *terminated* (safe inside composite keys,
  with prefix-range support) or *raw* (only as the last component),
* heterogeneous tuples with per-item type tags.

The integer codec supports arbitrarily large scope labels (the ViST root
scope defaults to ``2**128``), which is why a fixed-width ``struct`` format
is not enough.

Design notes
------------
*Unsigned ints* are encoded as ``len(magnitude)`` (one byte) followed by the
big-endian magnitude.  Because a larger value never has a shorter magnitude,
``(length, magnitude)`` compares like the value itself.  This caps values at
``2**2040 - 1`` — far beyond any scope used here.

*Signed ints* get a sign byte (``0x00`` negative, ``0x01`` otherwise); the
negative branch stores the bitwise complement of the unsigned encoding so
that more-negative values sort first.

*Terminated bytes* escape ``0x00`` as ``0x00 0x01`` and close with
``0x00 0x00``.  A proper prefix therefore sorts before every extension,
and :func:`prefix_range_end` yields the exclusive upper bound of the set
of encodings that start with a given prefix.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import CodecError

_MAX_UINT_BYTES = 255

# Type tags for tuple items.  Tag order only matters between values of the
# same slot when schemas mix types; None sorts before everything.
_TAG_NONE = 0x01
_TAG_INT = 0x05
_TAG_BYTES = 0x10
_TAG_STR = 0x15

__all__ = [
    "encode_uint",
    "decode_uint",
    "encode_int",
    "decode_int",
    "encode_bytes",
    "decode_bytes",
    "encode_str",
    "decode_str",
    "encode_tuple",
    "decode_tuple",
    "decode_items",
    "prefix_range_end",
]


# encode_uint is the innermost call of every key and node-state write —
# millions of calls per bulk ingest — and small magnitudes (flags, refs,
# chain lengths, shallow labels) dominate, so those come from a table.
_UINT_CACHE_LIMIT = 1 << 14
_UINT_CACHE = [
    bytes([(i.bit_length() + 7) // 8]) + i.to_bytes((i.bit_length() + 7) // 8, "big")
    if i
    else b"\x00"
    for i in range(_UINT_CACHE_LIMIT)
]


def encode_uint(value: int) -> bytes:
    """Encode a non-negative integer, preserving numeric order."""
    if 0 <= value < _UINT_CACHE_LIMIT:
        return _UINT_CACHE[value]
    if value < 0:
        raise CodecError(f"encode_uint requires a non-negative value, got {value}")
    nbytes = (value.bit_length() + 7) // 8
    if nbytes > _MAX_UINT_BYTES:
        raise CodecError(f"integer too large to encode ({nbytes} bytes)")
    return bytes([nbytes]) + value.to_bytes(nbytes, "big")


def decode_uint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode an unsigned integer; returns ``(value, next_offset)``."""
    if offset >= len(data):
        raise CodecError("truncated uint: missing length byte")
    nbytes = data[offset]
    end = offset + 1 + nbytes
    if end > len(data):
        raise CodecError("truncated uint: missing magnitude bytes")
    return int.from_bytes(data[offset + 1 : end], "big"), end


def encode_int(value: int) -> bytes:
    """Encode a signed integer, preserving numeric order."""
    if value >= 0:
        return b"\x01" + encode_uint(value)
    body = encode_uint(-value)
    return b"\x00" + bytes(255 - b for b in body)


def decode_int(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a signed integer; returns ``(value, next_offset)``."""
    if offset >= len(data):
        raise CodecError("truncated int: missing sign byte")
    sign = data[offset]
    if sign == 0x01:
        return decode_uint(data, offset + 1)
    if sign != 0x00:
        raise CodecError(f"bad int sign byte {sign:#x}")
    if offset + 1 >= len(data):
        raise CodecError("truncated negative int")
    nbytes = 255 - data[offset + 1]
    end = offset + 2 + nbytes
    if end > len(data):
        raise CodecError("truncated negative int magnitude")
    magnitude = bytes(255 - b for b in data[offset + 2 : end])
    return -int.from_bytes(magnitude, "big"), end


def encode_bytes(value: bytes) -> bytes:
    """Encode a byte string with 0x00-escaping and a terminator."""
    return value.replace(b"\x00", b"\x00\x01") + b"\x00\x00"


def decode_bytes(data: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Decode a terminated byte string; returns ``(value, next_offset)``."""
    out = bytearray()
    i = offset
    n = len(data)
    while i < n:
        b = data[i]
        if b != 0x00:
            out.append(b)
            i += 1
            continue
        if i + 1 >= n:
            raise CodecError("truncated escaped byte string")
        nxt = data[i + 1]
        if nxt == 0x00:
            return bytes(out), i + 2
        if nxt == 0x01:
            out.append(0x00)
            i += 2
            continue
        raise CodecError(f"bad escape byte {nxt:#x}")
    raise CodecError("unterminated byte string")


def encode_str(value: str) -> bytes:
    """Encode text as terminated UTF-8 (code-point order for ASCII-ish data)."""
    return encode_bytes(value.encode("utf-8"))


def decode_str(data: bytes, offset: int = 0) -> tuple[str, int]:
    """Decode a terminated UTF-8 string; returns ``(value, next_offset)``."""
    raw, end = decode_bytes(data, offset)
    try:
        return raw.decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise CodecError(f"invalid UTF-8 in encoded string: {exc}") from exc


def encode_tuple(items: Sequence) -> bytes:
    """Encode a tuple of ``None | int | bytes | str`` items, order-preserving.

    Tuples compare item-by-item; shorter tuples that are proper prefixes
    sort first, matching Python tuple comparison for same-typed slots.
    """
    parts: list[bytes] = []
    for item in items:
        if item is None:
            parts.append(bytes([_TAG_NONE]))
        elif isinstance(item, bool):
            raise CodecError("bool keys are ambiguous; use int explicitly")
        elif isinstance(item, int):
            parts.append(bytes([_TAG_INT]) + encode_int(item))
        elif isinstance(item, bytes):
            parts.append(bytes([_TAG_BYTES]) + encode_bytes(item))
        elif isinstance(item, str):
            parts.append(bytes([_TAG_STR]) + encode_str(item))
        else:
            raise CodecError(f"unsupported key item type {type(item).__name__}")
    return b"".join(parts)


def _decode_item(data: bytes, i: int) -> tuple[object, int]:
    """Decode one tagged tuple item at offset ``i``."""
    tag = data[i]
    i += 1
    if tag == _TAG_NONE:
        return None, i
    if tag == _TAG_INT:
        return decode_int(data, i)
    if tag == _TAG_BYTES:
        return decode_bytes(data, i)
    if tag == _TAG_STR:
        return decode_str(data, i)
    raise CodecError(f"unknown tuple tag {tag:#x} at offset {i - 1}")


def decode_tuple(data: bytes) -> tuple:
    """Decode a tuple previously produced by :func:`encode_tuple`."""
    items: list = []
    i = 0
    n = len(data)
    while i < n:
        value, i = _decode_item(data, i)
        items.append(value)
    return tuple(items)


def decode_items(data: bytes, offset: int, count: int) -> tuple[tuple, int]:
    """Decode exactly ``count`` tagged items starting at ``offset``.

    Returns ``(items, next_offset)``.  This is the partial-decode
    primitive behind the packed posting loader: every key of one
    D-Ancestor group shares the same ``(symbol, prefix_len, leading)``
    stem, so the loader decodes the stem's byte length once and then
    peels only the per-key tail (wildcard labels + ``n``) with this —
    instead of re-decoding the whole tuple per entry.
    """
    items: list = []
    i = offset
    for _ in range(count):
        if i >= len(data):
            raise CodecError(f"truncated tuple: expected {count} more item(s)")
        value, i = _decode_item(data, i)
        items.append(value)
    return tuple(items), i


def prefix_range_end(prefix: bytes) -> bytes:
    """Exclusive upper bound for all byte strings starting with ``prefix``.

    Increments the last non-0xFF byte; a prefix of all 0xFF bytes has no
    finite upper bound, so ``b"\\xff" * (len+1)``-style sentinels are
    returned instead (no valid encoding in this package reaches them).
    """
    out = bytearray(prefix)
    while out and out[-1] == 0xFF:
        out.pop()
    if not out:
        return prefix + b"\xff" * 8
    out[-1] += 1
    return bytes(out)
