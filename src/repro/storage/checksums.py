"""Page and record checksums for the corruption-defense layer.

Every v2 page-file slot and v2 docstore record carries a 4-byte trailer:
the CRC of its content.  CRC32C (Castagnoli) is used when a native
implementation is importable; otherwise the trailer falls back to
zlib's C-speed CRC-32 (IEEE) — both catch every single-bit flip and all
burst errors up to 32 bits, which is the property scrub and the read
path rely on.  The selected variant is recorded here once so the whole
package agrees on one function; files do not mix variants because the
fallback decision is an install-time property, not a per-file one.
"""

from __future__ import annotations

import struct
import zlib

try:  # a native CRC32C if the environment ships one (never required)
    import crc32c as _crc32c_mod

    def _crc(data: bytes) -> int:
        return _crc32c_mod.crc32c(data)

    CHECKSUM_VARIANT = "crc32c"
except ImportError:  # pragma: no cover - depends on the environment

    def _crc(data: bytes) -> int:
        return zlib.crc32(data)

    CHECKSUM_VARIANT = "crc32"

CHECKSUM_SIZE = 4
_CRC_FMT = "<I"

__all__ = [
    "CHECKSUM_SIZE",
    "CHECKSUM_VARIANT",
    "page_checksum",
    "pack_trailer",
    "unpack_trailer",
    "verify_trailer",
]


def page_checksum(data: bytes) -> int:
    """Checksum of a page payload or record body."""
    return _crc(data) & 0xFFFFFFFF


def pack_trailer(data: bytes) -> bytes:
    """The 4-byte trailer to append after ``data``."""
    return struct.pack(_CRC_FMT, page_checksum(data))


def unpack_trailer(trailer: bytes) -> int:
    """Decode a stored 4-byte trailer to its checksum value."""
    return struct.unpack(_CRC_FMT, trailer)[0]


def verify_trailer(data: bytes, trailer: bytes) -> tuple[bool, int, int]:
    """Check ``trailer`` against ``data``; returns ``(ok, stored, computed)``."""
    stored = unpack_trailer(trailer)
    computed = page_checksum(data)
    return stored == computed, stored, computed
