"""Document store: document id → serialized document payload.

ViST's DocId B+Tree maps scope labels to document *ids*; something still
has to map ids back to documents — for returning results, for the
post-verification filter (:mod:`repro.index.verification`) and for
deletion (re-deriving the sequence of the document being removed).

:class:`DocStore` assigns dense integer ids and keeps payloads either in
memory or in an append-only record file (``[len:u32][payload]`` records,
with a rebuilt offset table on open).  Payloads are opaque bytes; the
index layer stores the document's structure-encoded sequence plus its
original text through :mod:`repro.sequence.encoding` codecs.
"""

from __future__ import annotations

import os
import struct
from typing import Iterator, Optional

from repro.errors import StorageError

_LEN_FMT = "<I"
_LEN_SIZE = struct.calcsize(_LEN_FMT)
_TOMBSTONE = 0xFFFFFFFF

__all__ = ["DocStore", "MemoryDocStore", "FileDocStore"]


class DocStore:
    """Abstract id → payload store with dense integer ids."""

    def add(self, payload: bytes) -> int:
        """Store a payload and return its new document id."""
        raise NotImplementedError

    def get(self, doc_id: int) -> bytes:
        """Return the payload for ``doc_id``; raises for unknown/deleted ids."""
        raise NotImplementedError

    def remove(self, doc_id: int) -> None:
        """Delete a document (its id is never reused)."""
        raise NotImplementedError

    def __contains__(self, doc_id: int) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def ids(self) -> Iterator[int]:
        """Iterate live document ids in ascending order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources.  Idempotent."""

    def __enter__(self) -> "DocStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class MemoryDocStore(DocStore):
    """Dict-backed store for tests and ephemeral indexes."""

    def __init__(self) -> None:
        self._docs: dict[int, bytes] = {}
        self._next_id = 0

    def add(self, payload: bytes) -> int:
        doc_id = self._next_id
        self._next_id += 1
        self._docs[doc_id] = bytes(payload)
        return doc_id

    def get(self, doc_id: int) -> bytes:
        try:
            return self._docs[doc_id]
        except KeyError:
            raise StorageError(f"unknown document id {doc_id}") from None

    def remove(self, doc_id: int) -> None:
        if doc_id not in self._docs:
            raise StorageError(f"unknown document id {doc_id}")
        del self._docs[doc_id]

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._docs

    def __len__(self) -> int:
        return len(self._docs)

    def ids(self) -> Iterator[int]:
        return iter(sorted(self._docs))


class FileDocStore(DocStore):
    """Append-only record file with an in-memory offset table.

    Deleting rewrites the record's length word as a tombstone marker; the
    payload bytes stay in the file (compaction is out of scope — the paper
    never measures document-store reclamation).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        existing = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._file = open(self.path, "r+b" if existing else "w+b")
        self._offsets: list[Optional[int]] = []
        self._live = 0
        self._closed = False
        if existing:
            self._rebuild_offsets()

    def _rebuild_offsets(self) -> None:
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        self._file.seek(0)
        pos = 0
        while pos < size:
            header = self._file.read(_LEN_SIZE)
            if len(header) != _LEN_SIZE:
                raise StorageError(f"{self.path}: truncated record header at {pos}")
            (length,) = struct.unpack(_LEN_FMT, header)
            if length == _TOMBSTONE:
                # Tombstoned record: real length follows so we can skip it.
                extra = self._file.read(_LEN_SIZE)
                if len(extra) != _LEN_SIZE:
                    raise StorageError(f"{self.path}: truncated tombstone at {pos}")
                (real_len,) = struct.unpack(_LEN_FMT, extra)
                self._offsets.append(None)
                pos += 2 * _LEN_SIZE + real_len
            else:
                self._offsets.append(pos)
                self._live += 1
                pos += _LEN_SIZE + length
            self._file.seek(pos)
        if pos != size:
            raise StorageError(
                f"{self.path}: truncated record file (expected {pos} bytes, "
                f"found {size})"
            )

    def add(self, payload: bytes) -> int:
        self._ensure_open()
        self._file.seek(0, os.SEEK_END)
        pos = self._file.tell()
        self._file.write(struct.pack(_LEN_FMT, len(payload)))
        self._file.write(payload)
        doc_id = len(self._offsets)
        self._offsets.append(pos)
        self._live += 1
        return doc_id

    def get(self, doc_id: int) -> bytes:
        self._ensure_open()
        offset = self._offset(doc_id)
        self._file.seek(offset)
        (length,) = struct.unpack(_LEN_FMT, self._file.read(_LEN_SIZE))
        if length == _TOMBSTONE:
            raise StorageError(f"document {doc_id} was deleted")
        payload = self._file.read(length)
        if len(payload) != length:
            raise StorageError(f"{self.path}: truncated payload for doc {doc_id}")
        return payload

    def remove(self, doc_id: int) -> None:
        self._ensure_open()
        offset = self._offset(doc_id)
        self._file.seek(offset)
        (length,) = struct.unpack(_LEN_FMT, self._file.read(_LEN_SIZE))
        if length == _TOMBSTONE:
            raise StorageError(f"document {doc_id} already deleted")
        if length < _LEN_SIZE:
            # The record body is too small to hold the relocated length
            # word; pad semantics: tombstone + real length need 8 bytes, and
            # every record reserves at least the header, so rewrite in
            # place only when the body fits the length word.
            raise StorageError(
                f"document {doc_id} is too small ({length} bytes) to tombstone"
            )
        self._file.seek(offset)
        self._file.write(struct.pack(_LEN_FMT, _TOMBSTONE))
        self._file.write(struct.pack(_LEN_FMT, length - _LEN_SIZE))
        self._offsets[doc_id] = None
        self._live -= 1

    def __contains__(self, doc_id: int) -> bool:
        return 0 <= doc_id < len(self._offsets) and self._offsets[doc_id] is not None

    def __len__(self) -> int:
        return self._live

    def ids(self) -> Iterator[int]:
        return (i for i, off in enumerate(self._offsets) if off is not None)

    def compact(self) -> int:
        """Reclaim tombstoned payload space; returns bytes saved.

        Live records are rewritten into a fresh file and the original is
        replaced atomically.  Document ids are positional, so deleted
        records leave an 8-byte tombstone skeleton behind — bounded waste
        per deletion instead of the full payload.
        """
        self._ensure_open()
        tmp_path = self.path + ".compact"
        new_offsets: list[Optional[int]] = []
        with open(tmp_path, "w+b") as out:
            for doc_id, offset in enumerate(self._offsets):
                pos = out.tell()
                if offset is None:
                    out.write(struct.pack(_LEN_FMT, _TOMBSTONE))
                    out.write(struct.pack(_LEN_FMT, 0))
                    new_offsets.append(None)
                else:
                    payload = self.get(doc_id)
                    out.write(struct.pack(_LEN_FMT, len(payload)))
                    out.write(payload)
                    new_offsets.append(pos)
            new_size = out.tell()
        self._file.seek(0, os.SEEK_END)
        old_size = self._file.tell()
        self._file.close()
        os.replace(tmp_path, self.path)
        self._file = open(self.path, "r+b")
        self._offsets = new_offsets
        return old_size - new_size

    def close(self) -> None:
        if self._closed:
            return
        self._file.flush()
        self._file.close()
        self._closed = True

    def _offset(self, doc_id: int) -> int:
        if not 0 <= doc_id < len(self._offsets):
            raise StorageError(f"unknown document id {doc_id}")
        offset = self._offsets[doc_id]
        if offset is None:
            raise StorageError(f"document {doc_id} was deleted")
        return offset

    def _ensure_open(self) -> None:
        if self._closed:
            raise StorageError("document store is closed")
