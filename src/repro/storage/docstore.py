"""Document store: document id → serialized document payload.

ViST's DocId B+Tree maps scope labels to document *ids*; something still
has to map ids back to documents — for returning results, for the
post-verification filter (:mod:`repro.index.verification`) and for
deletion (re-deriving the sequence of the document being removed).

:class:`DocStore` assigns dense integer ids and keeps payloads either in
memory or in an append-only record file with a rebuilt offset table on
open.  Payloads are opaque bytes; the index layer stores the document's
structure-encoded sequence plus its original text through
:mod:`repro.sequence.encoding` codecs.

On-disk format (v2)
-------------------
Since format v2 the file opens with an 8-byte magic (``ViSTDOC2``) and
every record is ``[len:u32][crc:u32][payload]`` — the CRC
(:mod:`repro.storage.checksums`) covers the payload and is verified on
every :meth:`FileDocStore.get`, raising
:class:`~repro.errors.CorruptRecordError` on mismatch.  The docstore is
the salvage path's source of truth, so it must be able to *prove* its
records are intact.  Tombstoning a record rewrites its length word as
the tombstone marker and its CRC word as the relocated payload length
(``[0xFFFFFFFF][len]``), so any record — including an empty one — can be
deleted in place.  Legacy v1 files (no magic, ``[len][payload]``
records) are migrated to v2 on open via an atomic side-file rewrite.
"""

from __future__ import annotations

import os
import struct
import threading
from typing import Iterator, Optional

from repro.errors import CorruptRecordError, StorageError
from repro.storage.checksums import page_checksum

_LEN_FMT = "<I"
_LEN_SIZE = struct.calcsize(_LEN_FMT)
_TOMBSTONE = 0xFFFFFFFF
_DOC_MAGIC = b"ViSTDOC2"
_RECORD_HEADER = 2 * _LEN_SIZE  # length word + crc (or relocated length)

__all__ = ["DocStore", "MemoryDocStore", "FileDocStore", "migrate_v1_docstore"]


class DocStore:
    """Abstract id → payload store with dense integer ids."""

    def add(self, payload: bytes) -> int:
        """Store a payload and return its new document id."""
        raise NotImplementedError

    def get(self, doc_id: int) -> bytes:
        """Return the payload for ``doc_id``; raises for unknown/deleted ids."""
        raise NotImplementedError

    def remove(self, doc_id: int) -> None:
        """Delete a document (its id is never reused)."""
        raise NotImplementedError

    def __contains__(self, doc_id: int) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def ids(self) -> Iterator[int]:
        """Iterate live document ids in ascending order."""
        raise NotImplementedError

    @property
    def id_bound(self) -> int:
        """One past the highest id ever assigned (live or tombstoned)."""
        raise NotImplementedError

    def pop_last(self, doc_id: int) -> None:
        """Undo the most recent :meth:`add` — ``doc_id`` must be the last
        id assigned and still live.  Unlike :meth:`remove` the id is
        un-assigned (the next add reuses it), which is exactly what an
        insert rollback needs to keep ids dense."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources.  Idempotent."""

    def __enter__(self) -> "DocStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class MemoryDocStore(DocStore):
    """Dict-backed store for tests and ephemeral indexes."""

    def __init__(self) -> None:
        self._docs: dict[int, bytes] = {}
        self._next_id = 0

    def add(self, payload: bytes) -> int:
        doc_id = self._next_id
        self._next_id += 1
        self._docs[doc_id] = bytes(payload)
        return doc_id

    def get(self, doc_id: int) -> bytes:
        try:
            return self._docs[doc_id]
        except KeyError:
            raise StorageError(f"unknown document id {doc_id}") from None

    def remove(self, doc_id: int) -> None:
        if doc_id not in self._docs:
            raise StorageError(f"unknown document id {doc_id}")
        del self._docs[doc_id]

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._docs

    def __len__(self) -> int:
        return len(self._docs)

    def ids(self) -> Iterator[int]:
        return iter(sorted(self._docs))

    @property
    def id_bound(self) -> int:
        return self._next_id

    def pop_last(self, doc_id: int) -> None:
        if doc_id != self._next_id - 1 or doc_id not in self._docs:
            raise StorageError(
                f"pop_last: {doc_id} is not the last live document "
                f"(next id {self._next_id})"
            )
        del self._docs[doc_id]
        self._next_id -= 1


def migrate_v1_docstore(path: str) -> None:
    """Rewrite a legacy v1 record file into the checksummed v2 format.

    v1 live records are ``[len][payload]``; v1 tombstones are
    ``[0xFFFFFFFF][relocated_len][dead bytes]``.  The rewrite preserves
    ids positionally and goes through a side file + ``os.replace``.
    """
    tmp_path = path + ".v2migrate"
    size = os.path.getsize(path)
    with open(path, "rb") as src, open(tmp_path, "wb") as out:
        out.write(_DOC_MAGIC)
        pos = 0
        while pos < size:
            src.seek(pos)
            header = src.read(_LEN_SIZE)
            if len(header) != _LEN_SIZE:
                raise StorageError(f"{path}: truncated record header at {pos}")
            (length,) = struct.unpack(_LEN_FMT, header)
            if length == _TOMBSTONE:
                extra = src.read(_LEN_SIZE)
                if len(extra) != _LEN_SIZE:
                    raise StorageError(f"{path}: truncated tombstone at {pos}")
                (real_len,) = struct.unpack(_LEN_FMT, extra)
                # v2 tombstone: marker + relocated length + dead bytes
                out.write(struct.pack(_LEN_FMT, _TOMBSTONE))
                out.write(struct.pack(_LEN_FMT, real_len))
                out.write(b"\x00" * real_len)
                pos += 2 * _LEN_SIZE + real_len
            else:
                payload = src.read(length)
                if len(payload) != length:
                    raise StorageError(f"{path}: truncated payload at {pos}")
                out.write(struct.pack(_LEN_FMT, length))
                out.write(struct.pack(_LEN_FMT, page_checksum(payload)))
                out.write(payload)
                pos += _LEN_SIZE + length
        out.flush()
        os.fsync(out.fileno())
    os.replace(tmp_path, path)


class FileDocStore(DocStore):
    """Append-only record file with an in-memory offset table.

    Deleting rewrites the record's length word as a tombstone marker and
    its CRC word as the relocated payload length; the payload bytes stay
    in the file (bounded waste; :meth:`compact` reclaims them).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        existing = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        if existing:
            with open(self.path, "rb") as fh:
                magic = fh.read(len(_DOC_MAGIC))
            if magic != _DOC_MAGIC:
                migrate_v1_docstore(self.path)
        self._file = open(self.path, "r+b" if existing else "w+b")
        # seek+read/seek+write on the shared handle are two-step critical
        # sections; verified queries load payloads from worker threads, so
        # every record access funnels through this lock (RLock: compact()
        # re-enters via get())
        self._io_lock = threading.RLock()
        self._offsets: list[Optional[int]] = []
        self._live = 0
        self._closed = False
        if existing:
            self._rebuild_offsets()
        else:
            self._file.write(_DOC_MAGIC)

    def _rebuild_offsets(self) -> None:
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        self._file.seek(0)
        if self._file.read(len(_DOC_MAGIC)) != _DOC_MAGIC:
            raise StorageError(f"{self.path}: bad docstore magic")
        pos = len(_DOC_MAGIC)
        while pos < size:
            header = self._file.read(_RECORD_HEADER)
            if len(header) != _RECORD_HEADER:
                raise StorageError(f"{self.path}: truncated record header at {pos}")
            length, second = struct.unpack("<2I", header)
            if length == _TOMBSTONE:
                # second word is the relocated payload length
                self._offsets.append(None)
                pos += _RECORD_HEADER + second
            else:
                self._offsets.append(pos)
                self._live += 1
                pos += _RECORD_HEADER + length
            self._file.seek(pos)
        if pos != size:
            raise StorageError(
                f"{self.path}: truncated record file (expected {pos} bytes, "
                f"found {size})"
            )

    def add(self, payload: bytes) -> int:
        self._ensure_open()
        with self._io_lock:
            self._file.seek(0, os.SEEK_END)
            pos = self._file.tell()
            self._file.write(struct.pack(_LEN_FMT, len(payload)))
            self._file.write(struct.pack(_LEN_FMT, page_checksum(payload)))
            self._file.write(payload)
            doc_id = len(self._offsets)
            self._offsets.append(pos)
            self._live += 1
            return doc_id

    def get(self, doc_id: int) -> bytes:
        self._ensure_open()
        offset = self._offset(doc_id)
        with self._io_lock:
            self._file.seek(offset)
            length, stored = struct.unpack("<2I", self._file.read(_RECORD_HEADER))
            if length == _TOMBSTONE:
                raise StorageError(f"document {doc_id} was deleted")
            payload = self._file.read(length)
        if len(payload) != length:
            raise StorageError(
                f"{self.path}: truncated payload for doc {doc_id} at offset "
                f"{offset} (wanted {length} bytes, got {len(payload)})"
            )
        computed = page_checksum(payload)
        if stored != computed:
            raise CorruptRecordError(self.path, doc_id, stored, computed, offset)
        return payload

    def remove(self, doc_id: int) -> None:
        self._ensure_open()
        offset = self._offset(doc_id)
        with self._io_lock:
            self._file.seek(offset)
            (length,) = struct.unpack(_LEN_FMT, self._file.read(_LEN_SIZE))
            if length == _TOMBSTONE:
                raise StorageError(f"document {doc_id} already deleted")
            self._file.seek(offset)
            self._file.write(struct.pack(_LEN_FMT, _TOMBSTONE))
            self._file.write(struct.pack(_LEN_FMT, length))
            self._offsets[doc_id] = None
            self._live -= 1

    def __contains__(self, doc_id: int) -> bool:
        return 0 <= doc_id < len(self._offsets) and self._offsets[doc_id] is not None

    def __len__(self) -> int:
        return self._live

    def ids(self) -> Iterator[int]:
        return (i for i, off in enumerate(self._offsets) if off is not None)

    @property
    def id_bound(self) -> int:
        return len(self._offsets)

    @property
    def byte_size(self) -> int:
        """Current file length — the durable-commit watermark the index
        records so crash recovery can truncate uncommitted appends."""
        self._ensure_open()
        with self._io_lock:
            self._file.seek(0, os.SEEK_END)
            return self._file.tell()

    def pop_last(self, doc_id: int) -> None:
        self._ensure_open()
        with self._io_lock:
            if doc_id != len(self._offsets) - 1 or self._offsets[doc_id] is None:
                raise StorageError(
                    f"pop_last: {doc_id} is not the last live document "
                    f"(id bound {len(self._offsets)})"
                )
            offset = self._offsets.pop()
            self._live -= 1
            self._file.truncate(offset)

    def truncate_to(self, byte_size: int) -> int:
        """Drop every record past ``byte_size``; returns how many.

        Crash recovery: appends after the last durable commit are cut
        off wholesale and the offset table rebuilt from the survivors.
        ``byte_size`` must fall on a record boundary of the current file
        (it always does when it came from :attr:`byte_size`).
        """
        self._ensure_open()
        with self._io_lock:
            if byte_size < len(_DOC_MAGIC):
                raise StorageError(
                    f"{self.path}: cannot truncate below the magic "
                    f"({byte_size} bytes)"
                )
            self._file.seek(0, os.SEEK_END)
            if byte_size >= self._file.tell():
                return 0
            before = len(self._offsets)
            self._file.truncate(byte_size)
            self._offsets = []
            self._live = 0
            self._rebuild_offsets()
            return before - len(self._offsets)

    def flush(self, *, fsync: bool = False) -> None:
        """Push buffered appends to the OS (and optionally to disk)."""
        self._ensure_open()
        with self._io_lock:
            self._file.flush()
            if fsync:
                os.fsync(self._file.fileno())

    def compact(self) -> int:
        """Reclaim tombstoned payload space; returns bytes saved.

        Live records are rewritten into a fresh file and the original is
        replaced atomically.  Document ids are positional, so deleted
        records leave an 8-byte tombstone skeleton behind — bounded waste
        per deletion instead of the full payload.
        """
        self._ensure_open()
        with self._io_lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        tmp_path = self.path + ".compact"
        new_offsets: list[Optional[int]] = []
        with open(tmp_path, "w+b") as out:
            out.write(_DOC_MAGIC)
            for doc_id, offset in enumerate(self._offsets):
                pos = out.tell()
                if offset is None:
                    out.write(struct.pack(_LEN_FMT, _TOMBSTONE))
                    out.write(struct.pack(_LEN_FMT, 0))
                    new_offsets.append(None)
                else:
                    payload = self.get(doc_id)
                    out.write(struct.pack(_LEN_FMT, len(payload)))
                    out.write(struct.pack(_LEN_FMT, page_checksum(payload)))
                    out.write(payload)
                    new_offsets.append(pos)
            new_size = out.tell()
        self._file.seek(0, os.SEEK_END)
        old_size = self._file.tell()
        self._file.close()
        os.replace(tmp_path, self.path)
        self._file = open(self.path, "r+b")
        self._offsets = new_offsets
        return old_size - new_size

    def close(self) -> None:
        if self._closed:
            return
        self._file.flush()
        self._file.close()
        self._closed = True

    def _offset(self, doc_id: int) -> int:
        if not 0 <= doc_id < len(self._offsets):
            raise StorageError(f"unknown document id {doc_id}")
        offset = self._offsets[doc_id]
        if offset is None:
            raise StorageError(f"document {doc_id} was deleted")
        return offset

    def _ensure_open(self) -> None:
        if self._closed:
            raise StorageError("document store is closed")
