"""Fixed-size page storage underneath the B+Tree.

A :class:`Pager` hands out page ids, reads and writes fixed-size pages, and
persists a small metadata blob (used by the B+Tree for its root pointer and
entry count).  Two implementations are provided:

* :class:`MemoryPager` — pages live in a dict; fast, used for tests and for
  benchmark runs that do not need durability.
* :class:`FilePager` — pages live in a single file.  Page 0 is a header
  page holding the magic number, the page size, the free-list head and the
  user metadata blob; data pages start at id 1.  Freed pages are chained
  through their first 8 bytes and reused before the file grows.

The pager deliberately knows nothing about B+Tree node layout; it deals in
opaque ``bytes`` of exactly ``page_size``.

On-disk format (v2)
-------------------
Since format v2 (magic ``ViSTPGR2``) every on-disk page slot is
``page_size + 4`` bytes: the logical page payload followed by a CRC
trailer (:mod:`repro.storage.checksums`).  The trailer is stamped on
every write and verified on every read; a mismatch raises
:class:`~repro.errors.CorruptPageError` with the file path, page id,
byte offset and both checksums, so a single flipped bit surfaces at the
first touch instead of as a garbled B+Tree node (or a silently wrong
answer).  The *logical* ``page_size`` visible to clients is unchanged —
checksums are transparent to the B+Tree.

Legacy v1 files (magic ``ViSTPGR1``, no trailers) are migrated in place
on open: the file is rewritten slot-by-slot into a side file with fresh
trailers and atomically swapped in (``os.replace``), so the upgrade is
crash-safe and invisible to callers.

Transient faults
----------------
Raw file reads retry with exponential backoff on
:class:`~repro.errors.TransientIOError` / ``OSError`` (``io_attempts``
tries), so a flaky-disk blip is distinguished from persistent damage: a
fault that survives every attempt escapes as-is, one that clears mid-way
is invisible.  Fault harnesses inject through the overridable
:meth:`FilePager._read_at` / :meth:`FilePager._write_at` primitives.
"""

from __future__ import annotations

import os
import struct
import threading
import time
from typing import Optional

from repro.errors import CorruptPageError, PageError, TransientIOError
from repro.storage.checksums import CHECKSUM_SIZE, pack_trailer, verify_trailer

DEFAULT_PAGE_SIZE = 4096
PAGE_FORMAT_VERSION = 2

_MAGIC_V1 = b"ViSTPGR1"
_MAGIC_V2 = b"ViSTPGR2"
_NIL = 0  # page id 0 is the header, so 0 doubles as the nil pointer
_HEADER_FMT = "<8sIQQI"  # magic, page_size, npages, freelist head, meta length
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)

_DEFAULT_IO_ATTEMPTS = 3
_RETRY_BASE_DELAY = 0.001  # seconds; doubles per attempt

__all__ = [
    "Pager",
    "MemoryPager",
    "FilePager",
    "DEFAULT_PAGE_SIZE",
    "PAGE_FORMAT_VERSION",
    "pack_header_page",
    "unpack_header_page",
    "peek_header",
    "slot_size",
    "page_offset",
    "migrate_v1_page_file",
]


def slot_size(page_size: int) -> int:
    """On-disk bytes per page slot: the payload plus its CRC trailer."""
    return page_size + CHECKSUM_SIZE


def page_offset(page_id: int, page_size: int) -> int:
    """Byte offset of page ``page_id``'s slot in a v2 page file."""
    return page_id * slot_size(page_size)


def pack_header_page(
    page_size: int, npages: int, freelist: int, meta: bytes
) -> bytes:
    """Serialize a v2 header-page *payload* (shared by File- and WalPager).

    Returns exactly ``page_size`` bytes; the caller appends the CRC
    trailer when writing the slot to disk.
    """
    header = struct.pack(_HEADER_FMT, _MAGIC_V2, page_size, npages, freelist, len(meta))
    blob = header + meta
    if len(blob) > page_size:
        raise PageError(
            f"metadata blob of {len(meta)} bytes does not fit in the "
            f"{page_size}-byte header page"
        )
    return blob + b"\x00" * (page_size - len(blob))


def unpack_header_page(raw: bytes, path: str) -> tuple[int, int, int, bytes, int]:
    """Parse a header-page payload.

    Returns ``(page_size, npages, freelist, meta, version)`` where
    ``version`` is 1 for legacy trailer-less files and 2 for the current
    checksummed format.  ``raw`` must hold at least the fixed header
    fields; the meta blob is sliced out of whatever follows.
    """
    if len(raw) < _HEADER_SIZE:
        raise PageError(
            f"{path}: file too small to hold a pager header "
            f"({len(raw)} < {_HEADER_SIZE} bytes)"
        )
    magic, page_size, npages, freelist, meta_len = struct.unpack_from(_HEADER_FMT, raw)
    if magic == _MAGIC_V2:
        version = 2
    elif magic == _MAGIC_V1:
        version = 1
    else:
        raise PageError(f"{path}: bad magic {magic!r}, not a repro page file")
    if _HEADER_SIZE + meta_len > page_size:
        raise PageError(
            f"{path}: corrupt header (meta length {meta_len} exceeds page "
            f"size {page_size})"
        )
    if _HEADER_SIZE + meta_len > len(raw):
        raise PageError(
            f"{path}: truncated header (need {_HEADER_SIZE + meta_len} bytes, "
            f"have {len(raw)})"
        )
    return page_size, npages, freelist, raw[_HEADER_SIZE : _HEADER_SIZE + meta_len], version


def peek_header(raw: bytes, path: str) -> tuple[int, int]:
    """Parse just ``(page_size, version)`` from the fixed header fields.

    Unlike :func:`unpack_header_page` this needs only ``_HEADER_SIZE``
    bytes — enough to decide the slot size and format before reading the
    full header slot.
    """
    if len(raw) < _HEADER_SIZE:
        raise PageError(
            f"{path}: file too small to hold a pager header "
            f"({len(raw)} < {_HEADER_SIZE} bytes)"
        )
    magic, page_size = struct.unpack_from("<8sI", raw)
    if magic == _MAGIC_V2:
        return page_size, 2
    if magic == _MAGIC_V1:
        return page_size, 1
    raise PageError(f"{path}: bad magic {magic!r}, not a repro page file")


def migrate_v1_page_file(path: str) -> None:
    """Rewrite a legacy v1 page file into the checksummed v2 format.

    The rewrite goes to a side file which atomically replaces the
    original, so a crash mid-migration leaves the v1 file intact.
    """
    tmp_path = path + ".v2migrate"
    with open(path, "rb") as src:
        head = src.read(_HEADER_SIZE)
        page_size, version = peek_header(head, path)
        if version != 1:
            raise PageError(f"{path}: not a v1 page file (version {version})")
        src.seek(0)
        header_raw = src.read(page_size)
        page_size, npages, freelist, meta, _ = unpack_header_page(header_raw, path)
        with open(tmp_path, "wb") as out:
            payload = pack_header_page(page_size, npages, freelist, meta)
            out.write(payload + pack_trailer(payload))
            for pid in range(1, npages + 1):
                src.seek(pid * page_size)
                data = src.read(page_size)
                if len(data) != page_size:
                    raise PageError(
                        f"{path}: short read migrating page {pid} at offset "
                        f"{pid * page_size} (wanted {page_size}, got {len(data)})"
                    )
                out.write(data + pack_trailer(data))
            out.flush()
            os.fsync(out.fileno())
    os.replace(tmp_path, path)


class Pager:
    """Abstract page store.  Concrete pagers implement the I/O primitives."""

    page_size: int
    read_count: int = 0  # cumulative read() calls, for query page budgets

    def allocate(self) -> int:
        """Return the id of a fresh (or recycled) zeroed page."""
        raise NotImplementedError

    def read(self, page_id: int) -> bytes:
        """Return the ``page_size`` bytes of page ``page_id``."""
        raise NotImplementedError

    def write(self, page_id: int, data: bytes) -> None:
        """Replace page ``page_id``.  ``data`` may be shorter; it is padded."""
        raise NotImplementedError

    def free(self, page_id: int) -> None:
        """Release a page for reuse."""
        raise NotImplementedError

    def get_metadata(self) -> bytes:
        """Return the user metadata blob."""
        raise NotImplementedError

    def set_metadata(self, blob: bytes) -> None:
        """Persist the user metadata blob."""
        raise NotImplementedError

    @property
    def page_count(self) -> int:
        """Number of pages ever allocated (including freed ones)."""
        raise NotImplementedError

    def sync(self) -> None:
        """Flush buffered writes to the backing store."""

    def close(self) -> None:
        """Flush and release resources.  Idempotent."""

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _check_data(self, data: bytes) -> bytes:
        if len(data) > self.page_size:
            raise PageError(
                f"page payload of {len(data)} bytes exceeds page size {self.page_size}"
            )
        if len(data) < self.page_size:
            data = data + b"\x00" * (self.page_size - len(data))
        return data


class MemoryPager(Pager):
    """In-memory pager; the default backend for benchmarks and tests."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size < 128:
            raise PageError(f"page size {page_size} is too small (min 128)")
        self.page_size = page_size
        self.read_count = 0
        self._pages: dict[int, bytes] = {}
        self._free: list[int] = []
        self._next_id = 1
        self._meta = b""
        self._closed = False

    def allocate(self) -> int:
        self._ensure_open()
        if self._free:
            pid = self._free.pop()
        else:
            pid = self._next_id
            self._next_id += 1
        self._pages[pid] = b"\x00" * self.page_size
        return pid

    def _check_live(self, page_id: int) -> None:
        if page_id in self._pages:
            return
        if page_id in self._free:
            raise PageError(f"page {page_id} is freed")
        raise PageError(f"page {page_id} out of range (1..{self._next_id - 1})")

    def read(self, page_id: int) -> bytes:
        # hot path: one dict hit; misses fall through to diagnosis
        self.read_count += 1
        try:
            return self._pages[page_id]
        except KeyError:
            self._ensure_open()
            self._check_live(page_id)
            raise  # unreachable: _check_live always raises here

    def write(self, page_id: int, data: bytes) -> None:
        if page_id not in self._pages:
            self._ensure_open()
            self._check_live(page_id)
        self._pages[page_id] = self._check_data(data)

    def free(self, page_id: int) -> None:
        self._ensure_open()
        self._check_live(page_id)
        del self._pages[page_id]
        self._free.append(page_id)

    def get_metadata(self) -> bytes:
        self._ensure_open()
        return self._meta

    def set_metadata(self, blob: bytes) -> None:
        self._ensure_open()
        self._meta = bytes(blob)

    @property
    def page_count(self) -> int:
        return self._next_id - 1

    @property
    def live_page_count(self) -> int:
        """Pages currently holding data (allocated minus freed)."""
        return len(self._pages)

    def close(self) -> None:
        self._closed = True
        self._pages = {}  # closed reads must miss the hot path and raise

    def _ensure_open(self) -> None:
        if self._closed:
            raise PageError("pager is closed")


class FilePager(Pager):
    """Single-file pager with a persistent free list and metadata blob.

    The file layout is ``[header slot][data slot 1][data slot 2]...``
    where each slot is ``page_size + 4`` bytes (payload + CRC trailer).
    The user metadata blob is stored inside the header page after the
    fixed header fields, so it is limited to ``page_size - 32`` bytes —
    ample for a B+Tree root pointer and counters.

    The free list is walked once on open so reads and writes of freed
    pages are rejected (use-after-free detection), matching
    :class:`MemoryPager` semantics.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        page_size: int = DEFAULT_PAGE_SIZE,
        *,
        io_attempts: int = _DEFAULT_IO_ATTEMPTS,
    ) -> None:
        if page_size < 128:
            raise PageError(f"page size {page_size} is too small (min 128)")
        if io_attempts < 1:
            raise PageError(f"io_attempts must be >= 1, got {io_attempts}")
        self.path = os.fspath(path)
        self.read_count = 0
        self._io_attempts = io_attempts
        # seek()+read() on one shared file handle is a two-step critical
        # section: two threads interleaving them read the wrong offset.
        # Cache misses from concurrent queries funnel down here, so the
        # raw primitives serialise on this lock.
        self._io_lock = threading.Lock()
        existing = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        if existing and self._peek_version() == 1:
            migrate_v1_page_file(self.path)
        self._file = open(self.path, "r+b" if existing else "w+b")
        self._closed = False
        self._freed: set[int] = set()
        if existing:
            self._load_header()
            self._walk_freelist()
        else:
            self.page_size = page_size
            self._npages = 0
            self._freelist = _NIL
            self._meta = b""
            self._write_header()

    def _peek_version(self) -> int:
        with open(self.path, "rb") as fh:
            head = fh.read(_HEADER_SIZE)
        return peek_header(head, self.path)[1]

    def _load_header(self) -> None:
        head = self._read_at(0, _HEADER_SIZE)
        page_size = peek_header(head, self.path)[0]
        self.page_size = page_size
        raw = self._read_at(0, slot_size(page_size))
        if len(raw) < slot_size(page_size):
            raise PageError(
                f"{self.path}: truncated header slot (wanted "
                f"{slot_size(page_size)} bytes, got {len(raw)})"
            )
        payload, trailer = raw[:page_size], raw[page_size:]
        ok, stored, computed = verify_trailer(payload, trailer)
        if not ok:
            raise CorruptPageError(self.path, 0, stored, computed, offset=0)
        _, self._npages, self._freelist, self._meta, _ = unpack_header_page(
            payload, self.path
        )

    def _walk_freelist(self) -> None:
        """Materialise the free set from the on-disk freelist chain."""
        pid = self._freelist
        while pid != _NIL:
            if pid < 1 or pid > self._npages or pid in self._freed:
                raise PageError(
                    f"{self.path}: corrupt freelist chain at page {pid} "
                    f"(range 1..{self._npages}, {len(self._freed)} walked)"
                )
            self._freed.add(pid)
            (pid,) = struct.unpack_from("<Q", self._read_slot(pid))
        if len(self._freed) > self._npages:
            raise PageError(f"{self.path}: freelist longer than the file")

    def _write_header(self) -> None:
        payload = pack_header_page(self.page_size, self._npages, self._freelist, self._meta)
        self._write_at(0, payload + pack_trailer(payload))

    def _offset(self, page_id: int) -> int:
        if page_id < 1 or page_id > self._npages:
            raise PageError(
                f"{self.path}: page {page_id} out of range (1..{self._npages})"
            )
        return page_offset(page_id, self.page_size)

    # -- raw I/O primitives (overridden by fault-injection harnesses) ----

    def _read_at(self, offset: int, length: int) -> bytes:
        with self._io_lock:
            self._file.seek(offset)
            return self._file.read(length)

    def _write_at(self, offset: int, data: bytes) -> None:
        with self._io_lock:
            self._file.seek(offset)
            self._file.write(data)

    def _read_at_retrying(self, offset: int, length: int) -> bytes:
        """``_read_at`` with exponential backoff over transient faults."""
        last: Optional[BaseException] = None
        for attempt in range(self._io_attempts):
            try:
                return self._read_at(offset, length)
            except (TransientIOError, OSError) as exc:
                last = exc
                if attempt + 1 < self._io_attempts:
                    time.sleep(_RETRY_BASE_DELAY * (2**attempt))
        if isinstance(last, TransientIOError):
            raise last  # persisted through every retry: genuinely down
        raise PageError(
            f"{self.path}: I/O error at offset {offset} after "
            f"{self._io_attempts} attempt(s): {last}"
        ) from last

    def _read_slot(self, page_id: int) -> bytes:
        """Read + checksum-verify one page slot; returns the payload."""
        offset = self._offset(page_id)
        raw = self._read_at_retrying(offset, slot_size(self.page_size))
        if len(raw) != slot_size(self.page_size):
            raise PageError(
                f"{self.path}: short read on page {page_id} at offset {offset} "
                f"(wanted {slot_size(self.page_size)} bytes, got {len(raw)})"
            )
        payload, trailer = raw[: self.page_size], raw[self.page_size :]
        ok, stored, computed = verify_trailer(payload, trailer)
        if not ok:
            raise CorruptPageError(self.path, page_id, stored, computed, offset=offset)
        return payload

    def _write_slot(self, page_id: int, payload: bytes) -> None:
        self._write_at(self._offset(page_id), payload + pack_trailer(payload))

    # -- Pager interface -------------------------------------------------

    def allocate(self) -> int:
        self._ensure_open()
        if self._freelist != _NIL:
            pid = self._freelist
            raw = self._read_slot(pid)
            (self._freelist,) = struct.unpack_from("<Q", raw)
            self._freed.discard(pid)
            self._write_slot(pid, b"\x00" * self.page_size)
            self._write_header()
            return pid
        self._npages += 1
        pid = self._npages
        self._write_slot(pid, b"\x00" * self.page_size)
        self._write_header()
        return pid

    def _check_live(self, page_id: int) -> None:
        self._offset(page_id)  # raises out-of-range with context
        if page_id in self._freed:
            raise PageError(f"{self.path}: page {page_id} is freed")

    def read(self, page_id: int) -> bytes:
        self._ensure_open()
        self.read_count += 1
        self._check_live(page_id)
        return self._read_slot(page_id)

    def write(self, page_id: int, data: bytes) -> None:
        self._ensure_open()
        self._check_live(page_id)
        self._write_slot(page_id, self._check_data(data))

    def free(self, page_id: int) -> None:
        self._ensure_open()
        self._check_live(page_id)
        self._write_slot(
            page_id,
            struct.pack("<Q", self._freelist)
            + b"\x00" * (self.page_size - 8),
        )
        self._freelist = page_id
        self._freed.add(page_id)
        self._write_header()

    def get_metadata(self) -> bytes:
        self._ensure_open()
        return self._meta

    def set_metadata(self, blob: bytes) -> None:
        self._ensure_open()
        if _HEADER_SIZE + len(blob) > self.page_size:
            raise PageError(
                f"{self.path}: metadata blob of {len(blob)} bytes exceeds "
                f"header capacity ({self.page_size - _HEADER_SIZE} bytes)"
            )
        self._meta = bytes(blob)
        self._write_header()

    @property
    def page_count(self) -> int:
        return self._npages

    def sync(self) -> None:
        self._ensure_open()
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._closed:
            return
        self._write_header()
        self._file.flush()
        self._file.close()
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise PageError("pager is closed")
