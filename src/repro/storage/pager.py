"""Fixed-size page storage underneath the B+Tree.

A :class:`Pager` hands out page ids, reads and writes fixed-size pages, and
persists a small metadata blob (used by the B+Tree for its root pointer and
entry count).  Two implementations are provided:

* :class:`MemoryPager` — pages live in a dict; fast, used for tests and for
  benchmark runs that do not need durability.
* :class:`FilePager` — pages live in a single file.  Page 0 is a header
  page holding the magic number, the page size, the free-list head and the
  user metadata blob; data pages start at id 1.  Freed pages are chained
  through their first 8 bytes and reused before the file grows.

The pager deliberately knows nothing about B+Tree node layout; it deals in
opaque ``bytes`` of exactly ``page_size``.
"""

from __future__ import annotations

import os
import struct
from typing import Optional

from repro.errors import PageError

DEFAULT_PAGE_SIZE = 4096

_MAGIC = b"ViSTPGR1"
_NIL = 0  # page id 0 is the header, so 0 doubles as the nil pointer
_HEADER_FMT = "<8sIQQI"  # magic, page_size, npages, freelist head, meta length
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)

__all__ = [
    "Pager",
    "MemoryPager",
    "FilePager",
    "DEFAULT_PAGE_SIZE",
    "pack_header_page",
    "unpack_header_page",
]


def pack_header_page(
    page_size: int, npages: int, freelist: int, meta: bytes
) -> bytes:
    """Serialize a page-file header page (shared by File- and WalPager)."""
    header = struct.pack(_HEADER_FMT, _MAGIC, page_size, npages, freelist, len(meta))
    blob = header + meta
    if len(blob) > page_size:
        raise PageError("metadata blob does not fit in the header page")
    return blob + b"\x00" * (page_size - len(blob))


def unpack_header_page(raw: bytes, path: str) -> tuple[int, int, int, bytes]:
    """Parse a header page; returns ``(page_size, npages, freelist, meta)``."""
    if len(raw) < _HEADER_SIZE:
        raise PageError(f"{path}: file too small to hold a pager header")
    magic, page_size, npages, freelist, meta_len = struct.unpack_from(_HEADER_FMT, raw)
    if magic != _MAGIC:
        raise PageError(f"{path}: bad magic, not a repro page file")
    if _HEADER_SIZE + meta_len > page_size:
        raise PageError(f"{path}: corrupt header (meta length {meta_len})")
    return page_size, npages, freelist, raw[_HEADER_SIZE : _HEADER_SIZE + meta_len]


class Pager:
    """Abstract page store.  Concrete pagers implement the I/O primitives."""

    page_size: int

    def allocate(self) -> int:
        """Return the id of a fresh (or recycled) zeroed page."""
        raise NotImplementedError

    def read(self, page_id: int) -> bytes:
        """Return the ``page_size`` bytes of page ``page_id``."""
        raise NotImplementedError

    def write(self, page_id: int, data: bytes) -> None:
        """Replace page ``page_id``.  ``data`` may be shorter; it is padded."""
        raise NotImplementedError

    def free(self, page_id: int) -> None:
        """Release a page for reuse."""
        raise NotImplementedError

    def get_metadata(self) -> bytes:
        """Return the user metadata blob."""
        raise NotImplementedError

    def set_metadata(self, blob: bytes) -> None:
        """Persist the user metadata blob."""
        raise NotImplementedError

    @property
    def page_count(self) -> int:
        """Number of pages ever allocated (including freed ones)."""
        raise NotImplementedError

    def sync(self) -> None:
        """Flush buffered writes to the backing store."""

    def close(self) -> None:
        """Flush and release resources.  Idempotent."""

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _check_data(self, data: bytes) -> bytes:
        if len(data) > self.page_size:
            raise PageError(
                f"page payload of {len(data)} bytes exceeds page size {self.page_size}"
            )
        if len(data) < self.page_size:
            data = data + b"\x00" * (self.page_size - len(data))
        return data


class MemoryPager(Pager):
    """In-memory pager; the default backend for benchmarks and tests."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size < 128:
            raise PageError(f"page size {page_size} is too small (min 128)")
        self.page_size = page_size
        self._pages: dict[int, bytes] = {}
        self._free: list[int] = []
        self._next_id = 1
        self._meta = b""
        self._closed = False

    def allocate(self) -> int:
        self._ensure_open()
        if self._free:
            pid = self._free.pop()
        else:
            pid = self._next_id
            self._next_id += 1
        self._pages[pid] = b"\x00" * self.page_size
        return pid

    def read(self, page_id: int) -> bytes:
        self._ensure_open()
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageError(f"page {page_id} does not exist") from None

    def write(self, page_id: int, data: bytes) -> None:
        self._ensure_open()
        if page_id not in self._pages:
            raise PageError(f"page {page_id} does not exist")
        self._pages[page_id] = self._check_data(data)

    def free(self, page_id: int) -> None:
        self._ensure_open()
        if page_id not in self._pages:
            raise PageError(f"page {page_id} does not exist")
        del self._pages[page_id]
        self._free.append(page_id)

    def get_metadata(self) -> bytes:
        self._ensure_open()
        return self._meta

    def set_metadata(self, blob: bytes) -> None:
        self._ensure_open()
        self._meta = bytes(blob)

    @property
    def page_count(self) -> int:
        return self._next_id - 1

    @property
    def live_page_count(self) -> int:
        """Pages currently holding data (allocated minus freed)."""
        return len(self._pages)

    def close(self) -> None:
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise PageError("pager is closed")


class FilePager(Pager):
    """Single-file pager with a persistent free list and metadata blob.

    The file layout is ``[header page][data page 1][data page 2]...``.  The
    user metadata blob is stored inside the header page after the fixed
    header fields, so it is limited to ``page_size - 32`` bytes — ample for
    a B+Tree root pointer and counters.
    """

    def __init__(self, path: str | os.PathLike, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size < 128:
            raise PageError(f"page size {page_size} is too small (min 128)")
        self.path = os.fspath(path)
        existing = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._file = open(self.path, "r+b" if existing else "w+b")
        self._closed = False
        if existing:
            self._load_header(page_size)
        else:
            self.page_size = page_size
            self._npages = 0
            self._freelist = _NIL
            self._meta = b""
            self._write_header()

    def _load_header(self, requested_page_size: int) -> None:
        self._file.seek(0)
        raw = self._file.read(requested_page_size)
        page_size, npages, freelist, meta = unpack_header_page(raw, self.path)
        self.page_size = page_size
        if len(raw) < page_size:
            self._file.seek(0)
            raw = self._file.read(page_size)
            page_size, npages, freelist, meta = unpack_header_page(raw, self.path)
        self._npages = npages
        self._freelist = freelist
        self._meta = meta

    def _write_header(self) -> None:
        blob = pack_header_page(self.page_size, self._npages, self._freelist, self._meta)
        self._file.seek(0)
        self._file.write(blob)

    def _offset(self, page_id: int) -> int:
        if page_id < 1 or page_id > self._npages:
            raise PageError(f"page {page_id} out of range (1..{self._npages})")
        return page_id * self.page_size

    def allocate(self) -> int:
        self._ensure_open()
        if self._freelist != _NIL:
            pid = self._freelist
            raw = self.read(pid)
            (self._freelist,) = struct.unpack_from("<Q", raw)
            self.write(pid, b"\x00" * self.page_size)
            self._write_header()
            return pid
        self._npages += 1
        pid = self._npages
        self._file.seek(pid * self.page_size)
        self._file.write(b"\x00" * self.page_size)
        self._write_header()
        return pid

    def read(self, page_id: int) -> bytes:
        self._ensure_open()
        self._file.seek(self._offset(page_id))
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise PageError(f"short read on page {page_id}")
        return data

    def write(self, page_id: int, data: bytes) -> None:
        self._ensure_open()
        data = self._check_data(data)
        self._file.seek(self._offset(page_id))
        self._file.write(data)

    def free(self, page_id: int) -> None:
        self._ensure_open()
        self._offset(page_id)  # validates the id
        self.write(page_id, struct.pack("<Q", self._freelist))
        self._freelist = page_id
        self._write_header()

    def get_metadata(self) -> bytes:
        self._ensure_open()
        return self._meta

    def set_metadata(self, blob: bytes) -> None:
        self._ensure_open()
        if _HEADER_SIZE + len(blob) > self.page_size:
            raise PageError(
                f"metadata blob of {len(blob)} bytes exceeds header capacity"
            )
        self._meta = bytes(blob)
        self._write_header()

    @property
    def page_count(self) -> int:
        return self._npages

    def sync(self) -> None:
        self._ensure_open()
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._closed:
            return
        self._write_header()
        self._file.flush()
        self._file.close()
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise PageError("pager is closed")
