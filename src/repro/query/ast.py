"""Query trees and query sequences.

A structural XML query is a tree (paper Figure 2): nodes are element
labels, ``*`` (any single element) or ``//`` (any chain of elements, zero
or more), and nodes may carry an equality predicate on their value.

Translation (:mod:`repro.query.translate`) turns a query tree into one or
more *query sequences* of :class:`QueryItem`.  Unlike data items, a query
item's prefix is a tuple of *tokens*: concrete labels mixed with
:class:`Star`/:class:`Dslash` placeholders.  Each placeholder carries the
identity of the wildcard query node it came from, so the matcher can bind
it on first contact and instantiate later occurrences consistently —
Section 3.3: "the matching of ``(L, P*)`` will instantiate the ``*`` in
``(v2, P*L)`` to a concrete symbol".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Union

from repro.errors import QueryError

STAR_LABEL = "*"
DSLASH_LABEL = "//"

__all__ = [
    "STAR_LABEL",
    "DSLASH_LABEL",
    "QueryNode",
    "Star",
    "Dslash",
    "PrefixToken",
    "QueryItem",
    "QuerySequence",
]


@dataclass
class QueryNode:
    """One node of a query tree.

    ``predicate`` marks children attached by a ``[...]`` predicate (set
    by the XPath parser); the remaining child, if any, continues the main
    location path and its deepest node is the query's *result node* —
    matching is unaffected, but node-granularity results
    (:meth:`repro.index.base.XmlIndexBase.query_nodes`) need the
    distinction.
    """

    label: str  # element/attribute name, or STAR_LABEL / DSLASH_LABEL
    children: list["QueryNode"] = field(default_factory=list)
    value: Optional[str] = None  # value predicate operand
    predicate: bool = False  # True when this branch came from [...]
    op: str = "="  # value comparison: = != < <= > >=

    VALUE_OPS = ("=", "!=", "<=", ">=", "<", ">")

    def __post_init__(self) -> None:
        if not self.label:
            raise QueryError("query node label must be non-empty")
        if self.op not in self.VALUE_OPS:
            raise QueryError(f"unsupported value operator {self.op!r}")

    def main_child(self) -> Optional["QueryNode"]:
        """The child continuing the location path (None at the result node)."""
        for child in reversed(self.children):
            if not child.predicate:
                return child
        return None

    def result_node(self) -> "QueryNode":
        """The deepest main-path node — what an XPath engine would return."""
        node = self
        while True:
            nxt = node.main_child()
            if nxt is None:
                return node
            node = nxt

    @property
    def is_star(self) -> bool:
        return self.label == STAR_LABEL

    @property
    def is_dslash(self) -> bool:
        return self.label == DSLASH_LABEL

    @property
    def is_wildcard(self) -> bool:
        return self.is_star or self.is_dslash

    def add(self, child: "QueryNode") -> "QueryNode":
        self.children.append(child)
        return child

    def preorder(self) -> Iterator["QueryNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def to_xpath(self) -> str:
        """Render back to an XPath-subset string (for messages and tests)."""
        return "/" + self._xpath_inner()

    def _xpath_inner(self) -> str:
        # A `//` node renders as an empty step, so "a / <empty> / b" prints
        # as the familiar "a//b".
        out = "" if self.is_dslash else self.label
        if self.value is not None:
            out += f"[text(){self.op}'{self.value}']"
        if not self.children:
            return out
        main = self.main_child()
        for child in self.children:
            if child is not main:
                if child.is_dslash:
                    # a descendant branch renders as [//d]: its own inner
                    # form starts "/d" (empty step + separator), so one
                    # more slash restores the // the parser expects
                    out += f"[/{child._xpath_inner()}]"
                else:
                    out += f"[{child._xpath_inner()}]"
        if main is None:
            return out
        return out + "/" + main._xpath_inner()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryNode({self.label!r}, children={len(self.children)}, value={self.value!r})"


@dataclass(frozen=True)
class Star:
    """Prefix token for a ``*`` wildcard node: exactly one label."""

    wid: int  # wildcard identity for consistent binding

    def __str__(self) -> str:  # pragma: no cover
        return "*"


@dataclass(frozen=True)
class Dslash:
    """Prefix token for a ``//`` wildcard node: zero or more labels."""

    wid: int

    def __str__(self) -> str:  # pragma: no cover
        return "//"


PrefixToken = Union[str, Star, Dslash]


@dataclass(frozen=True)
class QueryItem:
    """One element of a query sequence: symbol plus a prefix pattern."""

    symbol: Union[str, int]  # label, or hashed value
    prefix: tuple[PrefixToken, ...]

    @property
    def has_wildcards(self) -> bool:
        return any(not isinstance(tok, str) for tok in self.prefix)

    @property
    def min_prefix_len(self) -> int:
        """Shortest data prefix this pattern can match (``//`` may be empty)."""
        return sum(1 for tok in self.prefix if isinstance(tok, (str, Star)))

    @property
    def is_exact_len(self) -> bool:
        """True when every data prefix matching this pattern has one length."""
        return not any(isinstance(tok, Dslash) for tok in self.prefix)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        sym = f"v:{self.symbol:x}" if isinstance(self.symbol, int) else self.symbol
        return f"({sym},{''.join(str(t) for t in self.prefix)})"


class QuerySequence:
    """An immutable list of query items (one alternative of a query)."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[QueryItem]) -> None:
        object.__setattr__(self, "items", tuple(items))
        if not self.items:
            raise QueryError("a query sequence must contain at least one item")

    def __setattr__(self, *_args) -> None:  # pragma: no cover - guard
        raise AttributeError("QuerySequence is immutable")

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[QueryItem]:
        return iter(self.items)

    def __getitem__(self, index: int) -> QueryItem:
        return self.items[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuerySequence):
            return NotImplemented
        return self.items == other.items

    def __hash__(self) -> int:
        return hash(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QuerySequence({' '.join(map(str, self.items))})"
