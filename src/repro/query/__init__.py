"""Query layer: AST, XPath-subset parser, and sequence translation."""

from repro.query.ast import (
    DSLASH_LABEL,
    STAR_LABEL,
    Dslash,
    PrefixToken,
    QueryItem,
    QueryNode,
    QuerySequence,
    Star,
)
from repro.query.translate import QueryTranslator
from repro.query.xpath import parse_xpath

__all__ = [
    "QueryNode",
    "QueryItem",
    "QuerySequence",
    "Star",
    "Dslash",
    "PrefixToken",
    "STAR_LABEL",
    "DSLASH_LABEL",
    "parse_xpath",
    "QueryTranslator",
]
