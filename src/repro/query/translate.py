"""Query tree → structure-encoded query sequence(s) (paper Section 2).

Conversion rules (paper, "Mapping Data and Queries to Structure-Encoded
Sequences"):

* queries are emitted in preorder with the *same* sibling order as the
  data transform (schema order, else lexicographic), so a query confined
  to one record structure is a non-contiguous subsequence of the data;
* wildcard nodes (``*`` and ``//``) are discarded, but the prefixes of
  their descendants carry a :class:`~repro.query.ast.Star` /
  :class:`~repro.query.ast.Dslash` placeholder token;
* value predicates become hashed-value items right after their node,
  mirroring where the data transform puts value leaves;
* branches with *equal child labels* (the paper's ``Q5 = /A[B/C]/B/D``)
  are ambiguous under sibling ordering, so the translator emits one query
  sequence per distinct permutation of the same-labelled children and the
  caller unions the results;
* a branch rooted at a wildcard has no knowable position among its
  siblings (the wildcard may match any label), so the translator also
  emits one alternative per placement of each wildcard branch among the
  concrete sibling groups — e.g. Table 3's Q8, where ``*[person=...]``
  may fall before or after ``date`` in document order.

``max_alternatives`` caps the combinatorial growth; queries past the cap
raise :class:`~repro.errors.TranslationError` (the paper's footnote-2
fallback of splitting the query and joining results is delegated to the
verified evaluation mode).
"""

from __future__ import annotations

from itertools import permutations
from typing import Optional

from repro.errors import TranslationError
from repro.query.ast import (
    Dslash,
    PrefixToken,
    QueryItem,
    QueryNode,
    QuerySequence,
    Star,
)
from repro.sequence.transform import SequenceEncoder

__all__ = ["QueryTranslator", "relax_query_tree"]


def relax_query_tree(root: QueryNode) -> QueryNode:
    """Weaken a query so that its translation stays small and complete.

    Used for the paper's footnote-2 fallback and for exact-mode
    candidate generation: queries whose same-label branches (or
    wildcard-branch placements) would explode into too many sequence
    alternatives are *relaxed* — per parent, only the largest branch of
    each label survives, and a wildcard branch survives only when the
    parent has no concrete branches at all.  The latter is a soundness
    requirement, not just a size optimisation: a wildcard branch may
    bind the very node a concrete sibling binds (``/r[*/b][a/c]``
    against one ``a`` holding both ``b`` and ``c``), which puts its
    items *inside* the sibling's subtree in document order — a position
    the translator's between-groups placement enumeration can never
    emit.  Every document matching the original query matches the
    relaxed one (only constraints are dropped), so raw-matching the
    relaxed query and verifying candidates against the **original**
    tree is sound and complete under the verifier's XPath semantics.
    """
    relaxed = QueryNode(root.label, value=root.value, op=root.op)
    best: dict[str, QueryNode] = {}
    wildcard_best: Optional[QueryNode] = None
    for child in root.children:
        if child.is_wildcard:
            if wildcard_best is None or _tree_size(child) > _tree_size(wildcard_best):
                wildcard_best = child
        else:
            seen = best.get(child.label)
            if seen is None or _tree_size(child) > _tree_size(seen):
                best[child.label] = child
    for child in best.values():
        relaxed.add(relax_query_tree(child))
    if wildcard_best is not None and not best:
        relaxed.add(relax_query_tree(wildcard_best))
    return relaxed


def _tree_size(node: QueryNode) -> int:
    return sum(1 for _ in node.preorder())


class QueryTranslator:
    """Translates query trees with the sibling order of a data encoder."""

    def __init__(
        self,
        encoder: Optional[SequenceEncoder] = None,
        *,
        max_alternatives: int = 24,
    ) -> None:
        self.encoder = encoder if encoder is not None else SequenceEncoder()
        if max_alternatives < 1:
            raise TranslationError("max_alternatives must be >= 1")
        self.max_alternatives = max_alternatives

    # -- public API --------------------------------------------------------

    def translate(self, root: QueryNode) -> list[QuerySequence]:
        """Return every query-sequence alternative for the query tree."""
        self._wid_counter = 0
        alternatives: list[list[QueryItem]] = [[]]
        self._emit(root, (), alternatives)
        unique: dict[tuple, QuerySequence] = {}
        for items in alternatives:
            seq = QuerySequence(items)
            unique.setdefault(seq.items, seq)
        return list(unique.values())

    # -- internals -----------------------------------------------------------

    def _emit(
        self,
        node: QueryNode,
        prefix: tuple[PrefixToken, ...],
        alternatives: list[list[QueryItem]],
    ) -> None:
        """Append items for ``node``'s subtree to every alternative."""
        if node.is_wildcard:
            token: PrefixToken = (
                Star(self._next_wid()) if node.is_star else Dslash(self._next_wid())
            )
            child_prefix = prefix + (token,)
            if node.value is not None and node.op == "=":
                # e.g. /r/*[text='v']: the wildcard node is discarded but
                # its value leaf is expressible — prefix ends in the
                # placeholder, exactly Table 2's (v5, P*L) pattern.
                # Non-equality comparisons cannot be expressed over hashes
                # and are enforced by verification instead.
                value_item = QueryItem(self.encoder.hasher(node.value), child_prefix)
                for alt in alternatives:
                    alt.append(value_item)
        else:
            item = QueryItem(node.label, prefix)
            for alt in alternatives:
                alt.append(item)
            child_prefix = prefix + (node.label,)
            if node.value is not None and node.op == "=":
                value_item = QueryItem(self.encoder.hasher(node.value), child_prefix)
                for alt in alternatives:
                    alt.append(value_item)
        self._emit_children(node, child_prefix, alternatives)

    def _emit_children(
        self,
        node: QueryNode,
        child_prefix: tuple[PrefixToken, ...],
        alternatives: list[list[QueryItem]],
    ) -> None:
        fixed, floating = self._grouped_children(node)
        orderings: list[list[list[QueryNode]]]
        if node.is_wildcard and len(fixed) + len(floating) > 1:
            # Under a wildcard parent the schema order is unknowable (it
            # depends on what the wildcard matches), so every group
            # ordering is possible.
            all_groups = fixed + [[w] for w in floating]
            self._check_cap(len(alternatives) * _factorial(len(all_groups)))
            orderings = [list(p) for p in permutations(all_groups)]
        else:
            orderings = [fixed]
            for wildcard_child in floating:
                next_orderings = []
                for ordering in orderings:
                    for pos in range(len(ordering) + 1):
                        next_orderings.append(
                            ordering[:pos] + [[wildcard_child]] + ordering[pos:]
                        )
                orderings = next_orderings
        self._check_cap(len(alternatives) * len(orderings))
        if len(orderings) == 1:
            for group in orderings[0]:
                self._emit_group(group, child_prefix, alternatives)
            return
        base = [list(alt) for alt in alternatives]
        merged: list[list[QueryItem]] = []
        for ordering in orderings:
            forked = [list(alt) for alt in base]
            for group in ordering:
                self._emit_group(group, child_prefix, forked)
            merged.extend(forked)
        alternatives[:] = merged

    def _emit_group(
        self,
        group: list[QueryNode],
        child_prefix: tuple[PrefixToken, ...],
        alternatives: list[list[QueryItem]],
    ) -> None:
        """Emit one sibling group; same-label groups fork per permutation."""
        if len(group) == 1:
            self._emit(group[0], child_prefix, alternatives)
            return
        self._check_cap(len(alternatives) * _factorial(len(group)))
        base = [list(alt) for alt in alternatives]
        merged: list[list[QueryItem]] = []
        for order in permutations(range(len(group))):
            forked = [list(alt) for alt in base]
            for idx in order:
                self._emit(group[idx], child_prefix, forked)
            merged.extend(forked)
        alternatives[:] = merged

    def _grouped_children(
        self, node: QueryNode
    ) -> tuple[list[list[QueryNode]], list[QueryNode]]:
        """Children in data sibling order.

        Returns ``(fixed, floating)``: ``fixed`` is the ordered list of
        concrete sibling groups (same-label children grouped together);
        ``floating`` are wildcard children, whose placement the caller
        enumerates.
        """
        schema = self.encoder.schema
        concrete = [c for c in node.children if not c.is_wildcard]
        floating = [c for c in node.children if c.is_wildcard]

        def label_key(child: QueryNode) -> tuple:
            if schema is not None and not node.is_wildcard:
                return tuple(schema.sibling_position(node.label, child.label))
            return (0, child.label)

        ordered = sorted(
            enumerate(concrete), key=lambda entry: (label_key(entry[1]), entry[0])
        )
        fixed: list[list[QueryNode]] = []
        for _, child in ordered:
            if fixed and fixed[-1][0].label == child.label:
                fixed[-1].append(child)
            else:
                fixed.append([child])
        return fixed, floating

    def _check_cap(self, count: int) -> None:
        if count > self.max_alternatives:
            raise TranslationError(
                f"query expands to {count} sequence alternatives "
                f"(cap {self.max_alternatives}); split the query, simplify its "
                "branches, or raise max_alternatives"
            )

    def _next_wid(self) -> int:
        wid = self._wid_counter
        self._wid_counter += 1
        return wid


def _factorial(n: int) -> int:
    out = 1
    for i in range(2, n + 1):
        out *= i
    return out
