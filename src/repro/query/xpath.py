"""Parser for the XPath subset used throughout the paper.

Grammar (close to Table 3's queries)::

    query      := ('/' | '//') step ( ('/' | '//') step )*
    step       := nametest predicate*
    nametest   := NAME | '@' NAME | '*'
    predicate  := '[' predexpr ']'
    predexpr   := 'text()' '=' literal
                | '//'? relpath ('=' literal)?
    relpath    := step ( ('/' | '//') step )*
    literal    := "'" chars "'" | '"' chars '"'

Attributes are treated like child elements (``@`` is accepted and
ignored), matching the paper's model where attributes are ordinary nodes
of the document tree.  A ``//`` separator becomes an explicit ``//`` node
in the query tree; a leading ``//`` makes it the root, as in Table 3's
``//author[text='David']``.  Bare-name equality like ``[key='X']`` (the
paper writes ``[text='X']`` too) puts the value predicate on the named
child node.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import QueryParseError
from repro.query.ast import DSLASH_LABEL, STAR_LABEL, QueryNode

_NAME_RE = re.compile(r"@?[\w.\-:]+|\*")

__all__ = ["parse_xpath"]


def parse_xpath(text: str) -> QueryNode:
    """Parse an XPath-subset expression into a query tree (its root node)."""
    parser = _XPathParser(text)
    return parser.parse()


class _XPathParser:
    def __init__(self, text: str) -> None:
        self.text = text.strip()
        self.pos = 0

    # -- helpers -----------------------------------------------------------

    def _peek(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def _accept(self, token: str) -> bool:
        if self._peek(token):
            self.pos += len(token)
            return True
        return False

    def _expect(self, token: str) -> None:
        if not self._accept(token):
            raise self._error(f"expected {token!r}")

    def _error(self, message: str) -> QueryParseError:
        return QueryParseError(
            f"{message} at position {self.pos} in {self.text!r}"
        )

    def _at_end(self) -> bool:
        return self.pos >= len(self.text)

    # -- grammar -----------------------------------------------------------

    def parse(self) -> QueryNode:
        if self._at_end():
            raise self._error("empty query")
        chain = self._parse_path(absolute=True)
        if not self._at_end():
            raise self._error("trailing characters")
        return chain

    def _parse_path(self, absolute: bool) -> QueryNode:
        """Parse a /-separated chain and return its first node."""
        first: QueryNode | None = None
        cursor: QueryNode | None = None
        if absolute:
            if self._accept("//"):
                first, cursor = self._attach(first, cursor, QueryNode(DSLASH_LABEL))
            else:
                self._expect("/")
        elif self._accept("//"):
            # descendant branch inside a predicate: [//d[...]]
            first, cursor = self._attach(first, cursor, QueryNode(DSLASH_LABEL))
        while True:
            step = self._parse_step()
            first, cursor = self._attach(first, cursor, step)
            if self._accept("//"):
                first, cursor = self._attach(first, cursor, QueryNode(DSLASH_LABEL))
            elif not self._accept("/"):
                break
        assert first is not None
        return first

    @staticmethod
    def _attach(
        first: QueryNode | None, cursor: QueryNode | None, node: QueryNode
    ) -> tuple[QueryNode, QueryNode]:
        if first is None:
            return node, node
        assert cursor is not None
        cursor.add(node)
        return first, node

    def _parse_step(self) -> QueryNode:
        match = _NAME_RE.match(self.text, self.pos)
        if not match:
            raise self._error("expected a name test")
        self.pos = match.end()
        name = match.group().lstrip("@")
        node = QueryNode(STAR_LABEL if name == "*" else name)
        while self._peek("["):
            self._parse_predicate(node)
        return node

    _VALUE_OPS = ("!=", "<=", ">=", "=", "<", ">")  # longest first

    def _accept_value_op(self) -> Optional[str]:
        for op in self._VALUE_OPS:
            if self._accept(op):
                return op
        return None

    def _peek_value_op(self, offset: int) -> bool:
        rest = self.text[offset:].lstrip()
        return any(rest.startswith(op) for op in self._VALUE_OPS)

    def _parse_predicate(self, node: QueryNode) -> None:
        self._expect("[")
        # `[text()='v']` / `[text='v']` predicate the node's own value; only
        # treat "text" as the function form when a comparison follows, so an
        # element genuinely named "textfield" still parses as a branch.
        text_form = None
        for form in ("text()", "text"):
            if self._peek(form) and self._peek_value_op(self.pos + len(form)):
                text_form = form
                break
        if text_form is not None:
            self._accept(text_form)
            op = self._accept_value_op()
            assert op is not None
            node.value = self._parse_literal()
            node.op = op
        else:
            branch = self._parse_path(absolute=False)
            branch.predicate = True
            op = self._accept_value_op()
            if op is not None:
                # the comparison applies to the *last* node of the chain
                tail = branch
                while tail.children:
                    tail = tail.children[-1]
                tail.value = self._parse_literal()
                tail.op = op
            node.add(branch)
        self._expect("]")

    def _parse_literal(self) -> str:
        if self._at_end() or self.text[self.pos] not in "'\"":
            raise self._error("expected a quoted literal")
        quote = self.text[self.pos]
        end = self.text.find(quote, self.pos + 1)
        if end < 0:
            raise self._error("unterminated literal")
        literal = self.text[self.pos + 1 : end]
        self.pos = end + 1
        return literal
