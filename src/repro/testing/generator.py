"""Seeded random document and query generation for the oracle.

Documents use a deliberately tiny label alphabet so that same-label
sibling branches, shared prefixes and repeated subtrees — exactly the
shapes where subsequence matching diverges from XPath (DESIGN.md §2) —
occur constantly rather than almost never.

Queries are biased toward *nearly matching*: most are sampled as
connected subtrees of a corpus document and then mutated (``*`` and
``//`` wildcards, value predicates, label/value perturbations), so both
the hit and the near-miss paths of every index are exercised.  The whole
process is a pure function of the seed.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.doc.model import XmlNode
from repro.query.ast import DSLASH_LABEL, STAR_LABEL, QueryNode

__all__ = ["DocQueryGenerator"]

_LABELS = ("a", "b", "c", "d")
_VALUES = ("u", "v", "w", "7", "42")


class DocQueryGenerator:
    """Deterministic random document/query source (one RNG per seed)."""

    def __init__(
        self,
        seed: int,
        *,
        labels: Sequence[str] = _LABELS,
        values: Sequence[str] = _VALUES,
        max_depth: int = 4,
        max_children: int = 3,
    ) -> None:
        self.rng = random.Random(seed)
        self.labels = tuple(labels)
        self.values = tuple(values)
        self.max_depth = max_depth
        self.max_children = max_children

    # -- documents -------------------------------------------------------

    def document(self, target_size: int = 12) -> XmlNode:
        """A random tree of roughly ``target_size`` element nodes."""
        rng = self.rng
        root = XmlNode(rng.choice(self.labels))
        nodes = [(root, 1)]  # (node, depth)
        for _ in range(max(0, target_size - 1)):
            open_nodes = [
                (node, depth)
                for node, depth in nodes
                if depth < self.max_depth and len(node.children) < self.max_children
            ]
            if not open_nodes:
                break
            parent, depth = rng.choice(open_nodes)
            child = parent.element(rng.choice(self.labels))
            if rng.random() < 0.35:
                child.text = rng.choice(self.values)
            if rng.random() < 0.15:
                child.attributes[rng.choice(self.labels)] = rng.choice(self.values)
            nodes.append((child, depth + 1))
        return root

    def corpus(self, count: int = 6, target_size: int = 12) -> list[XmlNode]:
        return [self.document(target_size) for _ in range(count)]

    # -- queries ---------------------------------------------------------

    def query(self, corpus: Sequence[XmlNode]) -> QueryNode:
        """One random query, usually derived from a corpus document."""
        rng = self.rng
        if corpus and rng.random() < 0.7:
            root = self._query_from_document(rng.choice(list(corpus)))
        else:
            root = self._random_query(depth=0)
        return self._mutate(root)

    def _query_from_document(self, document: XmlNode) -> QueryNode:
        """Sample a connected subtree of ``document`` as a query skeleton."""
        rng = self.rng
        qroot = QueryNode(document.label)
        frontier = [(document, qroot)]
        budget = rng.randint(1, 4)
        while frontier:
            dnode, qnode = frontier.pop(rng.randrange(len(frontier)))
            if dnode.text and rng.random() < 0.3:
                qnode.value = dnode.text
            if dnode.attributes and rng.random() < 0.25:
                name = rng.choice(sorted(dnode.attributes))
                attr = qnode.add(QueryNode(name))
                if rng.random() < 0.7:
                    attr.value = dnode.attributes[name]
            for child in dnode.children:
                if budget > 0 and rng.random() < 0.55:
                    budget -= 1
                    frontier.append((child, qnode.add(QueryNode(child.label))))
        return qroot

    def _random_query(self, depth: int) -> QueryNode:
        """An unconstrained random query (may match nothing)."""
        rng = self.rng
        node = QueryNode(rng.choice(self.labels))
        if rng.random() < 0.3:
            node.value = rng.choice(self.values)
        if depth < 3:
            for _ in range(rng.randint(0, 2)):
                node.add(self._random_query(depth + 1))
        return node

    def _mutate(self, root: QueryNode) -> QueryNode:
        """Sprinkle wildcards and perturbations over a query skeleton."""
        rng = self.rng
        if rng.random() < 0.3:
            wrapper = QueryNode(DSLASH_LABEL)
            wrapper.add(root)
            root = wrapper
        for node in list(root.preorder()):
            if node.is_dslash:
                continue
            if rng.random() < 0.15:
                node.label = STAR_LABEL
            elif rng.random() < 0.1:
                node.label = rng.choice(self.labels)  # may break the match
            if node.value is not None and rng.random() < 0.15:
                node.value = rng.choice(self.values)
        self._maybe_splice_dslash(root)
        return root

    def _maybe_splice_dslash(self, root: QueryNode) -> None:
        """Insert a ``//`` step between a random parent and child edge."""
        rng = self.rng
        if rng.random() >= 0.25:
            return
        edges = [
            (parent, idx)
            for parent in root.preorder()
            for idx in range(len(parent.children))
            if not parent.is_dslash
        ]
        if not edges:
            return
        parent, idx = rng.choice(edges)
        child = parent.children[idx]
        bridge = QueryNode(DSLASH_LABEL, predicate=child.predicate)
        child.predicate = False
        bridge.add(child)
        parent.children[idx] = bridge
