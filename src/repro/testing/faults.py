"""Deterministic crash injection for the WalPager redo protocol.

:class:`CrashingWalPager` overrides the five durability primitives of
:class:`~repro.storage.wal.WalPager` (journal write, journal fsync,
main-file write, main-file fsync, journal unlink) and raises
:class:`SimulatedCrash` when the configured fault point is reached.
Two modes per point:

* ``cut`` — the primitive never runs (clean truncation at an op
  boundary: a short journal, a missing commit marker, a partially
  applied main file, a surviving journal);
* ``torn`` — a *write* primitive persists only the first half of its
  payload before dying (a torn journal record, a torn page).

The crash model is fail-stop with durable completed writes: everything
a finished primitive wrote is on disk, nothing after the fault point is
(Python's buffered journal writes are flushed when the ``with`` block
closes the file during exception unwind, which is what makes the model
deterministic).  Page-cache loss is *not* simulated — an fsync op is a
crash point like any other, with the preceding writes considered
durable; the torn modes cover the interesting partial-persistence
states instead.

:func:`sweep_commit_faults` enumerates **every** fault point of one
commit: for a commit with ``E`` journal entries (dirty pages + header)
the op sequence is ``E+3`` journal writes (header, records, CRC,
marker), the journal fsync, ``E`` main-file writes, the main fsync and
the journal unlink — ``2E+6`` ops total, asserted exactly.  For each
point it restores the pre-commit database, replays the mutation, crashes,
reopens with a plain ``WalPager`` (running recovery) and asserts the
recovered state equals either the pre-commit state A (fault before the
journal fsync) or the post-commit state B (at/after it) — never a torn
in-between.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import TransientIOError
from repro.storage.checksums import pack_trailer
from repro.storage.pager import DEFAULT_PAGE_SIZE, FilePager, page_offset, slot_size

from repro.storage.wal import WalPager

__all__ = [
    "SimulatedCrash",
    "CrashingWalPager",
    "CrashingFreePager",
    "FlakyFilePager",
    "FaultOutcome",
    "FaultSweepReport",
    "sweep_commit_faults",
]

OpKind = tuple  # ("journal_write", n) | ("journal_sync",) | ("main_write", pid) | ...


class SimulatedCrash(Exception):
    """Raised by :class:`CrashingWalPager` at the configured fault point."""

    def __init__(self, op: int, kind: OpKind, torn: bool) -> None:
        super().__init__(f"simulated crash at op {op} ({kind}, torn={torn})")
        self.op = op
        self.kind = kind
        self.torn = torn


class CrashingWalPager(WalPager):
    """A WalPager that dies deterministically at one durability op.

    Construction runs recovery with the fault injection *disarmed* (a
    harness always reopens cleanly before injecting the next fault);
    call :meth:`arm` before the commit under test.  With ``crash_at``
    ``None`` the pager only records the op log, enumerating the fault
    points of a commit.
    """

    def __init__(
        self,
        path,
        page_size: int = DEFAULT_PAGE_SIZE,
        journal_path=None,
        *,
        crash_at: Optional[int] = None,
        torn: bool = False,
    ) -> None:
        self.crash_at = crash_at
        self.torn = torn
        self.op_log: list[OpKind] = []
        self._armed = False
        super().__init__(path, page_size, journal_path)

    def arm(self) -> None:
        self._armed = True

    # -- the five overridden primitives ---------------------------------

    def _journal_write(self, journal, data: bytes) -> None:
        def torn_write() -> None:
            journal.write(data[: len(data) // 2])

        self._op(
            ("journal_write", len(self.op_log)),
            lambda: WalPager._journal_write(self, journal, data),
            torn_write,
        )

    def _journal_sync(self, journal) -> None:
        self._op(("journal_sync",), lambda: WalPager._journal_sync(self, journal))

    def _main_write(self, page_id: int, data: bytes, page_size: int) -> None:
        def torn_write() -> None:
            # Tear the full on-disk slot (payload + CRC trailer) at the
            # v2 offset: half a page lands, its trailer never does.
            blob = data + pack_trailer(data)
            self._file.seek(page_offset(page_id, page_size))
            self._file.write(blob[: len(blob) // 2])

        self._op(
            ("main_write", page_id),
            lambda: WalPager._main_write(self, page_id, data, page_size),
            torn_write,
        )

    def _main_sync(self) -> None:
        self._op(("main_sync",), lambda: WalPager._main_sync(self))

    def _journal_unlink(self) -> None:
        self._op(("journal_unlink",), lambda: WalPager._journal_unlink(self))

    # -- fault machinery -------------------------------------------------

    def _op(
        self,
        kind: OpKind,
        run: Callable[[], None],
        torn_write: Optional[Callable[[], None]] = None,
    ) -> None:
        if not self._armed:
            run()
            return
        if self.crash_at is not None and len(self.op_log) == self.crash_at:
            if self.torn and torn_write is not None:
                torn_write()
            raise SimulatedCrash(self.crash_at, kind, self.torn)
        run()
        self.op_log.append(kind)


# ---------------------------------------------------------------------------
# interrupted free(): the page-leak window


class CrashingFreePager(FilePager):
    """A FilePager that dies between ``free()``'s slot write and header write.

    ``free()`` first chains the page into the freelist by rewriting its
    slot, then persists the new freelist head in the header.  After
    :meth:`arm`, the next header write raises :class:`SimulatedCrash`
    with the slot write already durable — exactly the crash window that
    leaks a page: its slot holds a freelist next-pointer, but neither the
    header's freelist head nor any tree references it.

    Finish the simulated crash with :meth:`abandon` (fail-stop), never
    ``close()`` — a clean close would rewrite the header and undo the
    leak under test.
    """

    def __init__(self, path, page_size: int = DEFAULT_PAGE_SIZE, **kwargs) -> None:
        self._armed = False
        super().__init__(path, page_size, **kwargs)

    def arm(self) -> None:
        """Crash at the next header write (one-shot)."""
        self._armed = True

    def _write_header(self) -> None:
        if self._armed:
            self._armed = False
            self._file.flush()
            raise SimulatedCrash(0, ("header_write",), False)
        super()._write_header()

    def abandon(self) -> None:
        """Fail-stop: release the handle without the close-time header write."""
        self._file.flush()
        self._file.close()
        self._closed = True


# ---------------------------------------------------------------------------
# flaky-disk simulation (transient vs persistent read faults)


class FlakyFilePager(FilePager):
    """A FilePager whose raw reads fail transiently.

    ``fail_reads`` raw-read attempts raise
    :class:`~repro.errors.TransientIOError` before the disk "recovers";
    with ``persistent=True`` every attempt fails.  Exercises the pager's
    retry-with-backoff: a transient blip must be invisible to callers,
    a persistent fault must escape as ``TransientIOError`` after the
    configured attempts — never as a wrong answer.
    """

    def __init__(
        self,
        path,
        page_size: int = DEFAULT_PAGE_SIZE,
        *,
        fail_reads: int = 0,
        persistent: bool = False,
        **kwargs,
    ) -> None:
        self._remaining_faults = 0  # disarmed during __init__'s own reads
        self._persistent = persistent
        self.fault_count = 0
        super().__init__(path, page_size, **kwargs)
        self._remaining_faults = fail_reads

    def _read_at(self, offset: int, length: int) -> bytes:
        if self._persistent and self._remaining_faults:
            self.fault_count += 1
            raise TransientIOError(
                f"{self.path}: injected persistent read fault at offset {offset}"
            )
        if self._remaining_faults > 0:
            self._remaining_faults -= 1
            self.fault_count += 1
            raise TransientIOError(
                f"{self.path}: injected transient read fault at offset {offset}"
            )
        return super()._read_at(offset, length)


# ---------------------------------------------------------------------------
# exhaustive sweep


@dataclass
class FaultOutcome:
    """One injected fault and the state recovery landed on."""

    op: int
    kind: OpKind
    mode: str  # "cut" | "torn"
    recovered_to: str  # "pre" | "post"


@dataclass
class FaultSweepReport:
    """Everything a sweep observed; all assertions already passed."""

    entries: int  # journal entries of the commit (dirty pages + header)
    op_kinds: list[OpKind] = field(default_factory=list)
    outcomes: list[FaultOutcome] = field(default_factory=list)

    @property
    def total_ops(self) -> int:
        return len(self.op_kinds)

    @property
    def expected_ops(self) -> int:
        """The exhaustive fault-point count: ``2E + 6`` for ``E`` entries."""
        return 2 * self.entries + 6

    @property
    def faults_injected(self) -> int:
        return len(self.outcomes)


def _page_state(pager: WalPager, pid: int):
    if pid in pager._freed:
        # freed pages refuse read() but still carry their freelist chain
        # pointer on disk; capture the raw slot so chain order (which
        # drives future allocations) participates in state equality.
        # Mutations that shrink a B+Tree — bulk_load replacing the old
        # root, deletes merging nodes — legitimately leave freed pages.
        pager._file.seek(page_offset(pid, pager.page_size))
        return ("freed", pager._file.read(slot_size(pager.page_size)))
    return pager.read(pid)


def _state_of(pager: WalPager) -> tuple:
    """Structured content of a pager's durable state (overlay-free)."""
    assert not pager._overlay and not pager._header_dirty
    pages = tuple(_page_state(pager, pid) for pid in range(1, pager.page_count + 1))
    return (
        pager.page_size,
        pager.page_count,
        pager._freelist,
        pager.get_metadata(),
        pages,
    )


def _capture(path, page_size: int) -> tuple:
    pager = WalPager(path, page_size)
    try:
        return _state_of(pager)
    finally:
        pager.close()


def sweep_commit_faults(
    path,
    setup: Callable[[WalPager], None],
    mutate: Callable[[WalPager], None],
    *,
    page_size: int = DEFAULT_PAGE_SIZE,
    check: Optional[Callable[[WalPager, str], None]] = None,
) -> FaultSweepReport:
    """Crash one commit at every op boundary and verify recovery.

    ``setup`` populates and the harness commits the pre-state A;
    ``mutate`` applies the transaction under test (the harness calls
    ``commit``).  ``check(pager, phase)`` — optional — runs invariant
    checks against the freshly recovered pager after every fault
    (``phase`` is ``"pre"`` or ``"post"``, the state recovery landed on).

    Raises ``AssertionError`` when a fault point fails to fire, when the
    op count differs from the exhaustive ``2E+6`` enumeration, or when
    recovery produces anything but state A or state B.
    """
    path = os.fspath(path)
    journal = path + ".wal"

    pager = WalPager(path, page_size)
    setup(pager)
    pager.close()
    with open(path, "rb") as fh:
        pre_bytes = fh.read()
    state_pre = _capture(path, page_size)

    def restore_pre() -> None:
        with open(path, "wb") as fh:
            fh.write(pre_bytes)
        if os.path.exists(journal):
            os.remove(journal)

    # -- fault-free run: records the op log and the post-state B ---------
    pager = CrashingWalPager(path, page_size)
    mutate(pager)
    entries = len(pager._overlay) + 1  # +1: the rebuilt header page
    pager.arm()
    pager.commit()
    report = FaultSweepReport(entries=entries, op_kinds=list(pager.op_log))
    pager.close()
    state_post = _capture(path, page_size)
    if state_post == state_pre:
        raise AssertionError("mutate() must change durable state")
    if report.total_ops != report.expected_ops:
        raise AssertionError(
            f"fault-point enumeration is not exhaustive: observed "
            f"{report.total_ops} ops, expected 2*{entries}+6 = {report.expected_ops}"
        )
    sync_op = report.op_kinds.index(("journal_sync",))

    # -- the sweep --------------------------------------------------------
    for op, kind in enumerate(report.op_kinds):
        modes = ["cut"]
        if kind[0] in ("journal_write", "main_write"):
            modes.append("torn")
        for mode in modes:
            restore_pre()
            pager = CrashingWalPager(
                path, page_size, crash_at=op, torn=(mode == "torn")
            )
            mutate(pager)
            pager.arm()
            crashed = False
            try:
                pager.commit()
            except SimulatedCrash:
                crashed = True
            pager.abandon()
            if not crashed:
                raise AssertionError(f"fault point {op} ({kind}) did not fire")
            recovered = WalPager(path, page_size)  # runs recovery
            try:
                state = _state_of(recovered)
                if os.path.exists(journal):
                    raise AssertionError(
                        f"journal survived recovery after fault at op {op}"
                    )
                if state == state_pre:
                    landed = "pre"
                elif state == state_post:
                    landed = "post"
                else:
                    raise AssertionError(
                        f"torn recovery state after fault at op {op} ({kind}, "
                        f"{mode}): neither pre- nor post-commit"
                    )
                # A fault before the journal fsync leaves a torn journal
                # (discarded: state A); at/after it the complete journal
                # is durable and replays (state B).
                expected = "pre" if op < sync_op else "post"
                if landed != expected:
                    raise AssertionError(
                        f"fault at op {op} ({kind}, {mode}) recovered to "
                        f"{landed}-state, expected {expected}"
                    )
                if check is not None:
                    check(recovered, landed)
            finally:
                recovered.close()
            report.outcomes.append(
                FaultOutcome(op=op, kind=kind, mode=mode, recovered_to=landed)
            )
    restore_pre()
    return report
