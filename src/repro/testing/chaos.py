"""Process-level chaos harness for sharded serving.

Two fault injectors that bracket the whole worker RPC path, both driven
by **seeded** schedules so every chaos run is reproducible from its seed:

* :class:`FaultyShardServer` — a :class:`~repro.shard.worker._ShardServer`
  subclass run *inside* the worker process (spawn the executor with
  ``worker_module="repro.testing.chaos"``).  Per the rates in its
  :class:`ChaosConfig` (shipped via the ``REPRO_CHAOS`` env var) it

  - **kills** the worker mid-query (``os._exit`` between receiving a
    frame and answering it — the SIGKILL-shaped death: no cleanup, no
    shutdown frame, just EOF on the parent's socket);
  - **tears** a reply frame (writes the length prefix and *half* the
    payload, then dies — the client must fail typed on the truncated
    stream, not hang waiting for the rest);
  - **delays** replies by ``delay_ms`` (exercises heartbeats, hedged
    reads, and RPC deadlines);
  - **refuses to come up** (``fail_start_rate``, respawned generations
    only) — exercises the restart budget and the sticky ``down`` state.

  Each worker derives its own rng from ``(seed, shard, generation)``
  using the ``REPRO_SHARD_ID``/``REPRO_SHARD_GENERATION`` env vars the
  executor sets at spawn, so a fleet under one seed still misbehaves
  differently per worker and per respawn, deterministically.

* :class:`ChaosMonkey` — runs in the *parent* and SIGKILLs random live
  worker processes of a :class:`~repro.shard.executor.ShardedExecutor`
  on a seeded schedule: the outside-the-process half (kernel-delivered
  kill at an arbitrary instant) that in-process injection cannot model.

The chaos hammer in ``tests/test_shard_faults.py`` runs the cross-shard
differential-oracle workload under both and asserts the fault-tolerance
contract: no hangs, no silently wrong answers, and the executor recovers
to all-shards-healthy.
"""

from __future__ import annotations

import json
import os
import random
import signal
import struct
import sys
import threading
import time
from dataclasses import asdict, dataclass

from repro.shard.worker import _ShardServer, main as worker_main

__all__ = ["ChaosConfig", "ChaosMonkey", "FaultyShardServer", "main"]

#: env var carrying the JSON-encoded :class:`ChaosConfig`
CHAOS_ENV = "REPRO_CHAOS"


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded fault rates for one chaos run (all rates are per-frame)."""

    seed: int = 0
    #: P(worker dies via ``os._exit`` instead of answering a query)
    kill_rate: float = 0.0
    #: P(reply frame is torn: length prefix + half the payload, then death)
    tear_rate: float = 0.0
    #: P(reply is delayed by ``delay_ms``)
    delay_rate: float = 0.0
    delay_ms: float = 50.0
    #: P(a *respawned* worker exits before announcing its port) — never
    #: applied to generation 0, so executor construction always succeeds
    fail_start_rate: float = 0.0

    def to_env(self) -> dict:
        """Env vars that ship this config into spawned workers."""
        return {CHAOS_ENV: json.dumps(asdict(self))}

    @classmethod
    def from_env(cls, environ=None) -> "ChaosConfig":
        environ = os.environ if environ is None else environ
        raw = environ.get(CHAOS_ENV)
        if not raw:
            return cls()
        return cls(**json.loads(raw))

    def rng_for(self, shard: int, generation: int) -> random.Random:
        """Per-(worker, respawn) rng — same seed, distinct fault schedules."""
        return random.Random((self.seed * 1_000_003 + shard) * 1_009 + generation)


class FaultyShardServer(_ShardServer):
    """A shard server that misbehaves on a seeded schedule.

    Faults fire in ``_reply`` — after the index did its work, before the
    client hears about it — which is the widest failure window: the
    client can never tell a pre-work death from a post-work one, exactly
    like a real SIGKILL.
    """

    def __init__(self, index, threads: int) -> None:
        super().__init__(index, threads)
        self.config = ChaosConfig.from_env()
        shard = int(os.environ.get("REPRO_SHARD_ID", "0"))
        generation = int(os.environ.get("REPRO_SHARD_GENERATION", "0"))
        self._rng = self.config.rng_for(shard, generation)
        self._rng_lock = threading.Lock()
        if generation > 0 and self.config.fail_start_rate > 0:
            if self.config.rng_for(shard, -generation).random() < self.config.fail_start_rate:
                # die before serve_shard prints PORT: a refused connection
                print(
                    f"repro.testing.chaos: shard {shard} gen {generation} "
                    "refusing to start (injected)",
                    file=sys.stderr,
                    flush=True,
                )
                os._exit(17)

    def _roll(self, rate: float) -> bool:
        if rate <= 0:
            return False
        with self._rng_lock:
            return self._rng.random() < rate

    def _reply(self, conn, send_lock, request_id, payload) -> None:
        if self._roll(self.config.kill_rate):
            os._exit(9)  # SIGKILL-shaped: no flush, no goodbye
        if self._roll(self.config.delay_rate):
            time.sleep(self.config.delay_ms / 1000.0)
        if self._roll(self.config.tear_rate):
            data = json.dumps({"id": request_id, **payload}).encode("utf-8")
            try:
                with send_lock:
                    # full length prefix, half the payload, then death —
                    # the reader sees a stream cut mid-frame
                    conn.sendall(struct.pack(">I", len(data)) + data[: len(data) // 2])
            except OSError:
                pass
            os._exit(9)
        super()._reply(conn, send_lock, request_id, payload)


class ChaosMonkey:
    """SIGKILL live workers of an executor on a seeded schedule.

    ``interval_s`` is the mean gap between kills (uniform 0.5×–1.5×).
    Only currently-healthy workers are targeted — killing a worker that
    the supervisor is already respawning tests nothing new and can race
    the spawn itself.
    """

    def __init__(self, executor, *, seed: int = 0, interval_s: float = 0.25) -> None:
        self.executor = executor
        self.interval_s = interval_s
        self._rng = random.Random(seed)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.kills = 0

    def start(self) -> "ChaosMonkey":
        self._thread = threading.Thread(
            target=self._run, name="repro-chaos-monkey", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def _run(self) -> None:
        from repro.shard.supervisor import HEALTHY

        while not self._stop.is_set():
            wait = self.interval_s * (0.5 + self._rng.random())
            if self._stop.wait(timeout=wait):
                return
            victims = [
                client
                for client in self.executor.clients
                if client.state == HEALTHY and client.proc is not None
            ]
            if not victims:
                continue
            client = self._rng.choice(victims)
            proc = client.proc
            try:
                if proc is not None and proc.poll() is None:
                    os.kill(proc.pid, signal.SIGKILL)
                    self.kills += 1
            except (OSError, ProcessLookupError):
                pass

    def __enter__(self) -> "ChaosMonkey":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


def main(argv=None) -> int:
    """Entry point: a worker process with fault injection enabled.

    The executor spawns this exactly like the production worker
    (``python -m repro.testing.chaos SHARD_DIR --port 0 ...``); the only
    difference is the server class and the ``REPRO_CHAOS`` config.
    """
    return worker_main(argv, server_cls=FaultyShardServer)


if __name__ == "__main__":
    sys.exit(main())
