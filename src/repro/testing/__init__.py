"""Correctness harness for the ViST reproduction.

Three cooperating pillars (one module each):

* :mod:`repro.testing.reference` + :mod:`repro.testing.generator` +
  :mod:`repro.testing.oracle` — the **differential oracle**: seeded
  random documents and queries, an independent in-memory XPath reference
  evaluator over the original document trees, and a driver that pins
  every index family and cache/pager configuration to the reference;
* :mod:`repro.testing.faults` — **crash-consistency fault injection**:
  a :class:`~repro.storage.wal.WalPager` subclass that deterministically
  kills the process model at every write/fsync boundary of the redo
  protocol, plus a sweep harness asserting recovery always lands on the
  committed pre- or post-state;
* :mod:`repro.testing.invariants` — **invariant checkers** for B+Tree
  structure, ViST scope containment and posting-cache coherence,
  callable from tests and from the CLI (``repro check``).

Exports resolve lazily so that ``python -m repro.testing.oracle`` does
not import the whole package twice.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "DocQueryGenerator": "repro.testing.generator",
    "reference_matches": "repro.testing.reference",
    "reference_results": "repro.testing.reference",
    "DifferentialOracle": "repro.testing.oracle",
    "Divergence": "repro.testing.oracle",
    "OracleReport": "repro.testing.oracle",
    "VistConfig": "repro.testing.oracle",
    "VIST_CONFIGS": "repro.testing.oracle",
    "ChaosConfig": "repro.testing.chaos",
    "ChaosMonkey": "repro.testing.chaos",
    "FaultyShardServer": "repro.testing.chaos",
    "CrashingWalPager": "repro.testing.faults",
    "SimulatedCrash": "repro.testing.faults",
    "FaultOutcome": "repro.testing.faults",
    "FaultSweepReport": "repro.testing.faults",
    "sweep_commit_faults": "repro.testing.faults",
    "InvariantReport": "repro.testing.invariants",
    "VersionMonitor": "repro.testing.invariants",
    "check_bptree": "repro.testing.invariants",
    "check_index": "repro.testing.invariants",
    "check_posting_coherence": "repro.testing.invariants",
    "check_vist_documents": "repro.testing.invariants",
    "check_vist_scopes": "repro.testing.invariants",
    "assert_invariants": "repro.testing.invariants",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module_name), name)
