"""Structural invariant checkers for the storage and index layers.

Each checker walks a live structure and returns an
:class:`InvariantReport`; nothing is mutated.  The checks encode the
contracts the rest of the codebase silently relies on:

**B+Tree** (:func:`check_bptree`)
    entries sorted by ``(key, value)``; every entry within the separator
    bounds implied by ``bisect_right`` routing (``seps[i-1] <= pair <
    seps[i]``); uniform leaf depth; the leaf ``next``-chain visits the
    leaves in key order and terminates; no page referenced twice;
    ``len(tree)`` equals the walked entry count; every node fits its
    page.  Deletion may legitimately leave *sparse* nodes (the borrow /
    merge repair can be impossible with variable-size cells), so
    under-filled nodes are counted, not flagged.

**ViST scopes** (:func:`check_vist_scopes`)
    every node's parent exists; child scope strictly inside the parent's
    ``(n, n+size]``; sibling scopes disjoint; reserve accounting
    (``reserve_used <= reserve_size``; borrow-labelled *private* nodes
    live inside their lender's used reserve block; regular children stay
    out of the reserve); prefix depths within the recorded
    ``max-prefix-len`` meta entry.

**ViST documents** (:func:`check_vist_documents`)
    per-node reference counts equal the number of insert-path traversals
    recorded in the document payloads; every document's DocId entry
    exists under its last path label and vice versa.

**Posting cache** (:func:`check_posting_coherence`)
    every resident posting group byte-equals a fresh scan of its
    D-Ancestor key range.

:class:`VersionMonitor` asserts ``structure_version`` monotonicity
across a sequence of mutations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.index.store import (
    META_MAX_DEPTH_KEY,
    META_STORE_BOUNDS_KEY,
    ROOT_KEY,
    decode_node_key,
)
from repro.labeling.dynamic import NodeState
from repro.storage.bptree import BPlusTree, _Internal, _Leaf, _Node, Pair

__all__ = [
    "InvariantReport",
    "VersionMonitor",
    "check_bptree",
    "check_vist_scopes",
    "check_vist_documents",
    "check_posting_coherence",
    "check_index",
    "assert_invariants",
]

_MAX_VIOLATIONS = 25  # per report; enough to diagnose, bounded output


@dataclass
class InvariantReport:
    """Outcome of one checker: what was inspected and what failed."""

    name: str
    checked: int = 0
    sparse_nodes: int = 0  # under-filled B+Tree nodes (allowed, counted)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def fail(self, message: str) -> None:
        if len(self.violations) < _MAX_VIOLATIONS:
            self.violations.append(message)
        elif len(self.violations) == _MAX_VIOLATIONS:
            self.violations.append("... further violations suppressed")

    def summary(self) -> str:
        if self.ok:
            extra = f", {self.sparse_nodes} sparse" if self.sparse_nodes else ""
            return f"OK   {self.name}: {self.checked} checked{extra}"
        lines = [f"FAIL {self.name}: {len(self.violations)} violation(s)"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)


class VersionMonitor:
    """Asserts a B+Tree's ``structure_version`` never moves backwards."""

    def __init__(self, tree: BPlusTree) -> None:
        self._tree = tree
        self.last = tree.structure_version

    def observe(self) -> int:
        version = self._tree.structure_version
        if version < self.last:
            raise AssertionError(
                f"structure_version went backwards: {self.last} -> {version}"
            )
        self.last = version
        return version


# ---------------------------------------------------------------------------
# B+Tree structure


def check_bptree(tree: BPlusTree, name: str = "tree") -> InvariantReport:
    report = InvariantReport(name=f"bptree:{name}")
    seen_pids: set[int] = set()
    leaves_in_order: list[_Leaf] = []
    leaf_depths: set[int] = set()
    entry_count = 0
    root = tree._node(tree._root_pid)

    def visit(node: _Node, depth: int, lo: Optional[Pair], hi: Optional[Pair]) -> None:
        nonlocal entry_count
        if node.pid in seen_pids:
            report.fail(f"page {node.pid} reachable twice")
            return
        seen_pids.add(node.pid)
        if node.used_bytes() > tree._capacity:
            report.fail(
                f"page {node.pid} overflows: {node.used_bytes()} > {tree._capacity}"
            )
        if node is not root and tree._is_underfull(node):
            report.sparse_nodes += 1
        if isinstance(node, _Leaf):
            leaf_depths.add(depth)
            leaves_in_order.append(node)
            previous: Optional[Pair] = None
            for pair in node.entries:
                report.checked += 1
                entry_count += 1
                if previous is not None and pair < previous:
                    report.fail(f"leaf {node.pid} entries out of order at {pair!r}")
                previous = pair
                if lo is not None and pair < lo:
                    report.fail(
                        f"leaf {node.pid} entry {pair[0]!r} below separator bound"
                    )
                if hi is not None and pair >= hi:
                    report.fail(
                        f"leaf {node.pid} entry {pair[0]!r} at/above separator bound"
                    )
            return
        assert isinstance(node, _Internal)
        if len(node.children) != len(node.seps) + 1:
            report.fail(
                f"internal {node.pid}: {len(node.children)} children for "
                f"{len(node.seps)} separators"
            )
            return
        if node is root and len(node.children) < 2:
            report.fail(f"root internal {node.pid} has a single child (uncollapsed)")
        for i in range(1, len(node.seps)):
            if node.seps[i - 1] > node.seps[i]:
                report.fail(f"internal {node.pid} separators out of order at {i}")
        for sep in node.seps:
            if lo is not None and sep < lo:
                report.fail(f"internal {node.pid} separator below inherited bound")
            if hi is not None and sep >= hi:
                report.fail(f"internal {node.pid} separator above inherited bound")
        for i, child_pid in enumerate(node.children):
            child_lo = node.seps[i - 1] if i > 0 else lo
            child_hi = node.seps[i] if i < len(node.seps) else hi
            visit(tree._node(child_pid), depth + 1, child_lo, child_hi)

    visit(root, 0, None, None)
    if len(leaf_depths) > 1:
        report.fail(f"leaves at multiple depths: {sorted(leaf_depths)}")
    for i, leaf in enumerate(leaves_in_order):
        expected_next = leaves_in_order[i + 1].pid if i + 1 < len(leaves_in_order) else 0
        if leaf.next != expected_next:
            report.fail(
                f"leaf chain broken at page {leaf.pid}: next={leaf.next}, "
                f"expected {expected_next}"
            )
    if entry_count != len(tree):
        report.fail(f"entry count mismatch: walked {entry_count}, slot says {len(tree)}")
    return report


# ---------------------------------------------------------------------------
# ViST scope containment and reserve accounting


def _vist_nodes(index) -> dict[int, tuple[NodeState, object, tuple]]:
    """All combined-tree nodes: ``n -> (state, symbol, prefix)``."""
    nodes: dict[int, tuple[NodeState, object, tuple]] = {}
    for key, value in index.tree.items():
        if key in (ROOT_KEY, META_MAX_DEPTH_KEY, META_STORE_BOUNDS_KEY):
            continue
        symbol, prefix, n = decode_node_key(key)
        nodes[n] = (NodeState.from_bytes(n, value), symbol, prefix)
    return nodes


def check_vist_scopes(index) -> InvariantReport:
    report = InvariantReport(name="vist:scopes")
    nodes = _vist_nodes(index)
    root_state = index._root_state
    allocator = index.allocator
    max_depth = index.max_prefix_len()
    children: dict[int, list[NodeState]] = {}
    for n, (state, symbol, prefix) in nodes.items():
        report.checked += 1
        if len(prefix) > max_depth:
            report.fail(
                f"node {n} ({symbol!r}) depth {len(prefix)} exceeds recorded "
                f"max-prefix-len {max_depth}"
            )
        if state.parent_n == root_state.scope.n:
            parent = root_state
        else:
            entry = nodes.get(state.parent_n)
            if entry is None:
                report.fail(f"node {n} ({symbol!r}) has missing parent {state.parent_n}")
                continue
            parent = entry[0]
        if not parent.scope.covers(state.scope):
            report.fail(
                f"node {n}: scope {state.scope} escapes parent "
                f"{parent.scope} (containment)"
            )
            continue
        children.setdefault(state.parent_n, []).append(state)
        reserve = allocator.reserve_size(parent.scope)
        reserve_lo = parent.scope.end - reserve + 1
        if state.private and not parent.private:
            # borrow-labelled chain head: must sit in the lender's used block
            used_hi = reserve_lo + parent.reserve_used - 1
            if not (reserve_lo <= state.scope.n and state.scope.end <= used_hi):
                report.fail(
                    f"private node {n}: scope {state.scope} outside lender "
                    f"{parent.scope.n}'s used reserve [{reserve_lo}, {used_hi}]"
                )
        elif not state.private and state.scope.end >= reserve_lo:
            report.fail(
                f"node {n}: scope {state.scope} intrudes into parent "
                f"{parent.scope.n}'s reserve (starts at {reserve_lo})"
            )
    for state, _symbol, _prefix in nodes.values():
        reserve = allocator.reserve_size(state.scope)
        if state.reserve_used > reserve:
            report.fail(
                f"node {state.scope.n}: reserve_used {state.reserve_used} "
                f"exceeds reserve size {reserve}"
            )
    for parent_n, siblings in children.items():
        siblings.sort(key=lambda s: s.scope.n)
        for left, right in zip(siblings, siblings[1:]):
            if right.scope.n <= left.scope.end:
                report.fail(
                    f"siblings under {parent_n} overlap: {left.scope} vs {right.scope}"
                )
    return report


def check_vist_documents(index) -> InvariantReport:
    """Refcount and DocId-tree coherence against the stored payloads."""
    from repro.storage.serialization import decode_tuple, decode_uint, encode_tuple

    report = InvariantReport(name="vist:documents")
    nodes = _vist_nodes(index)
    traversals: dict[int, int] = {}
    tail_labels: dict[int, int] = {}  # doc_id -> last path label
    for doc_id in index.docstore.ids():
        report.checked += 1
        sequence, labels = index._parse_payload(index.docstore.get(doc_id))
        if len(labels) != len(sequence):
            report.fail(
                f"doc {doc_id}: {len(labels)} path labels for "
                f"{len(sequence)} sequence items"
            )
            continue
        for item, n in zip(sequence, labels):
            traversals[n] = traversals.get(n, 0) + 1
            entry = nodes.get(n)
            if entry is None:
                report.fail(f"doc {doc_id}: path label {n} has no index entry")
                continue
            state, symbol, prefix = entry
            if symbol != item.symbol or prefix != item.prefix:
                report.fail(
                    f"doc {doc_id}: label {n} maps to ({symbol!r}, {prefix!r}), "
                    f"payload says ({item.symbol!r}, {item.prefix!r})"
                )
        tail_labels[doc_id] = labels[-1]
    if index.track_refs:
        for n, (state, symbol, _prefix) in nodes.items():
            expected = traversals.get(n, 0)
            if state.refs != expected:
                report.fail(
                    f"node {n} ({symbol!r}): refs={state.refs}, but "
                    f"{expected} payload traversal(s) reference it"
                )
            if state.private and expected > 1:
                report.fail(f"private node {n} shared by {expected} traversals")
    docid_entries = 0
    for key, value in index.docid_tree.items():
        docid_entries += 1
        n = decode_tuple(key)[0]
        doc_id = decode_uint(value)[0]
        if tail_labels.get(doc_id) != n:
            report.fail(
                f"DocId entry ({n}, doc {doc_id}) does not match the document's "
                f"tail label {tail_labels.get(doc_id)}"
            )
    if docid_entries != len(tail_labels):
        report.fail(
            f"DocId tree has {docid_entries} entr(ies) for "
            f"{len(tail_labels)} document(s)"
        )
    for doc_id, n in tail_labels.items():
        found = any(
            decode_uint(v)[0] == doc_id
            for v in index.docid_tree.values(encode_tuple((n,)))
        )
        if not found:
            report.fail(f"doc {doc_id} missing from DocId tree under label {n}")
    return report


# ---------------------------------------------------------------------------
# posting-cache coherence


def check_posting_coherence(host) -> InvariantReport:
    """Every resident posting group equals a fresh B+Tree scan."""
    report = InvariantReport(name="postings:coherence")
    cache = host.postings
    if cache is None:
        return report
    for key in list(cache._groups):
        report.checked += 1
        symbol, prefix_len, leading = key
        cached = cache._groups[key]
        fresh = sorted(
            host._load_postings(symbol, prefix_len, leading),
            key=lambda posting: posting[1].n,
        )
        if cached.entries != fresh:
            report.fail(
                f"group ({symbol!r}, {prefix_len}, {leading!r}): cached "
                f"{len(cached.entries)} posting(s), tree has {len(fresh)}"
            )
    return report


# ---------------------------------------------------------------------------
# top level


def check_index(index) -> list[InvariantReport]:
    """Run every applicable checker against an index; returns the reports."""
    from repro.index.vist import VistIndex

    reports = [check_bptree(index.tree, "combined")]
    if hasattr(index, "docid_tree"):
        reports.append(check_bptree(index.docid_tree, "docid"))
    if isinstance(index, VistIndex):
        reports.append(check_vist_scopes(index))
        reports.append(check_vist_documents(index))
    if getattr(index, "postings", None) is not None:
        reports.append(check_posting_coherence(index))
    return reports


def assert_invariants(index) -> list[InvariantReport]:
    """Raise ``AssertionError`` with a readable summary on any violation."""
    reports = check_index(index)
    if any(not report.ok for report in reports):
        raise AssertionError(
            "invariant violations:\n"
            + "\n".join(report.summary() for report in reports if not report.ok)
        )
    return reports
