"""Naive in-memory XPath reference evaluator.

The trusted side of the differential oracle.  It evaluates a query tree
directly against the *original* :class:`~repro.doc.model.XmlNode`
document trees — no sequences, no B+Trees, no caches — under the same
existential tree-embedding semantics the repo's exact mode
(``query(..., verify=True)``) promises:

* a concrete query node matches a data node with the same label;
* ``*`` matches any one element/attribute node;
* a ``//`` node's children may match any proper descendant;
* a value predicate ``=`` requires a value leaf with the same hash
  (identical to raw-text equality for the default unbucketed hasher);
  other operators compare the raw text, numerically when both sides
  parse as numbers;
* every query child must be satisfied independently (two branches may
  embed onto the same data node).

The implementation deliberately shares **no code** with
:mod:`repro.index.verification` — it walks ``XmlNode.expanded()`` trees,
not reconstructed sequence trees, so a bug in the sequence codec or the
verifier cannot cancel out against the reference.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from repro.doc.model import XmlNode
from repro.query.ast import QueryNode
from repro.sequence.vocabulary import ValueHasher

__all__ = ["reference_matches", "reference_results"]


def reference_matches(
    document: XmlNode, query: QueryNode, hasher: ValueHasher
) -> bool:
    """True when ``query`` embeds into ``document`` (original tree)."""
    expanded = document.expanded()
    super_root = XmlNode("#super-root")
    super_root.children = [expanded]
    return _child_matches(query, super_root, hasher)


def reference_results(
    documents: Iterable[XmlNode], query: QueryNode, hasher: ValueHasher
) -> list[int]:
    """Positions (indices into ``documents``) of the matching documents."""
    return [
        position
        for position, document in enumerate(documents)
        if reference_matches(document, query, hasher)
    ]


def _descendants(node: XmlNode) -> Iterator[XmlNode]:
    """Proper descendants of ``node`` in document order."""
    for child in node.children:
        yield child
        yield from _descendants(child)


def _child_matches(qnode: QueryNode, parent: XmlNode, hasher: ValueHasher) -> bool:
    """Does some admissible node under ``parent`` satisfy ``qnode``?"""
    if qnode.is_dslash:
        return all(
            any(
                _node_matches(qchild, dnode, hasher)
                for dnode in _descendants(parent)
                if not dnode.is_value
            )
            for qchild in qnode.children
        )
    return any(
        _node_matches(qnode, dnode, hasher)
        for dnode in parent.children
        if not dnode.is_value
    )


def _node_matches(qnode: QueryNode, dnode: XmlNode, hasher: ValueHasher) -> bool:
    if qnode.is_dslash:
        return _child_matches(qnode, dnode, hasher)
    if not qnode.is_star and dnode.label != qnode.label:
        return False
    if qnode.value is not None and not _value_satisfies(qnode, dnode, hasher):
        return False
    return all(_child_matches(qchild, dnode, hasher) for qchild in qnode.children)


def _value_satisfies(qnode: QueryNode, dnode: XmlNode, hasher: ValueHasher) -> bool:
    assert qnode.value is not None
    for child in dnode.children:
        if not child.is_value:
            continue
        if qnode.op == "=":
            if hasher(child.value) == hasher(qnode.value):
                return True
        elif _compare(child.value, qnode.op, qnode.value):
            return True
    return False


def _compare(raw: str, op: str, operand: str) -> bool:
    left: Union[str, float]
    right: Union[str, float]
    try:
        left, right = float(raw), float(operand.strip())
    except ValueError:
        left, right = raw, operand.strip()
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right
