"""The differential oracle: every index family vs. the reference.

For each seed the oracle generates a corpus and a batch of queries
(:class:`~repro.testing.generator.DocQueryGenerator`), evaluates each
query with the naive reference evaluator
(:mod:`repro.testing.reference`), and then drives the whole index zoo:

* **ViST in all 12 configurations** — packed kernels on (posting cache
  on/off × batched on/off × FilePager/WalPager) plus the plain fallback
  path (posting cache on/off × batched on/off × FilePager);
* **Naive** (Algorithm 1 on the materialised trie) and **RIST** (static
  labels);
* the two join-based baselines (**PathIndex**, **XissIndex**), which are
  natively exact.

Two equalities are asserted per query:

* *exact*: ``query(verify=True)`` of every index equals the reference
  result set (baselines compare their plain results — they are exact by
  construction);
* *raw*: the unverified subsequence-matching results of Naive, RIST and
  every ViST configuration agree with each other (they implement the
  same Algorithm 2 semantics, so any disagreement is a cache/traversal
  bug even though raw results may legitimately differ from XPath).  The
  comparison runs over :func:`repro.kernels.encode_columns` fingerprints
  of the sorted position sets, so packed and plain configurations are
  proven *byte identical*, not merely equal under Python ``==``.

On the first divergence of a seed the failing case is **shrunk**
(greedy: drop documents, prune document subtrees, simplify the query)
and reported with everything needed to replay it.  Failure reports can
be serialised to JSON for CI artifacts.

Reproduce a failing seed::

    PYTHONPATH=src python -m repro.testing.oracle --seeds N --start SEED

Run as a module for the CI sweep::

    PYTHONPATH=src python -m repro.testing.oracle --seeds 50 --out failures/
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.baselines.nodeindex import XissIndex
from repro.baselines.pathindex import PathIndex
from repro.doc.model import XmlNode
from repro.index.naive import NaiveIndex
from repro.kernels import encode_columns
from repro.index.rist import RistIndex
from repro.index.vist import VistIndex
from repro.query.ast import QueryNode
from repro.sequence.transform import SequenceEncoder
from repro.storage.pager import FilePager
from repro.storage.wal import WalPager
from repro.testing.generator import DocQueryGenerator
from repro.testing.invariants import assert_invariants
from repro.testing.reference import reference_results

__all__ = [
    "VistConfig",
    "VIST_CONFIGS",
    "Divergence",
    "OracleReport",
    "DifferentialOracle",
]


@dataclass(frozen=True)
class VistConfig:
    """One point of the packed/cache/traversal/pager configuration cube."""

    posting_cache: bool
    batched: bool
    pager: str  # "file" | "wal"
    packed: bool = True

    @property
    def name(self) -> str:
        return "vist[{}+{}+{}+{}]".format(
            "packed" if self.packed else "plain",
            "cache" if self.posting_cache else "nocache",
            "batched" if self.batched else "serial",
            self.pager,
        )


# Packed kernels sweep the full cache × traversal × pager cube; the plain
# fallback path sweeps cache × traversal on the file pager (the pager
# choice is orthogonal to the packed representation).
VIST_CONFIGS: tuple[VistConfig, ...] = tuple(
    VistConfig(posting_cache=cache, batched=batched, pager=pager, packed=True)
    for cache in (True, False)
    for batched in (True, False)
    for pager in ("file", "wal")
) + tuple(
    VistConfig(posting_cache=cache, batched=batched, pager="file", packed=False)
    for cache in (True, False)
    for batched in (True, False)
)


@dataclass
class Divergence:
    """One confirmed disagreement, shrunk and ready to replay."""

    seed: int
    family: str  # index/config name
    kind: str  # "exact" | "raw"
    xpath: str
    expected: list[int]  # corpus positions
    got: list[int]
    documents: list[str] = field(default_factory=list)  # XML of the shrunk corpus

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "family": self.family,
            "kind": self.kind,
            "xpath": self.xpath,
            "expected": self.expected,
            "got": self.got,
            "documents": self.documents,
            "reproduce": (
                f"PYTHONPATH=src python -m repro.testing.oracle "
                f"--start {self.seed} --seeds 1"
            ),
        }


@dataclass
class OracleReport:
    """Aggregate outcome of an oracle run."""

    seeds: int = 0
    pairs: int = 0  # (corpus, query) evaluations
    families: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def write_artifacts(self, directory: str) -> None:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, "oracle-failures.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                [d.to_dict() for d in self.divergences], fh, indent=2, sort_keys=True
            )


class DifferentialOracle:
    """Drives every index family against the reference evaluator."""

    def __init__(
        self,
        *,
        docs_per_seed: int = 5,
        doc_size: int = 10,
        queries_per_seed: int = 4,
        shrink: bool = True,
        check_invariants: bool = True,
    ) -> None:
        self.docs_per_seed = docs_per_seed
        self.doc_size = doc_size
        self.queries_per_seed = queries_per_seed
        self.shrink = shrink
        self.check_invariants = check_invariants

    # -- index construction ----------------------------------------------

    def _build_vist(
        self, config: VistConfig, corpus: Sequence[XmlNode], workdir: str, tag: str = ""
    ) -> tuple[VistIndex, dict[int, int]]:
        db = os.path.join(workdir, f"{config.name}{tag}.db")
        pager = WalPager(db) if config.pager == "wal" else FilePager(db)
        index = VistIndex(
            SequenceEncoder(),
            pager=pager,
            posting_cache_size=64 if config.posting_cache else 0,
            batched=config.batched,
            packed=config.packed,
        )
        ids = index.add_all(corpus)
        return index, {doc_id: pos for pos, doc_id in enumerate(ids)}

    def _build_family(
        self, family: str, corpus: Sequence[XmlNode], workdir: str
    ) -> tuple[object, dict[int, int]]:
        for config in VIST_CONFIGS:
            if family == config.name:
                return self._build_vist(config, corpus, workdir, tag="-shrink")
        ctor = {
            "naive": NaiveIndex,
            "rist": RistIndex,
            "pathindex": PathIndex,
            "xissindex": XissIndex,
        }[family]
        index = ctor(SequenceEncoder())
        ids = index.add_all(corpus)
        return index, {doc_id: pos for pos, doc_id in enumerate(ids)}

    @staticmethod
    def _positions(doc_ids: Sequence[int], id_to_pos: dict[int, int]) -> list[int]:
        return sorted(id_to_pos[d] for d in doc_ids)

    # -- per-seed run ----------------------------------------------------

    def run_seed(self, seed: int) -> tuple[int, list[Divergence]]:
        """Evaluate one seed; returns (pairs evaluated, divergences)."""
        generator = DocQueryGenerator(seed)
        corpus = generator.corpus(self.docs_per_seed, self.doc_size)
        queries = [generator.query(corpus) for _ in range(self.queries_per_seed)]
        hasher = SequenceEncoder().hasher
        divergences: list[Divergence] = []
        with tempfile.TemporaryDirectory(prefix="oracle-") as workdir:
            indexes: dict[str, tuple[object, dict[int, int]]] = {}
            for config in VIST_CONFIGS:
                indexes[config.name] = self._build_vist(config, corpus, workdir)
            for family in ("naive", "rist", "pathindex", "xissindex"):
                indexes[family] = self._build_family(family, corpus, workdir)
            raw_families = ["naive", "rist"] + [c.name for c in VIST_CONFIGS]
            pairs = 0
            for query in queries:
                pairs += 1
                xpath = query.to_xpath()
                expected = reference_results(corpus, query, hasher)
                for family, (index, id_to_pos) in indexes.items():
                    got = self._positions(index.query(query, verify=True), id_to_pos)
                    if got != expected:
                        divergences.append(
                            self._report(
                                seed, family, "exact", corpus, query, expected, got
                            )
                        )
                anchor_family = raw_families[0]
                anchor_index, anchor_map = indexes[anchor_family]
                anchor_raw = self._positions(
                    anchor_index.query(query, verify=False), anchor_map
                )
                # byte-level equality: canonical column encoding of the
                # sorted positions, so packed and plain configurations
                # must agree byte for byte, not just under list ==
                anchor_fp = encode_columns([anchor_raw])
                for family in raw_families[1:]:
                    index, id_to_pos = indexes[family]
                    raw = self._positions(index.query(query, verify=False), id_to_pos)
                    if encode_columns([raw]) != anchor_fp:
                        divergences.append(
                            self._report(
                                seed, family, "raw", corpus, query, anchor_raw, raw
                            )
                        )
                # a verified result can never *exceed* the reference for
                # the raw families (soundness is checked above via
                # equality; this re-asserts the anchor raw is a superset
                # of the exact answer, the documented false-positive-only
                # direction does NOT hold in general, so no assert here)
            if self.check_invariants:
                vist_index, _ = indexes[VIST_CONFIGS[0].name]
                assert_invariants(vist_index)
            # deletion coherence: remove one document from a cached+batched
            # ViST and re-check one query against the shrunken reference
            if corpus and queries:
                index, id_to_pos = indexes[VIST_CONFIGS[0].name]
                victim_pos = generator.rng.randrange(len(corpus))
                victim_id = next(
                    d for d, p in id_to_pos.items() if p == victim_pos
                )
                index.remove(victim_id)
                remaining = [
                    doc for pos, doc in enumerate(corpus) if pos != victim_pos
                ]
                remaining_map = {
                    d: (p if p < victim_pos else p - 1)
                    for d, p in id_to_pos.items()
                    if p != victim_pos
                }
                query = queries[0]
                pairs += 1
                expected = reference_results(remaining, query, hasher)
                got = self._positions(index.query(query, verify=True), remaining_map)
                if got != expected:
                    divergences.append(
                        Divergence(
                            seed=seed,
                            family=VIST_CONFIGS[0].name + "+remove",
                            kind="exact",
                            xpath=query.to_xpath(),
                            expected=expected,
                            got=got,
                            documents=[doc.to_xml() for doc in remaining],
                        )
                    )
                if self.check_invariants:
                    assert_invariants(index)
            for index, _ in indexes.values():
                close = getattr(index, "close", None)
                if close is not None:
                    close()
        return pairs, divergences

    def _report(
        self,
        seed: int,
        family: str,
        kind: str,
        corpus: Sequence[XmlNode],
        query: QueryNode,
        expected: list[int],
        got: list[int],
    ) -> Divergence:
        """Build a divergence report, shrinking the case first."""
        docs = [copy.deepcopy(doc) for doc in corpus]
        shrunk_query = copy.deepcopy(query)
        if self.shrink:
            docs, shrunk_query = self._shrink(family, kind, docs, shrunk_query)
        expected2, got2 = self._evaluate_case(family, kind, docs, shrunk_query)
        return Divergence(
            seed=seed,
            family=family,
            kind=kind,
            xpath=shrunk_query.to_xpath(),
            expected=expected2,
            got=got2,
            documents=[doc.to_xml() for doc in docs],
        )

    # -- shrinking --------------------------------------------------------

    def _evaluate_case(
        self, family: str, kind: str, docs: list[XmlNode], query: QueryNode
    ) -> tuple[list[int], list[int]]:
        """(expected, got) for one family on one corpus/query pair."""
        hasher = SequenceEncoder().hasher
        with tempfile.TemporaryDirectory(prefix="oracle-shrink-") as workdir:
            index, id_to_pos = self._build_family(family, docs, workdir)
            try:
                if kind == "exact":
                    expected = reference_results(docs, query, hasher)
                    got = self._positions(index.query(query, verify=True), id_to_pos)
                else:
                    anchor, anchor_map = self._build_family("naive", docs, workdir)
                    expected = self._positions(
                        anchor.query(query, verify=False), anchor_map
                    )
                    got = self._positions(index.query(query, verify=False), id_to_pos)
            finally:
                close = getattr(index, "close", None)
                if close is not None:
                    close()
        return expected, got

    def _still_fails(
        self, family: str, kind: str, docs: list[XmlNode], query: QueryNode
    ) -> bool:
        if not docs:
            return False
        try:
            expected, got = self._evaluate_case(family, kind, docs, query)
        except Exception:
            return False  # a shrink step that crashes is not a reduction
        return expected != got

    def _shrink(
        self,
        family: str,
        kind: str,
        docs: list[XmlNode],
        query: QueryNode,
        max_rounds: int = 8,
    ) -> tuple[list[XmlNode], QueryNode]:
        """Greedy reduction: fewer docs, smaller docs, simpler query."""
        for _ in range(max_rounds):
            progressed = False
            # drop whole documents
            i = 0
            while i < len(docs):
                candidate = docs[:i] + docs[i + 1 :]
                if self._still_fails(family, kind, candidate, query):
                    docs = candidate
                    progressed = True
                else:
                    i += 1
            # prune one subtree at a time
            for doc_idx, doc in enumerate(docs):
                pruned = True
                while pruned:
                    pruned = False
                    for parent in doc.preorder():
                        for child_idx in range(len(parent.children)):
                            trial = copy.deepcopy(doc)
                            # locate the same parent in the copy by path
                            t_parent = _node_at(trial, _path_to(doc, parent))
                            del t_parent.children[child_idx]
                            candidate = list(docs)
                            candidate[doc_idx] = trial
                            if self._still_fails(family, kind, candidate, query):
                                docs = candidate
                                doc = trial
                                progressed = pruned = True
                                break
                        if pruned:
                            break
            # simplify the query: drop leaves / value predicates
            simplified = True
            while simplified:
                simplified = False
                for node in query.preorder():
                    if node.value is not None:
                        trial = copy.deepcopy(query)
                        _node_at_q(trial, _path_to_q(query, node)).value = None
                        if self._still_fails(family, kind, docs, trial):
                            query = trial
                            progressed = simplified = True
                            break
                    for child_idx in range(len(node.children)):
                        trial = copy.deepcopy(query)
                        t_node = _node_at_q(trial, _path_to_q(query, node))
                        del t_node.children[child_idx]
                        if self._still_fails(family, kind, docs, trial):
                            query = trial
                            progressed = simplified = True
                            break
                    if simplified:
                        break
            if not progressed:
                break
        return docs, query

    # -- batch runs -------------------------------------------------------

    def run(
        self,
        seeds: Sequence[int],
        *,
        progress: Optional[Callable[[int, OracleReport], None]] = None,
    ) -> OracleReport:
        report = OracleReport(families=len(VIST_CONFIGS) + 4)
        for seed in seeds:
            pairs, divergences = self.run_seed(seed)
            report.seeds += 1
            report.pairs += pairs
            report.divergences.extend(divergences)
            if progress is not None:
                progress(seed, report)
        return report


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.testing.oracle",
        description="differential oracle: all index families vs. the reference",
    )
    parser.add_argument("--seeds", type=int, default=50, help="number of seeds")
    parser.add_argument("--start", type=int, default=0, help="first seed")
    parser.add_argument("--docs", type=int, default=5, help="documents per seed")
    parser.add_argument("--doc-size", type=int, default=10, help="nodes per document")
    parser.add_argument("--queries", type=int, default=4, help="queries per seed")
    parser.add_argument("--out", help="directory for the failure artifact JSON")
    parser.add_argument(
        "--no-shrink", action="store_true", help="report divergences unshrunk"
    )
    args = parser.parse_args(argv)
    oracle = DifferentialOracle(
        docs_per_seed=args.docs,
        doc_size=args.doc_size,
        queries_per_seed=args.queries,
        shrink=not args.no_shrink,
    )
    report = oracle.run(range(args.start, args.start + args.seeds))
    print(
        f"oracle: {report.seeds} seed(s), {report.pairs} document/query pair(s), "
        f"{report.families} famil(ies)/config(s), "
        f"{len(report.divergences)} divergence(s)"
    )
    for divergence in report.divergences:
        print(json.dumps(divergence.to_dict(), indent=2, sort_keys=True))
    if args.out and report.divergences:
        report.write_artifacts(args.out)
        print(f"failure artifacts written to {args.out}")
    return 1 if report.divergences else 0


def _path_to(root: XmlNode, target: XmlNode) -> list[int]:
    """Child-index path from ``root`` to ``target`` (identity match)."""

    def walk(node: XmlNode, path: list[int]) -> Optional[list[int]]:
        if node is target:
            return path
        for i, child in enumerate(node.children):
            found = walk(child, path + [i])
            if found is not None:
                return found
        return None

    found = walk(root, [])
    assert found is not None
    return found


def _node_at(root: XmlNode, path: list[int]) -> XmlNode:
    node = root
    for i in path:
        node = node.children[i]
    return node


def _path_to_q(root: QueryNode, target: QueryNode) -> list[int]:
    def walk(node: QueryNode, path: list[int]) -> Optional[list[int]]:
        if node is target:
            return path
        for i, child in enumerate(node.children):
            found = walk(child, path + [i])
            if found is not None:
                return found
        return None

    found = walk(root, [])
    assert found is not None
    return found


def _node_at_q(root: QueryNode, path: list[int]) -> QueryNode:
    node = root
    for i in path:
        node = node.children[i]
    return node


if __name__ == "__main__":
    raise SystemExit(main())
