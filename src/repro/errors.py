"""Exception hierarchy for the ViST reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Sub-hierarchies
mirror the package layout (storage, documents, queries, labeling, index).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class StorageError(ReproError):
    """Base class for storage-layer failures."""


class PageError(StorageError):
    """A page id is out of range, freed, or a page file is corrupt."""


class CodecError(StorageError):
    """A value cannot be encoded to (or decoded from) its byte form."""


class KeyTooLargeError(StorageError):
    """A key/value pair is too large to fit in a single B+Tree page."""


class DuplicateEntryError(StorageError):
    """An exact ``(key, value)`` pair already exists and duplicates are off."""


class DocumentError(ReproError):
    """Base class for XML document model / parsing failures."""


class XmlParseError(DocumentError):
    """Raised when XML text cannot be parsed."""


class SchemaError(DocumentError):
    """Raised for malformed schema definitions or schema violations."""


class QueryError(ReproError):
    """Base class for query-processing failures."""


class QueryParseError(QueryError):
    """Raised when an XPath-subset expression cannot be parsed."""


class TranslationError(QueryError):
    """Raised when a query tree cannot be translated to sequences."""


class LabelingError(ReproError):
    """Base class for scope-labelling failures."""


class ScopeUnderflowError(LabelingError):
    """A scope cannot supply a sub-scope of the requested size.

    ViST normally *handles* underflow by borrowing from ancestors
    (Section 3.4.1); this error escapes only when the whole ancestor
    chain, including the root, is exhausted.
    """


class IndexStateError(ReproError):
    """An index operation was attempted in an invalid state."""


class DatasetError(ReproError):
    """Raised by dataset generators for invalid parameters."""
