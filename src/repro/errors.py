"""Exception hierarchy for the ViST reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Sub-hierarchies
mirror the package layout (storage, documents, queries, labeling, index).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class StorageError(ReproError):
    """Base class for storage-layer failures."""


class PageError(StorageError):
    """A page id is out of range, freed, or a page file is corrupt."""


class CorruptionError(StorageError):
    """Stored bytes fail their checksum or structural validation.

    Base class for the corruption-defense layer: callers that implement
    graceful degradation (quarantine, salvage, degraded-mode answers)
    catch this one class to cover both paged and record storage.
    """


class CorruptPageError(CorruptionError, PageError):
    """A page's CRC trailer does not match its content.

    Carries enough context to quarantine and report: the file ``path``,
    the ``page_id``, the ``stored`` and ``computed`` checksums, and the
    byte ``offset`` of the page slot inside the file.
    """

    def __init__(
        self,
        path: str,
        page_id: int,
        stored: int,
        computed: int,
        offset: int = -1,
        detail: str = "",
    ) -> None:
        message = (
            f"{path}: page {page_id} checksum mismatch at offset {offset} "
            f"(stored 0x{stored:08x}, computed 0x{computed:08x})"
        )
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.path = path
        self.page_id = page_id
        self.stored = stored
        self.computed = computed
        self.offset = offset


class CorruptRecordError(CorruptionError):
    """A document-store record's CRC does not match its payload."""

    def __init__(
        self, path: str, doc_id: int, stored: int, computed: int, offset: int = -1
    ) -> None:
        super().__init__(
            f"{path}: record for doc {doc_id} checksum mismatch at offset "
            f"{offset} (stored 0x{stored:08x}, computed 0x{computed:08x})"
        )
        self.path = path
        self.doc_id = doc_id
        self.stored = stored
        self.computed = computed
        self.offset = offset


class TransientIOError(StorageError):
    """Marker for I/O failures worth retrying (flaky disk, EINTR).

    The storage layer retries these with backoff; one that escapes means
    the fault persisted through every attempt.
    """


class CodecError(StorageError):
    """A value cannot be encoded to (or decoded from) its byte form."""


class KeyTooLargeError(StorageError):
    """A key/value pair is too large to fit in a single B+Tree page."""


class DuplicateEntryError(StorageError):
    """An exact ``(key, value)`` pair already exists and duplicates are off."""


class DocumentError(ReproError):
    """Base class for XML document model / parsing failures."""


class XmlParseError(DocumentError):
    """Raised when XML text cannot be parsed."""


class SchemaError(DocumentError):
    """Raised for malformed schema definitions or schema violations."""


class QueryError(ReproError):
    """Base class for query-processing failures."""


class QueryParseError(QueryError):
    """Raised when an XPath-subset expression cannot be parsed."""


class TranslationError(QueryError):
    """Raised when a query tree cannot be translated to sequences."""


class QueryGuardError(QueryError):
    """Base class for query-guard interruptions (timeout, budget, cancel)."""


class QueryTimeoutError(QueryGuardError):
    """A query exceeded its wall-clock deadline."""

    def __init__(self, deadline_ms: float, elapsed_ms: float) -> None:
        super().__init__(
            f"query exceeded its {deadline_ms:g} ms deadline "
            f"({elapsed_ms:.1f} ms elapsed)"
        )
        self.deadline_ms = deadline_ms
        self.elapsed_ms = elapsed_ms


class QueryBudgetExceededError(QueryGuardError):
    """A query exceeded a resource budget (matcher steps or page reads)."""

    def __init__(self, resource: str, limit: int, used: int) -> None:
        super().__init__(
            f"query exceeded its {resource} budget ({used} > {limit})"
        )
        self.resource = resource
        self.limit = limit
        self.used = used


class QueryCancelledError(QueryGuardError):
    """The query's guard was cooperatively cancelled."""


class LabelingError(ReproError):
    """Base class for scope-labelling failures."""


class ScopeUnderflowError(LabelingError):
    """A scope cannot supply a sub-scope of the requested size.

    ViST normally *handles* underflow by borrowing from ancestors
    (Section 3.4.1); this error escapes only when the whole ancestor
    chain, including the root, is exhausted.
    """


class IndexStateError(ReproError):
    """An index operation was attempted in an invalid state."""


class ShardError(ReproError):
    """Base class for sharded-serving failures (routing, wire, workers)."""


class ProtocolError(ShardError):
    """The shard wire protocol was violated.

    Covers framing damage (a length prefix over the 64 MiB cap, a stream
    cut mid-frame, a payload that is not UTF-8 JSON) and malformed
    request/response objects.  CLI exit code 7 — a protocol violation
    means a bug or a hostile/damaged peer, never a query-shaped failure,
    so it is kept distinct from both generic errors and corruption.
    """


class ShardUnavailableError(ShardError):
    """A shard's worker did not answer: dead, unreachable, or too slow.

    Raised (or captured into a :class:`ShardQueryError`) when a worker
    process exits, its connection reaches EOF/reset, an RPC misses its
    deadline, or the shard has been marked ``down`` after exhausting its
    restart budget.  This is the *availability* failure class: it is the
    only kind of per-shard failure that ``--partial`` mode degrades into
    a missing-shard annotation, and the only kind the per-RPC retry
    machinery considers retryable.  CLI exit code 8.
    """

    def __init__(self, shard: int, reason: str = "") -> None:
        message = f"shard {shard} is unavailable"
        if reason:
            message += f": {reason}"
        super().__init__(message)
        self.shard = shard
        self.reason = reason


class ShardQueryError(ShardError):
    """One or more shards failed to answer a scatter-gather query.

    Captured per :class:`~repro.exec.executor.QueryOutcome` — a failing
    shard poisons *that outcome*, never the executor — with the per-shard
    causes in :attr:`shard_errors` (shard index → exception).
    """

    def __init__(self, shard_errors: dict) -> None:
        detail = "; ".join(
            f"shard {k}: {type(exc).__name__}: {exc}"
            for k, exc in sorted(shard_errors.items())
        )
        super().__init__(
            f"{len(shard_errors)} shard(s) failed to answer: {detail}"
        )
        self.shard_errors = dict(shard_errors)


class DatasetError(ReproError):
    """Raised by dataset generators for invalid parameters."""
