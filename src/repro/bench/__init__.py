"""Benchmark harness: corpus/index builders, timing, paper-style reports."""

from repro.bench.harness import INDEX_KINDS, Report, build_index, time_call, time_queries
from repro.bench.workloads import TABLE3_QUERIES, Table3Query

__all__ = [
    "INDEX_KINDS",
    "build_index",
    "time_call",
    "time_queries",
    "Report",
    "TABLE3_QUERIES",
    "Table3Query",
]
