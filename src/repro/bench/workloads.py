"""Query workloads for the benchmark suite.

``TABLE3_QUERIES`` are the eight queries of paper Table 3 (Q1–Q5 over
DBLP, Q6–Q8 over XMark), expressed in this package's XPath subset.  The
synthetic workloads (random structural queries of a given length) come
from :class:`~repro.datasets.synthetic.SyntheticGenerator` directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.dblp import MAIER_KEY
from repro.datasets.xmark import TARGET_DATE

__all__ = ["Table3Query", "TABLE3_QUERIES"]


@dataclass(frozen=True)
class Table3Query:
    """One row of paper Table 3."""

    qid: str
    dataset: str  # "dblp" | "xmark"
    xpath: str
    kind: str  # the paper's characterisation of the query


TABLE3_QUERIES = [
    Table3Query("Q1", "dblp", "/inproceedings/title", "single path"),
    Table3Query("Q2", "dblp", "/book/author[text='David']", "path + value"),
    Table3Query("Q3", "dblp", "/*/author[text='David']", "star + value"),
    Table3Query("Q4", "dblp", "//author[text='David']", "dslash + value"),
    Table3Query("Q5", "dblp", f"/book[key='{MAIER_KEY}']/author", "branch"),
    Table3Query(
        "Q6",
        "xmark",
        f"/site//item[location='US']/mail/date[text='{TARGET_DATE}']",
        "dslash + branch + values",
    ),
    Table3Query(
        "Q7",
        "xmark",
        "/site//person/*/city[text='Pocatello']",
        "dslash + star + value",
    ),
    Table3Query(
        "Q8",
        "xmark",
        f"//closed_auction[*[person='person1']]/date[text='{TARGET_DATE}']",
        "dslash + star branch + values",
    ),
]
