"""Experiment harness: corpus builders, timing, and paper-style reports.

Each benchmark module reproduces one table or figure of the paper's
Section 4.  The harness centralises what they share: building the
corpora, loading each index type, timing query batches, and printing the
measured rows/series next to the paper's own numbers so the *shape*
comparison (who wins, by what factor) is one glance away.

Reports are printed to stdout and appended to
``benchmarks/_results/<experiment>.txt`` so a full benchmark run leaves a
reviewable transcript behind (EXPERIMENTS.md records one such snapshot).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.baselines.apex import ApexIndex
from repro.baselines.nodeindex import XissIndex
from repro.baselines.pathindex import PathIndex
from repro.index.naive import NaiveIndex
from repro.index.rist import RistIndex
from repro.index.vist import VistIndex
from repro.kernels import packed_enabled
from repro.sequence.transform import SequenceEncoder

__all__ = [
    "INDEX_KINDS",
    "build_index",
    "query_cache_enabled",
    "time_call",
    "time_queries",
    "parallel_throughput",
    "sharded_throughput",
    "Report",
    "bench_json_path",
    "metrics_snapshot",
    "write_bench_json",
    "read_bench_json",
]

INDEX_KINDS = ("vist", "rist", "naive", "path", "xiss", "apex")

_FACTORIES = {
    "vist": VistIndex,
    "rist": RistIndex,
    "naive": NaiveIndex,
    "path": PathIndex,
    "xiss": XissIndex,
    "apex": ApexIndex,
}

#: Environment switch for the query-path caches: set ``REPRO_QUERY_CACHE=0``
#: (or pass ``--no-query-cache`` to the benchmark suite) to build ViST/RIST
#: indexes with the posting cache disabled, i.e. the paper's original
#: per-scan access path.  Lets the same benchmark run in both modes.
_CACHE_ENV = "REPRO_QUERY_CACHE"
_DEFAULT_POSTING_CACHE = 512


def query_cache_enabled() -> bool:
    """Whether benchmark-built indexes use the posting cache."""
    return os.environ.get(_CACHE_ENV, "1") != "0"


def build_index(kind: str, documents: Iterable, schema=None, **kwargs):
    """Build an index of the given kind over ``documents``.

    ``kind`` is one of :data:`INDEX_KINDS`.  ViST/RIST default to
    refcount-free ingestion here (benchmarks measure the paper's
    configuration; deletion benchmarks opt back in) and honour the
    ``REPRO_QUERY_CACHE`` switch for the posting cache.
    """
    encoder = SequenceEncoder(schema=schema)
    factory = _FACTORIES[kind]
    if kind == "vist":
        kwargs.setdefault("track_refs", False)
    if kind in ("vist", "rist"):
        kwargs.setdefault(
            "posting_cache_size",
            _DEFAULT_POSTING_CACHE if query_cache_enabled() else 0,
        )
    index = factory(encoder, **kwargs)
    for doc in documents:
        index.add(doc)
    if kind == "rist":
        index.finalize()
    return index


def time_call(fn: Callable[[], object]) -> tuple[float, object]:
    """Wall-clock one call; returns ``(seconds, result)``."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def time_queries(index, queries: Sequence, repeats: int = 1) -> float:
    """Total seconds to run every query ``repeats`` times."""
    start = time.perf_counter()
    for _ in range(repeats):
        for query in queries:
            index.query(query)
    return time.perf_counter() - start


def parallel_throughput(
    index,
    queries: Sequence,
    threads: int = 4,
    repeats: int = 1,
    verify: bool = False,
) -> dict:
    """Single-thread vs N-thread throughput over one shared index.

    Runs the workload once sequentially and once through a
    :class:`~repro.exec.QueryExecutor`, and returns a dict suitable for
    embedding in a ``BENCH_<name>.json`` payload.  ``errors`` counts
    outcomes whose query raised; with the CPython GIL and this repo's
    pure-Python matcher the speedup is bounded by how much of the work
    releases the interpreter lock, so treat the number as a concurrency
    smoke signal, not a scalability claim.
    """
    from repro.exec import QueryExecutor

    workload = [query for _ in range(repeats) for query in queries]
    single_seconds = time_queries(index, queries, repeats=repeats)
    with QueryExecutor(index, threads=threads, verify=verify) as executor:
        start = time.perf_counter()
        outcomes = executor.run(workload)
        parallel_seconds = time.perf_counter() - start
    errors = sum(1 for outcome in outcomes if not outcome.ok)
    return {
        "threads": threads,
        "queries": len(workload),
        "single_thread_seconds": single_seconds,
        "parallel_seconds": parallel_seconds,
        "single_thread_qps": len(workload) / single_seconds if single_seconds else 0.0,
        "parallel_qps": len(workload) / parallel_seconds if parallel_seconds else 0.0,
        "speedup": single_seconds / parallel_seconds if parallel_seconds else 0.0,
        "errors": errors,
    }


def sharded_throughput(
    documents: Sequence,
    queries: Sequence,
    workers_list: Sequence[int] = (1, 2, 4),
    repeats: int = 1,
    verify: bool = False,
    tmpdir: Optional[str] = None,
) -> dict:
    """Multi-process scatter-gather throughput at several shard counts.

    For each entry of ``workers_list`` the documents are hash-routed into
    a fresh on-disk database with that many shards, one worker *process*
    per shard is spawned (:class:`~repro.shard.ShardedExecutor`), and the
    whole workload is pipelined through the scatter-gather path.  The
    baseline is the same on-disk corpus in a single directory queried
    sequentially in-process — so ``speedup`` is process-parallelism
    against one process, disk format and matcher identical.

    ``cpu_count`` is recorded because it bounds everything: W workers on
    fewer than W cores time-slice instead of scaling, so judge the
    speedup column against the cores that were actually available.
    """
    import shutil
    import tempfile

    from repro.shard import ShardRouter, ShardedExecutor

    workload = [query for _ in range(repeats) for query in queries]
    root = tempfile.mkdtemp(prefix="repro-shardbench-", dir=tmpdir)
    out: dict = {
        "cpu_count": os.cpu_count(),
        "queries": len(workload),
        "workers": [],
    }
    try:
        base = os.path.join(root, "base")
        with ShardRouter(base, 1) as router:
            for doc in documents:
                router.add(doc)
        with ShardRouter(base) as router:
            for query in queries:  # warm the caches like the timed loop will
                router.query(query, verify=verify)
            start = time.perf_counter()
            for query in workload:
                router.query(query, verify=verify)
            single_seconds = time.perf_counter() - start
        out["single_process_seconds"] = single_seconds
        out["single_process_qps"] = (
            len(workload) / single_seconds if single_seconds else 0.0
        )
        for workers in workers_list:
            dbdir = os.path.join(root, f"w{workers}")
            with ShardRouter(dbdir, workers) as router:
                for doc in documents:
                    router.add(doc)
            with ShardedExecutor(dbdir, workers=workers, verify=verify) as executor:
                for outcome in executor.run(list(queries)):  # warm workers
                    pass
                start = time.perf_counter()
                # submit everything before collecting anything: requests
                # pipeline across every worker at once, which is the point
                futures = [
                    executor.submit(query, i) for i, query in enumerate(workload)
                ]
                outcomes = [future.result() for future in futures]
                seconds = time.perf_counter() - start
            errors = sum(1 for outcome in outcomes if not outcome.ok)
            out["workers"].append({
                "workers": workers,
                "seconds": seconds,
                "qps": len(workload) / seconds if seconds else 0.0,
                "speedup": single_seconds / seconds if seconds else 0.0,
                "errors": errors,
            })
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return out


@dataclass
class Report:
    """Collects measured rows for one experiment and prints/saves them.

    ``bar_column`` (an index into ``headers``) appends an ASCII bar chart
    column scaled to the column's maximum — the figure benchmarks use it
    so the curve shape is visible straight from the terminal.
    """

    experiment: str
    title: str
    headers: Sequence[str]
    paper_note: str = ""
    bar_column: Optional[int] = None
    rows: list[Sequence] = field(default_factory=list)

    _BAR_WIDTH = 24

    def add(self, *row) -> None:
        self.rows.append(row)

    def render(self) -> str:
        headers = list(self.headers)
        rows = [list(r) for r in self.rows]
        if self.bar_column is not None and rows:
            values = [float(r[self.bar_column]) for r in rows]
            top = max(values) or 1.0
            headers.append("")
            for r, v in zip(rows, values):
                r.append("▌" * max(1, round(self._BAR_WIDTH * v / top)))
        widths = [
            max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
            for i, h in enumerate(headers)
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        if self.paper_note:
            lines.append(f"   paper: {self.paper_note}")
        lines.append("   " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
        for row in rows:
            lines.append(
                "   " + "  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths))
            )
        return "\n".join(lines)

    def emit(self, directory: Optional[str] = None) -> None:
        """Print the table and persist it under ``benchmarks/_results``."""
        text = self.render()
        print("\n" + text)
        if directory is None:
            directory = os.path.join(os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
                "benchmarks", "_results")
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.experiment}.txt")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(text + "\n\n")


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


# ----------------------------------------------------------------------
# machine-readable results (perf trajectory across PRs)


def _repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))


def metrics_snapshot(index) -> Optional[dict]:
    """The index's full metrics-registry dump (see :mod:`repro.obs`).

    Benchmarks embed this in their ``BENCH_<name>.json`` payload so a
    headline regression can be attributed to a stage — range queries,
    cache hit rates, pager reads, tree shape — instead of re-profiling.
    Returns ``None`` for index objects without a registry.
    """
    registry = getattr(index, "metrics", None)
    return registry.snapshot() if registry is not None else None


def bench_json_path(name: str, directory: Optional[str] = None) -> str:
    """Path of the ``BENCH_<name>.json`` snapshot (repo root by default)."""
    return os.path.join(directory or _repo_root(), f"BENCH_{name}.json")


def write_bench_json(name: str, payload: dict, directory: Optional[str] = None) -> str:
    """Persist one benchmark's machine-readable results.

    ``payload`` carries per-query timings, MatchStats, and cache stats;
    a ``headline_seconds`` key is what the CI smoke job compares across
    commits (``benchmarks/check_regression.py``).  The file lands at the
    repo root as ``BENCH_<name>.json`` so the perf trajectory is tracked
    in version control PR over PR.
    """
    path = bench_json_path(name, directory)
    doc = {
        "experiment": name,
        "query_cache": query_cache_enabled(),
        "packed": packed_enabled(),
        **payload,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_bench_json(name: str, directory: Optional[str] = None) -> Optional[dict]:
    """Load a benchmark snapshot, or ``None`` if it was never written."""
    path = bench_json_path(name, directory)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
