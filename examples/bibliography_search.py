"""Bibliography search over a DBLP-like corpus — the Table 3 DBLP queries.

Generates a synthetic bibliography shaped like the paper's DBLP testbed,
indexes it with ViST *on disk*, and runs the five DBLP queries of Table 3
(single path, value predicates, ``*``, ``//``, and a branching
key-lookup).  Demonstrates file-backed persistence: the index and the
document store are reopened from disk before querying.

Run:  python examples/bibliography_search.py
"""

import tempfile
from pathlib import Path

from repro import (
    DblpConfig,
    DblpGenerator,
    FileDocStore,
    FilePager,
    SequenceEncoder,
    VistIndex,
)
from repro.datasets.dblp import MAIER_KEY

N_RECORDS = 400


def build(workdir: Path) -> None:
    generator = DblpGenerator(DblpConfig(seed=42, david_rate=0.03))
    index = VistIndex(
        SequenceEncoder(schema=generator.schema),
        docstore=FileDocStore(workdir / "docs.dat"),
        pager=FilePager(workdir / "vist.db"),
    )
    for record in generator.records(N_RECORDS):
        index.add(record)
    index.flush()
    index.close()
    index.docstore.close()
    print(f"built a {N_RECORDS}-record bibliography index in {workdir}")


def search(workdir: Path) -> None:
    generator = DblpGenerator(DblpConfig(seed=42))  # same schema
    index = VistIndex(
        SequenceEncoder(schema=generator.schema),
        docstore=FileDocStore(workdir / "docs.dat"),
        pager=FilePager(workdir / "vist.db"),
    )
    queries = [
        ("Q1 all inproceedings titles", "/inproceedings/title"),
        ("Q2 books by David", "/book/author[text='David']"),
        ("Q3 any record type by David", "/*/author[text='David']"),
        ("Q4 David at any depth", "//author[text='David']"),
        ("Q5 authors of the Maier book", f"/book[key='{MAIER_KEY}']/author"),
    ]
    for title, xpath in queries:
        result = index.query(xpath)
        preview = result[:8]
        more = f" (+{len(result) - len(preview)} more)" if len(result) > 8 else ""
        print(f"{title}\n    {xpath}\n    -> {len(result)} records: {preview}{more}")
    # show one matching record reconstructed from its stored sequence
    maier = index.query(f"/book[key='{MAIER_KEY}']/author")
    if maier:
        sequence = index.load_sequence(maier[0])
        print(f"\nstored sequence of doc {maier[0]} ({len(sequence)} items):")
        print("   ", sequence.preorder_string()[:100])
    index.close()
    index.docstore.close()


def main():
    with tempfile.TemporaryDirectory(prefix="vist-dblp-") as tmp:
        workdir = Path(tmp)
        build(workdir)
        search(workdir)


if __name__ == "__main__":
    main()
