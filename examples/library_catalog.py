"""Library catalogue — the extension features working together.

Shows the capabilities this reproduction adds *around* the paper's
algorithm: range/inequality predicates (answered through source-based
verification), node-granularity results (`query_nodes`), original
document retrieval (`source_store` + `get_document`), and crash-safe
persistence (`WalPager`).

Run:  python examples/library_catalog.py
"""

import tempfile
from pathlib import Path

from repro import (
    FileDocStore,
    SequenceEncoder,
    VistIndex,
    WalPager,
    XmlNode,
)

BOOKS = [
    ("A Relational Model of Data", "Codd", "1970", "49.50"),
    ("The Art of Computer Programming", "Knuth", "1968", "199.00"),
    ("Computing with Logic", "Maier", "1988", "75.00"),
    ("Transaction Processing", "Gray", "1992", "120.00"),
    ("Mining the Web", "Chakrabarti", "2002", "65.00"),
    ("Data on the Web", "Abiteboul", "1999", "80.00"),
]


def make_book(title, author, year, price) -> XmlNode:
    book = XmlNode("book")
    book.element("title", text=title)
    book.element("author", text=author)
    book.element("year", text=year)
    book.element("price", text=price)
    return book


def main():
    with tempfile.TemporaryDirectory(prefix="vist-library-") as tmp:
        workdir = Path(tmp)
        index = VistIndex(
            SequenceEncoder(),
            docstore=FileDocStore(workdir / "docs.dat"),
            pager=WalPager(workdir / "catalog.db"),  # crash-safe commits
            source_store=FileDocStore(workdir / "sources.dat"),
        )
        for fields in BOOKS:
            index.add(make_book(*fields))
        index.flush()  # durable transaction boundary
        print(f"catalogued {len(index)} books (WAL-backed, sources retained)")

        print("\n-- range queries (extension: verified against raw text) --")
        for expr in [
            "/book[year>='1990']",
            "/book[price<'70']",
            "/book[year>'1965'][year<'1990']",
        ]:
            hits = index.query(expr)
            titles = [
                index.get_document(doc_id).root.children[0].text for doc_id in hits
            ]
            print(f"{expr}\n    -> {titles}")

        print("\n-- node-granularity results --")
        nodes = index.query_nodes("/book/author")
        doc_id, positions = next(iter(nodes.items()))
        seq = index.load_sequence(doc_id)
        print(f"query /book/author binds node positions per doc, e.g. doc "
              f"{doc_id} -> {positions} (symbol {seq[positions[0]].symbol!r})")

        print("\n-- document retrieval --")
        (maier,) = index.query("/book/author[text='Maier']")
        print(index.get_document(maier).to_xml())

        index.close()
        index.docstore.close()
        index.source_store.close()


if __name__ == "__main__":
    main()
