"""Quickstart: index the paper's purchase records and run its queries.

Builds the Figure 1/Figure 3 world — purchase records with sellers,
buyers, items and sub-items — indexes them with ViST, and runs the four
queries of Figure 2, including the branching, ``*`` and ``//`` forms
that path-at-a-time indexes need joins for.

Run:  python examples/quickstart.py
"""

from repro import Schema, SequenceEncoder, VistIndex, XmlNode

PURCHASE_DTD = """
<!ELEMENT purchase (seller, buyer)>
<!ELEMENT seller   (item*)>
<!ATTLIST seller   name CDATA location CDATA>
<!ELEMENT buyer    (item*)>
<!ATTLIST buyer    name CDATA location CDATA>
<!ELEMENT item     (manufacturer?, item*)>
<!ELEMENT manufacturer (#PCDATA)>
"""


def make_purchase(seller_loc, buyer_loc, manufacturers, nested=None):
    """One purchase record; ``nested`` adds a sub-item to the first item."""
    purchase = XmlNode("purchase")
    seller = purchase.element(
        "seller", name=f"seller-in-{seller_loc}", location=seller_loc
    )
    for i, maker in enumerate(manufacturers):
        item = seller.element("item")
        item.element("manufacturer", text=maker)
        if i == 0 and nested:
            item.element("item").element("manufacturer", text=nested)
    purchase.element("buyer", name=f"buyer-in-{buyer_loc}", location=buyer_loc)
    return purchase


def main():
    # A schema (parsed from a DTD, as in paper Figure 1) fixes sibling
    # order and feeds the clue-based dynamic labelling of Section 3.4.1.
    schema = Schema.from_dtd(PURCHASE_DTD)
    index = VistIndex(SequenceEncoder(schema=schema))

    orders = [
        make_purchase("boston", "newyork", ["intel", "ibm"]),
        make_purchase("boston", "losangeles", ["amd"], nested="intel"),
        make_purchase("seattle", "newyork", ["samsung"]),
        make_purchase("boston", "newyork", [], nested=None),
    ]
    ids = [index.add(order) for order in orders]
    print(f"indexed {len(ids)} purchase records -> doc ids {ids}")

    queries = {
        "Q1  manufacturers of sold items": "/purchase/seller/item/manufacturer",
        "Q2  boston seller AND newyork buyer": (
            "/purchase[seller[location='boston']]/buyer[location='newyork']"
        ),
        "Q3  boston seller OR buyer (via *)": "/purchase/*[location='boston']",
        "Q4  intel anywhere (items or sub-items)": (
            "/purchase//item[manufacturer='intel']"
        ),
    }
    for title, xpath in queries.items():
        result = index.query(xpath)
        print(f"{title}\n    {xpath}\n    -> documents {result}")

    # Dynamic update: ViST labels are allocated on the fly, so insertion
    # and deletion work after the index is live (unlike RIST).
    late = index.add(make_purchase("boston", "newyork", ["intel"]))
    print(f"\nadded doc {late} after queries ran;",
          "Q2 now ->", index.query(queries["Q2  boston seller AND newyork buyer"]))
    index.remove(late)
    print(f"removed doc {late};",
          "Q2 back to ->", index.query(queries["Q2  boston seller AND newyork buyer"]))


if __name__ == "__main__":
    main()
