"""Auction-site analytics — the Table 3 XMark queries, plus verified mode.

Generates XMark-like substructure records (items, people, auctions),
indexes them with ViST, runs Table 3's Q6–Q8, and contrasts raw ViST
matching with the verified (tree-embedding-checked) mode on a query
shape where raw matching over-reports — the soundness caveat DESIGN.md
documents.

Run:  python examples/auction_site.py
"""

from repro import SequenceEncoder, VistIndex, XmarkConfig, XmarkGenerator, XmlNode
from repro.datasets.xmark import TARGET_DATE

N_RECORDS = 600


def main():
    config = XmarkConfig(
        seed=7, us_rate=0.3, target_date_rate=0.15,
        pocatello_rate=0.1, person1_rate=0.2,
    )
    generator = XmarkGenerator(config)
    index = VistIndex(SequenceEncoder(schema=generator.schema))
    for record in generator.records(N_RECORDS):
        index.add(record)
    print(f"indexed {N_RECORDS} auction-site substructure records")

    queries = [
        (
            "Q6 US items with mail on the target date",
            f"/site//item[location='US']/mail/date[text='{TARGET_DATE}']",
        ),
        (
            "Q7 people in Pocatello",
            "/site//person/*/city[text='Pocatello']",
        ),
        (
            "Q8 closed auctions involving person1 on the target date",
            f"//closed_auction[*[person='person1']]/date[text='{TARGET_DATE}']",
        ),
    ]
    for title, xpath in queries:
        raw = index.query(xpath)
        verified = index.query(xpath, verify=True)
        print(f"{title}\n    {xpath}")
        print(f"    raw ViST matching : {len(raw)} records")
        print(f"    verified (exact)  : {len(verified)} records")

    # The classic false-positive shape: branches satisfied by *different*
    # sibling subtrees.  Raw subsequence matching accepts it; the
    # verification pass rejects it.
    print("\n-- soundness caveat demo --")
    adversarial = XmlNode("A")
    adversarial.element("B").element("C")
    adversarial.element("B").element("D")
    genuine = XmlNode("A")
    both = genuine.element("B")
    both.element("C")
    both.element("D")
    demo = VistIndex()
    fp_id = demo.add(adversarial)
    tp_id = demo.add(genuine)
    xpath = "/A/B[C][D]"
    print(f"query {xpath}")
    print(f"    raw      -> {demo.query(xpath)}   (doc {fp_id} is a false positive)")
    print(f"    verified -> {demo.query(xpath, verify=True)}   (only doc {tp_id})")


if __name__ == "__main__":
    main()
