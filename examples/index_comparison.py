"""Index shoot-out — ViST vs the paper's baselines on one corpus.

Loads the same purchase-record corpus into all five index structures
implemented in this package (Naive, RIST, ViST, the Index Fabric-like
path index and the XISS-like node index), checks that they agree on
every query, and prints per-query timings plus the join/scan counters
that explain *why* the join-based baselines fall behind on branching and
wildcard queries — the paper's central argument, at example scale.

Run:  python examples/index_comparison.py
"""

import time

from repro import (
    NaiveIndex,
    PathIndex,
    RistIndex,
    SequenceEncoder,
    VistIndex,
    XissIndex,
    XmlNode,
)


def make_corpus(count=300):
    import random

    rng = random.Random(3)
    locations = ["boston", "newyork", "seattle", "austin", "denver"]
    makers = ["intel", "amd", "ibm", "samsung"]
    docs = []
    for _ in range(count):
        purchase = XmlNode("purchase")
        seller = purchase.element("seller", location=rng.choice(locations))
        for _ in range(rng.randint(0, 3)):
            item = seller.element("item")
            item.element("manufacturer", text=rng.choice(makers))
            if rng.random() < 0.3:
                item.element("item").element(
                    "manufacturer", text=rng.choice(makers)
                )
        purchase.element("buyer", location=rng.choice(locations))
        docs.append(purchase)
    return docs


QUERIES = [
    ("single path", "/purchase/seller/item/manufacturer"),
    ("branching", "/purchase[seller[location='boston']]/buyer[location='newyork']"),
    ("star", "/purchase/*[location='boston']"),
    ("dslash", "/purchase//item[manufacturer='intel']"),
]


def main():
    docs = make_corpus()
    indexes = {
        "naive": NaiveIndex(SequenceEncoder()),
        "rist": RistIndex(SequenceEncoder()),
        "vist": VistIndex(SequenceEncoder()),
        "path": PathIndex(SequenceEncoder()),
        "xiss": XissIndex(SequenceEncoder()),
    }
    for name, index in indexes.items():
        start = time.perf_counter()
        for doc in docs:
            index.add(doc)
        if name == "rist":
            index.finalize()
        print(f"built {name:<5} in {time.perf_counter() - start:.3f}s")

    print()
    header = f"{'query':<14}" + "".join(f"{name:>10}" for name in indexes) + "   answers"
    print(header)
    for title, xpath in QUERIES:
        times = {}
        answers = None
        for name, index in indexes.items():
            start = time.perf_counter()
            result = index.query(xpath)
            times[name] = time.perf_counter() - start
            if answers is None:
                answers = result
            assert result == answers, f"{name} disagrees on {xpath}"
        row = f"{title:<14}" + "".join(f"{times[n] * 1000:>9.2f}m" for n in indexes)
        print(f"{row}   {len(answers)}")

    print("\njoin/scan effort on the baselines (ViST used zero joins):")
    print(f"  path index: {indexes['path'].join_count} joins, "
          f"{indexes['path'].scanned_keys} wildcard-scanned keys")
    print(f"  node index: {indexes['xiss'].join_count} joins")


if __name__ == "__main__":
    main()
