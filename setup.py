"""Shim so `pip install -e .` works on environments without the wheel package.

All real metadata lives in pyproject.toml; setuptools reads it from there.
"""

from setuptools import setup

setup()
