"""Figure 10(a) — query processing time vs query length (synthetic).

Paper setup: N = 1,000,000 sequences of average length 30 (k=10, j=8);
random queries of length 2–12; "the query processing time shown in the
figure does not include the time spent in data output after each range
query on the DocId B+Tree".  Paper curve: time grows with query length,
from ≈0.3 s at length 2 to ≈4.5 s at length 12, "as longer queries
require larger amount of index traversals".

Scaled here to N = 6,000 sequences, timing the matching phase
(``final_scopes``) exactly as the paper does.  Expected shape: growth
with query length through length ≈ 10; at this corpus size (170× below
the paper's) random length-12 queries are often unsatisfiable and prune
early, so the last point can dip — EXPERIMENTS.md discusses the scale
effect.
"""

import pytest

from repro.bench.harness import (
    Report,
    build_index,
    metrics_snapshot,
    query_cache_enabled,
)
from repro.datasets.synthetic import SyntheticConfig, SyntheticGenerator
from repro.index.matching import SequenceMatcher
from repro.kernels import packed_enabled

N_DOCS = 6000
DOC_SIZE = 30
QUERY_LENGTHS = [2, 4, 6, 8, 10, 12]
QUERIES_PER_LENGTH = 16

REPORT = Report(
    experiment="fig10a",
    title=f"matching time vs query length (synthetic, N={N_DOCS}, L={DOC_SIZE})",
    headers=["query_length", "seconds_per_query", "range_queries", "final_nodes"],
    bar_column=1,
    paper_note="monotone growth: ~0.3s @ len 2 to ~4.5s @ len 12 (their scale)",
)

_lengths: dict[int, dict] = {}
_index_holder: list = []
_descent_base: list = []


@pytest.fixture(scope="module")
def setup():
    gen = SyntheticGenerator(SyntheticConfig(doc_size=DOC_SIZE, seed=10))
    docs = list(gen.documents(N_DOCS))
    index = build_index("vist", docs)
    _index_holder.append(index)
    # post-build snapshot: the kernels block reports the query-phase
    # descent hit rate (build inserts invalidate on nearly every put)
    _descent_base.append((
        index.tree.descent_hits,
        index.tree.descent_misses,
        index.docid_tree.descent_hits,
        index.docid_tree.descent_misses,
    ))
    batches = {}
    for length in QUERY_LENGTHS:
        queries = gen.queries(QUERIES_PER_LENGTH, size=length)
        batches[length] = [
            alt for q in queries for alt in index.translator.translate(q)
        ]
    return index, batches


@pytest.mark.parametrize("length", QUERY_LENGTHS)
def test_fig10a_query_length(benchmark, setup, length):
    index, batches = setup
    matcher = SequenceMatcher(index)
    batch = batches[length]
    results = benchmark.pedantic(
        lambda: [matcher.final_scopes(qseq) for qseq in batch],
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    per_query = benchmark.stats.stats.median / QUERIES_PER_LENGTH
    final_nodes = sum(len(r) for r in results)
    range_queries = batched_states = cache_hits = cache_misses = 0
    for qseq in batch:
        matcher.final_scopes(qseq)
        range_queries += matcher.stats.range_queries
        batched_states += matcher.stats.batched_states
        cache_hits += matcher.stats.cache_hits
        cache_misses += matcher.stats.cache_misses
    REPORT.add(length, per_query, range_queries // QUERIES_PER_LENGTH, final_nodes)
    _lengths[length] = {
        "seconds_per_query": per_query,
        "range_queries": range_queries,
        "batched_states": batched_states,
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "final_nodes": final_nodes,
    }


def bench_json_payload():
    """Machine-readable Figure 10(a) results (written by conftest teardown)."""
    if not _lengths:
        return None
    kernels = None
    if _index_holder:
        index = _index_holder[0]
        h0, m0, dh0, dm0 = _descent_base[0] if _descent_base else (0, 0, 0, 0)
        ch = index.tree.descent_hits - h0
        cm = index.tree.descent_misses - m0
        dh = index.docid_tree.descent_hits - dh0
        dm = index.docid_tree.descent_misses - dm0
        kernels = {"packed": packed_enabled()}
        if ch + cm:
            kernels["combined_descent_hit_rate"] = ch / (ch + cm)
        # the timed phase never touches the DocId tree (the paper excludes
        # DocId output time), so the rate only exists when seeks happened
        if dh + dm:
            kernels["docid_descent_hit_rate"] = dh / (dh + dm)
    payload = {
        "config": {
            "n_docs": N_DOCS,
            "doc_size": DOC_SIZE,
            "queries_per_length": QUERIES_PER_LENGTH,
            "query_cache": query_cache_enabled(),
        },
        "lengths": {str(k): v for k, v in sorted(_lengths.items())},
        "headline_seconds": sum(v["seconds_per_query"] for v in _lengths.values()),
        "kernels": kernels,
        "cache_stats": _index_holder[0].cache_stats() if _index_holder else None,
        "metrics": metrics_snapshot(_index_holder[0]) if _index_holder else None,
    }
    return "fig10a", payload
