"""Storage-substrate micro-benchmarks (not a paper experiment).

Quantifies the substrate choices DESIGN.md makes on behalf of the paper:
bottom-up bulk loading vs incremental insertion, and the cost of the
WAL pager's durable commits vs the plain file pager.
"""

import pytest

from repro.bench.harness import Report
from repro.storage.bptree import BPlusTree
from repro.storage.pager import FilePager, MemoryPager
from repro.storage.wal import WalPager

N_ENTRIES = 20_000

REPORT = Report(
    experiment="storage",
    title=f"B+Tree substrate micro-benchmarks ({N_ENTRIES} entries)",
    headers=["case", "seconds", "pages"],
    paper_note="(substrate) bulk load beats inserts; WAL costs one journal write",
)


def entries():
    return [(f"key-{i:08d}".encode(), f"val-{i}".encode()) for i in range(N_ENTRIES)]


def test_incremental_insert(benchmark):
    data = entries()

    def build():
        tree = BPlusTree(MemoryPager())
        for k, v in data:
            tree.insert(k, v)
        return tree

    tree = benchmark.pedantic(build, rounds=1, iterations=1)
    REPORT.add("insert (memory)", benchmark.stats.stats.median, tree.stats().total_pages)


def test_bulk_load(benchmark):
    data = entries()

    def build():
        tree = BPlusTree(MemoryPager())
        tree.bulk_load(data)
        return tree

    tree = benchmark.pedantic(build, rounds=1, iterations=1)
    REPORT.add("bulk_load (memory)", benchmark.stats.stats.median, tree.stats().total_pages)
    assert len(tree) == N_ENTRIES


@pytest.mark.parametrize("pager_kind", ["file", "wal"])
def test_durable_build(benchmark, tmp_path, pager_kind):
    data = entries()

    def build():
        if pager_kind == "file":
            pager = FilePager(tmp_path / f"{pager_kind}-{benchmark.name}.db")
        else:
            pager = WalPager(tmp_path / f"{pager_kind}-{benchmark.name}.db")
        tree = BPlusTree(pager)
        tree.bulk_load(data)
        tree.checkpoint()
        pages = tree.stats().total_pages
        tree.close()
        pager.close()
        return pages

    pages = benchmark.pedantic(build, rounds=1, iterations=1)
    REPORT.add(f"bulk+checkpoint ({pager_kind})", benchmark.stats.stats.median, pages)
