"""Shared benchmark configuration.

Every benchmark module emits a paper-style report table at teardown; the
corpora are scaled down from the paper's testbed (a 2003 C++/Berkeley DB
system on a 662 MHz machine) to laptop-Python sizes — DESIGN.md explains
why the *shapes* survive the substitution even though absolute numbers
do not.
"""

import pytest


@pytest.fixture(scope="module", autouse=True)
def emit_module_report(request):
    """Emit the module's ``REPORT`` (if defined) after its benchmarks ran."""
    yield
    report = getattr(request.module, "REPORT", None)
    if report is not None and report.rows:
        report.emit()
