"""Shared benchmark configuration.

Every benchmark module emits a paper-style report table at teardown; the
corpora are scaled down from the paper's testbed (a 2003 C++/Berkeley DB
system on a 662 MHz machine) to laptop-Python sizes — DESIGN.md explains
why the *shapes* survive the substitution even though absolute numbers
do not.

Two suite-wide options control the query-path performance layer:

``--no-query-cache``
    build ViST/RIST indexes with the posting cache disabled (the paper's
    original per-scan access path), so cached and uncached runs of the
    same benchmark can be compared;
``--no-bench-json``
    skip writing the machine-readable ``BENCH_<name>.json`` snapshots at
    the repo root (modules that define ``bench_json_payload()`` write one
    per run; CI diffs them against the committed baseline).
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--no-query-cache",
        action="store_true",
        default=False,
        help="disable the posting cache in benchmark-built ViST/RIST indexes",
    )
    parser.addoption(
        "--no-bench-json",
        action="store_true",
        default=False,
        help="do not write BENCH_<name>.json snapshots at the repo root",
    )


def pytest_configure(config):
    if config.getoption("--no-query-cache"):
        # build_index reads the env var, so module-scope fixtures built
        # before any test body see the switch too
        os.environ["REPRO_QUERY_CACHE"] = "0"
    # Allocation sequences across a full benchmark run are deterministic,
    # so cyclic-GC collections land at *fixed* points — and a gen-2 pause
    # (tens of ms with eight module-scope indexes resident) that happens
    # to fall inside one query's three timed rounds reads as a 4-5x
    # regression of that query on every run.  Keep the collector off
    # during timed rounds (pytest-benchmark re-enables it in between).
    config.option.benchmark_disable_gc = True


@pytest.fixture(scope="module", autouse=True)
def emit_module_report(request):
    """Emit the module's ``REPORT`` and JSON payload after its benchmarks ran."""
    yield
    report = getattr(request.module, "REPORT", None)
    if report is not None and report.rows:
        report.emit()
    builder = getattr(request.module, "bench_json_payload", None)
    if builder is not None and not request.config.getoption("--no-bench-json"):
        from repro.bench.harness import write_bench_json

        result = builder()
        if result is not None:
            name, payload = result
            path = write_bench_json(name, payload)
            print(f"\nwrote {path}")
