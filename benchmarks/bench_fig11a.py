"""Figure 11(a) — index size: RIST vs ViST on DBLP and XMark (items).

Paper result: on DBLP (301 MB) RIST needs ≈ 250 MB of index while ViST
needs ≈ 180 MB; on XMark items (52 MB) ≈ 60 vs ≈ 45 MB.  RIST is larger
because it "maintains a suffix tree, which is of size O(NL) in the worst
case", while ViST's labelling is virtual.

Here we report B+Tree pages/bytes plus RIST's in-memory trie nodes
(costed at their Python object footprint) — the expected shape is
ViST < RIST on both corpora.
"""

import sys

import pytest

from repro.bench.harness import Report, build_index, time_call
from repro.datasets.dblp import DblpConfig, DblpGenerator
from repro.datasets.xmark import XmarkConfig, XmarkGenerator

N_DBLP = 1500
N_XMARK_ITEMS = 1000

REPORT = Report(
    experiment="fig11a",
    title="index size: RIST (B+Trees + trie) vs ViST (B+Trees only)",
    headers=["dataset", "kind", "btree_kbytes", "trie_kbytes", "total_kbytes"],
    paper_note="ViST smaller than RIST on both datasets (no materialised trie)",
)


def _corpus(name):
    if name == "dblp":
        gen = DblpGenerator(DblpConfig(seed=2))
        return list(gen.records(N_DBLP)), gen.schema
    gen = XmarkGenerator(XmarkConfig(seed=2))
    return list(gen.records(N_XMARK_ITEMS, kind="item")), gen.schema


def _trie_kbytes(index) -> float:
    """Approximate in-memory footprint of RIST's materialised trie."""
    if getattr(index, "trie", None) is None:
        return 0.0
    total = 0
    for node in index.trie.nodes():
        total += sys.getsizeof(node)
        total += sys.getsizeof(node.children)
        total += sys.getsizeof(node.item)
    return total / 1024


@pytest.mark.parametrize("dataset", ["dblp", "xmark_items"])
@pytest.mark.parametrize("kind", ["rist", "vist"])
def test_fig11a_index_size(benchmark, dataset, kind):
    docs, schema = _corpus(dataset)
    _, index = time_call(lambda: build_index(kind, docs, schema))
    benchmark.pedantic(lambda: index.index_stats(), rounds=1, iterations=1)
    stats = index.index_stats()
    btree_kb = sum(s.total_bytes for s in stats.values()) / 1024
    trie_kb = _trie_kbytes(index)
    REPORT.add(dataset, kind, round(btree_kb), round(trie_kb), round(btree_kb + trie_kb))
