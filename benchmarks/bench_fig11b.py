"""Figure 11(b) — index construction time vs dataset size.

Paper setup: synthetic data with k=10, j=8, L=32; Figure 11(b) "shows
linear index construction time on synthetic datasets" up to 60M
elements.  Scaled here to 500–4,000 sequences; the normalised column
(seconds per 1,000 documents) should stay roughly flat if construction
is linear.
"""

import pytest

from repro.bench.harness import Report, build_index
from repro.datasets.synthetic import SyntheticConfig, SyntheticGenerator

DOC_SIZE = 32
DATA_SIZES = [500, 1000, 2000, 4000]

REPORT = Report(
    experiment="fig11b",
    title=f"ViST construction time vs dataset size (synthetic, L={DOC_SIZE})",
    headers=["n_docs", "elements", "build_seconds", "sec_per_1k_docs"],
    bar_column=2,
    paper_note="construction time is linear in dataset size (flat normalised col)",
)


@pytest.mark.parametrize("n", DATA_SIZES)
def test_fig11b_construction(benchmark, n):
    gen = SyntheticGenerator(SyntheticConfig(doc_size=DOC_SIZE, seed=30))
    docs = list(gen.documents(n))

    def build():
        return build_index("vist", docs)

    benchmark.pedantic(build, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.median
    REPORT.add(n, n * DOC_SIZE, seconds, seconds / (n / 1000))
