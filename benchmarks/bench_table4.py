"""Table 4 — the eight Table 3 queries: ViST vs Index Fabric vs XISS.

Paper result (seconds on their testbed):

    =====  =========  ============  =====
    query  RIST/ViST  Index Fabric  XISS
    =====  =========  ============  =====
    Q1     1.2        0.8           10.1
    Q2     2.3        4.8           54.6
    Q3     1.7        24.8          36.8
    Q4     1.7        23.3          30.2
    Q5     1.6        6.7           19.8
    Q6     3.7        18.0          22.4
    Q7     2.5        37.2          27.6
    Q8     4.1        49.3          48.2
    =====  =========  ============  =====

Expected shape here: the path index ties ViST on the raw path Q1, then
falls behind on values (Q2), collapses on wildcards (Q3, Q4) and stays
behind on branching queries (Q5–Q8); the node index is slowest or close
to slowest throughout because everything is joins.
"""

import pytest

from repro.bench.harness import (
    Report,
    build_index,
    metrics_snapshot,
    parallel_throughput,
    query_cache_enabled,
    sharded_throughput,
)
from repro.bench.workloads import TABLE3_QUERIES
from repro.datasets.dblp import DblpConfig, DblpGenerator
from repro.datasets.xmark import XmarkConfig, XmarkGenerator
from repro.kernels import packed_enabled

N_DBLP = 1500
N_XMARK = 1500
KINDS = ["vist", "path", "xiss", "apex"]

REPORT = Report(
    experiment="table4",
    title=f"query response time (s), {N_DBLP} DBLP + {N_XMARK} XMark records",
    headers=["query", "kind", "vist", "path(IndexFabric)", "xiss", "apex", "matches"],
    paper_note="ViST wins Q2-Q8; path index ties Q1, collapses on Q3/Q4; "
    "apex (length-2 paths) is an extra comparator beyond the paper",
)

_rows: dict[str, dict[str, float]] = {}
_matches: dict[str, int] = {}
_match_stats: dict[str, dict] = {}
_vist_indexes: dict[str, object] = {}
# post-build descent-counter snapshots: the kernels block reports the
# *query-phase* hit rate — build inserts bump the structure version on
# nearly every put, so counting them drowns the signal the gate watches
_descent_base: dict[str, tuple[int, int, int, int]] = {}
_corpus_docs: dict[str, list] = {}  # stashed for the sharded block


@pytest.fixture(scope="module")
def corpora():
    dblp = DblpGenerator(DblpConfig(seed=1))
    # plant rates high enough that every query has matches at this scale
    xmark = XmarkGenerator(
        XmarkConfig(seed=1, target_date_rate=0.1, person1_rate=0.1)
    )
    docs = {
        "dblp": list(dblp.records(N_DBLP)),
        "xmark": list(xmark.records(N_XMARK)),
    }
    schemas = {"dblp": dblp.schema, "xmark": xmark.schema}
    _corpus_docs.update(docs)
    return docs, schemas


@pytest.fixture(scope="module")
def indexes(corpora):
    docs, schemas = corpora
    out = {}
    for dataset in ("dblp", "xmark"):
        for kind in KINDS:
            out[dataset, kind] = build_index(kind, docs[dataset], schemas[dataset])
        vist = out[dataset, "vist"]
        _vist_indexes[dataset] = vist
        _descent_base[dataset] = (
            vist.tree.descent_hits,
            vist.tree.descent_misses,
            vist.docid_tree.descent_hits,
            vist.docid_tree.descent_misses,
        )
    return out


@pytest.mark.parametrize("query", TABLE3_QUERIES, ids=[q.qid for q in TABLE3_QUERIES])
@pytest.mark.parametrize("kind", KINDS)
def test_table4(benchmark, indexes, query, kind):
    index = indexes[query.dataset, kind]
    # warmup_rounds=1: the timed rounds measure steady-state latency (the
    # posting cache and translate cache resident), not first-touch load —
    # without it the 3-round median sits on the half-warm middle round
    result = benchmark.pedantic(
        lambda: index.query(query.xpath), rounds=3, iterations=1, warmup_rounds=1
    )
    _rows.setdefault(query.qid, {})[kind] = benchmark.stats.stats.median
    _matches[query.qid] = len(result)
    if kind == "vist":
        stats = index.match_stats
        _match_stats[query.qid] = {
            "range_queries": stats.range_queries,
            "candidates": stats.candidates,
            "search_states": stats.search_states,
            "final_nodes": stats.final_nodes,
            "batched_states": stats.batched_states,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
        }
    if len(_rows[query.qid]) == len(KINDS):
        row = _rows[query.qid]
        REPORT.add(
            query.qid,
            query.kind,
            row["vist"],
            row["path"],
            row["xiss"],
            row["apex"],
            _matches[query.qid],
        )


def bench_json_payload():
    """Machine-readable Table 4 results (written by the conftest teardown)."""
    if not _rows:
        return None
    queries = {
        qid: {
            "seconds": timings,
            "matches": _matches.get(qid),
            "vist_match_stats": _match_stats.get(qid),
        }
        for qid, timings in sorted(_rows.items())
    }
    headline = sum(t["vist"] for t in _rows.values() if "vist" in t)
    # concurrency smoke: the dblp Table-3 workload through the thread-pool
    # executor vs the sequential loop over the same shared index.  Runs
    # after the timed rounds so it cannot perturb headline_seconds.
    parallel = None
    sharded = None
    dblp_queries = [q.xpath for q in TABLE3_QUERIES if q.dataset == "dblp"]
    if "dblp" in _vist_indexes and dblp_queries:
        parallel = parallel_throughput(
            _vist_indexes["dblp"], dblp_queries, threads=4, repeats=3
        )
    if "dblp" in _corpus_docs and dblp_queries:
        # the process-parallel counterpart: same workload scatter-gathered
        # over 1/2/4 per-shard worker processes (threads above stay as the
        # GIL-bound contrast).  Interpret speedup against cpu_count.
        sharded = sharded_throughput(
            _corpus_docs["dblp"], dblp_queries, workers_list=(1, 2, 4), repeats=3
        )
    # packed-kernel figures: query-phase descent-cache effectiveness
    # aggregated over both dataset indexes, counted from the post-build
    # snapshot (the combined-tree rate is the regression-gated one — the
    # single-slot cache thrashed at ~8% there even query-side)
    combined_hits = combined_misses = docid_hits = docid_misses = 0
    for dataset, index in _vist_indexes.items():
        h0, m0, dh0, dm0 = _descent_base.get(dataset, (0, 0, 0, 0))
        combined_hits += index.tree.descent_hits - h0
        combined_misses += index.tree.descent_misses - m0
        docid_hits += index.docid_tree.descent_hits - dh0
        docid_misses += index.docid_tree.descent_misses - dm0
    kernels = {
        "packed": packed_enabled(),
        "combined_descent_hit_rate": (
            combined_hits / (combined_hits + combined_misses)
            if combined_hits + combined_misses
            else 0.0
        ),
        "docid_descent_hit_rate": (
            docid_hits / (docid_hits + docid_misses)
            if docid_hits + docid_misses
            else 0.0
        ),
    }
    payload = {
        "config": {
            "n_dblp": N_DBLP,
            "n_xmark": N_XMARK,
            "kinds": KINDS,
            "query_cache": query_cache_enabled(),
        },
        "queries": queries,
        "headline_seconds": headline,
        "kernels": kernels,
        "parallel": parallel,
        "sharded": sharded,
        "cache_stats": {
            dataset: index.cache_stats()
            for dataset, index in sorted(_vist_indexes.items())
        },
        "metrics": {
            dataset: metrics_snapshot(index)
            for dataset, index in sorted(_vist_indexes.items())
        },
    }
    return "table4", payload
