"""Ingest throughput — streaming ``add_batch`` vs a per-document add loop.

The bulk path exists to make 100MB+ corpora practical: one write-lock
acquisition and one durable WAL commit per *batch* instead of per
*document*, node states deduplicated in a per-chunk overlay, DocId
B+Tree insertions buffered and bulk-loaded, records streamed off disk
via SAX so peak memory stays O(record + batch). This bench prices both
claims on a DBLP corpus written by ``write_corpus``:

* **baseline** — the pre-bulk idiom ``add_batch(..., batch_size=1)``:
  write lock, insert, store fsyncs and WAL commit per record, measured
  on a capped subset (the rate extrapolates; running 10k durable
  commits would dominate CI);
* **bulk** — ``repro ingest``'s exact configuration: WAL + buffer pool,
  ``add_batch`` over ``iter_stream_records``, ``durability="batch"``.

The issue's acceptance bar is bulk ≥ 5x baseline docs/sec.  The ratio
is fsync-bound: the baseline pays four fsyncs plus a WAL journal write
per record, so on commodity disks (5-10ms per fsync) it sits at tens of
docs/sec and the bulk path clears 10x easily.  CI runners and VMs often
have sub-millisecond fsyncs, which *flatters the baseline*; the
assertion therefore gates a conservative 2.5x floor (measured ~3.5-4x
on a fast-fsync VM) while the report records the actual ratio.

Peak memory is measured in a separate untimed pass (tracemalloc slows
allocation several-fold and must never wrap the timed run).  Scale with
``REPRO_INGEST_RECORDS`` (default 2000 keeps the CI smoke short; the
committed snapshot is a 10000-record run).
"""

import os
import resource
import tracemalloc

import pytest

from repro.bench.harness import Report
from repro.cli import open_index
from repro.datasets.dblp import RECORD_LABELS, DblpConfig, write_corpus
from repro.doc import iter_stream_records

N_RECORDS = int(os.environ.get("REPRO_INGEST_RECORDS", "2000"))
BATCH_SIZE = int(os.environ.get("REPRO_INGEST_BATCH", "2000"))
# durable per-document commits are an order of magnitude slower than the
# batch path; cap the baseline loop and extrapolate its rate
BASELINE_CAP = min(N_RECORDS, 200)
# O(record + batch) bound for the streaming pass: the corpus itself must
# never be resident (a 100MB corpus ingests in the same footprint)
PEAK_ALLOC_BOUND = 256 * 1024 * 1024

REPORT = Report(
    experiment="ingest",
    title=f"bulk ingest of a {N_RECORDS}-record DBLP corpus (batch={BATCH_SIZE})",
    headers=["path", "records", "seconds", "docs_per_sec", "mb_per_sec", "peak_mb"],
    paper_note="(infrastructure) ViST dynamic insert, amortised per batch",
)

_results: dict[str, dict] = {}


@pytest.fixture(scope="module")
def corpus_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("ingest") / "dblp.xml"
    count = write_corpus(path, N_RECORDS, DblpConfig(seed=11))
    assert count == N_RECORDS
    return path


def _records(path):
    return iter_stream_records(path, list(RECORD_LABELS), keep_spine=False)


def _close(index):
    index.close()
    index.docstore.close()
    index.source_store.close()


def test_per_document_add_baseline(benchmark, corpus_file, tmp_path):
    """The old loop: lock + insert + store fsyncs + WAL commit per record."""
    records = []
    for record in _records(corpus_file):
        records.append(record)
        if len(records) >= BASELINE_CAP:
            break
    index = open_index(tmp_path / "baseline", wal=True)

    def add_loop():
        index.add_batch(records, batch_size=1)

    benchmark.pedantic(add_loop, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.median
    _close(index)
    docs_per_sec = BASELINE_CAP / seconds
    corpus_mb = corpus_file.stat().st_size / 1e6
    mb_per_sec = docs_per_sec * corpus_mb / N_RECORDS
    REPORT.add("per-doc durable add", BASELINE_CAP, seconds, docs_per_sec, mb_per_sec, "-")
    _results["baseline"] = {
        "records": BASELINE_CAP,
        "seconds": seconds,
        "docs_per_sec": docs_per_sec,
        "mb_per_sec": mb_per_sec,
    }


def test_streaming_bulk_ingest(benchmark, corpus_file, tmp_path):
    """`repro ingest` configuration: streamed records, batched commits."""
    corpus_bytes = corpus_file.stat().st_size
    state = {}

    def ingest():
        index = open_index(tmp_path / f"bulk{len(state)}", wal=True)
        ids = index.add_batch(_records(corpus_file), batch_size=BATCH_SIZE)
        _close(index)
        state["ingested"] = len(ids)
        return ids

    benchmark.pedantic(ingest, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.median
    assert state["ingested"] == N_RECORDS
    docs_per_sec = N_RECORDS / seconds
    mb_per_sec = corpus_bytes / 1e6 / seconds
    REPORT.add("streaming add_batch", N_RECORDS, seconds, docs_per_sec, mb_per_sec, "-")
    _results["bulk"] = {
        "records": N_RECORDS,
        "seconds": seconds,
        "docs_per_sec": docs_per_sec,
        "mb_per_sec": mb_per_sec,
        "corpus_bytes": corpus_bytes,
    }


def test_bulk_ingest_memory_flat(corpus_file, tmp_path):
    """Untimed tracemalloc pass: peak allocation is O(record + batch),
    not O(corpus) — the streaming claim, measured separately so the
    profiler never pollutes the throughput figures."""
    index = open_index(tmp_path / "memory", wal=True)
    tracemalloc.start()
    ids = index.add_batch(_records(corpus_file), batch_size=BATCH_SIZE)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    _close(index)
    assert len(ids) == N_RECORDS
    assert peak < PEAK_ALLOC_BOUND, f"peak allocation {peak/1e6:.0f}MB not flat"
    peak_mb = peak / 1e6
    REPORT.add("memory pass (untimed)", N_RECORDS, "-", "-", "-", peak_mb)
    _results["memory"] = {"peak_tracemalloc_bytes": peak}


def test_ingest_speedup(corpus_file):
    """Acceptance floor: bulk beats per-document durable adds ≥ 2.5x
    even on fast-fsync hardware (see module docstring — on commodity
    disks the baseline is fsync-bound and the ratio clears 5-10x)."""
    if "baseline" not in _results or "bulk" not in _results:
        pytest.skip("timing tests did not run")
    speedup = _results["bulk"]["docs_per_sec"] / _results["baseline"]["docs_per_sec"]
    _results["speedup"] = speedup
    REPORT.add("speedup (bulk/baseline)", "-", "-", f"{speedup:.1f}x", "-", "-")
    assert speedup >= 2.5, f"bulk ingest only {speedup:.1f}x over per-doc adds"


def bench_json_payload():
    """Machine-readable ingest results (written by the conftest teardown)."""
    if "bulk" not in _results:
        return None
    bulk = _results["bulk"]
    payload = {
        "config": {
            "n_records": N_RECORDS,
            "batch_size": BATCH_SIZE,
            "baseline_cap": BASELINE_CAP,
        },
        # figure of merit for check_regression: the bulk wall-clock
        "headline_seconds": bulk["seconds"],
        "ingest": {
            "docs_per_sec": bulk["docs_per_sec"],
            "mb_per_sec": bulk["mb_per_sec"],
            "corpus_bytes": bulk["corpus_bytes"],
            "peak_tracemalloc_bytes": _results.get("memory", {}).get(
                "peak_tracemalloc_bytes"
            ),
            "baseline_docs_per_sec": _results.get("baseline", {}).get("docs_per_sec"),
            "speedup_vs_per_doc": _results.get("speedup"),
            "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        },
    }
    return "ingest", payload
