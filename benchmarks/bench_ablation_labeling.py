"""Ablation A-λ — clue-based vs λ-based dynamic scope allocation.

Section 3.4.1 offers two allocation schemes: follow-set clues (Eq. 1–4)
when a schema is available, and the uniform λ rule (Eq. 5–6) otherwise.
The paper never compares them; this ablation does, sweeping the label
budget (the root scope ``Max``) on two corpora and counting
scope-underflow (borrow) events.

Finding (recorded in EXPERIMENTS.md): clue-based allocation wins when
the schema's value-cardinality estimates are *tight* relative to the
budget (DBLP at 2^96: far fewer underflows than λ=2), but an inflated
cardinality estimate spends ``log2(cardinality)`` bits of scope per
value level and can *lose* to the λ rule on value-heavy substructures
(XMark items).  Everything still works either way — underflow borrowing
(Section 3.4.1) absorbs the difference at a locality cost.
"""

import pytest

from repro.bench.harness import Report
from repro.datasets.dblp import DblpConfig, DblpGenerator
from repro.datasets.xmark import XmarkConfig, XmarkGenerator
from repro.index.vist import VistIndex
from repro.labeling.clues import FollowSets
from repro.labeling.dynamic import ClueAllocator, LambdaAllocator, UniformAllocator
from repro.sequence.transform import SequenceEncoder

N_DOCS = 400
BUDGET_BITS = [64, 96, 128]

REPORT = Report(
    experiment="ablation_labeling",
    title=f"scope underflow events by allocator and label budget (N={N_DOCS})",
    headers=["corpus", "max_label", "lambda(2)", "lambda(8)", "uniform(16)", "clues", "winner"],
    paper_note="(ablation) Eq.1-4 clues vs Eq.5-6 lambda; lower = better locality",
)


def _corpus(name):
    if name == "xmark_items":
        gen = XmarkGenerator(XmarkConfig(seed=8))
        return list(gen.records(N_DOCS, kind="item")), gen.schema
    gen = DblpGenerator(DblpConfig(seed=8))
    return list(gen.records(N_DOCS)), gen.schema


def _allocators(schema):
    return {
        "lambda(2)": LambdaAllocator(lam=2),
        "lambda(8)": LambdaAllocator(lam=8),
        "uniform(16)": UniformAllocator(expected_children=16),
        "clues": ClueAllocator(FollowSets(schema)),
    }


@pytest.mark.parametrize("corpus_name", ["dblp", "xmark_items"])
@pytest.mark.parametrize("bits", BUDGET_BITS)
def test_ablation_labeling(benchmark, corpus_name, bits):
    docs, schema = _corpus(corpus_name)
    encoder = SequenceEncoder(schema=schema)

    def run():
        counts = {}
        for name, allocator in _allocators(schema).items():
            index = VistIndex(
                encoder,
                allocator=allocator,
                max_label=1 << bits,
                track_refs=False,
            )
            for doc in docs:
                index.add(doc)
            counts[name] = index.underflow_count
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    winner = min(counts, key=counts.get)
    REPORT.add(
        corpus_name,
        f"2^{bits}",
        counts["lambda(2)"],
        counts["lambda(8)"],
        counts["uniform(16)"],
        counts["clues"],
        winner,
    )
