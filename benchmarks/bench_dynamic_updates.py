"""Ablation A-D — the cost of being dynamic (ViST) vs static (RIST).

The paper's headline claim is that ViST "supports dynamic index update"
while static-labelled designs do not, but it never *prices* that
difference.  This bench does: incremental insertion into a live ViST
index vs the full rebuild RIST needs to absorb the same batch, plus
ViST deletion and query-under-churn behaviour.

Expected: appending a small batch to ViST costs a fraction of a RIST
rebuild (and the gap widens with corpus size); deletion costs are the
same order as insertion; query results stay exact under churn.
"""

import pytest

from repro.bench.harness import Report, build_index, time_call
from repro.datasets.dblp import DblpConfig, DblpGenerator
from repro.index.rist import RistIndex
from repro.index.vist import VistIndex
from repro.sequence.transform import SequenceEncoder

BASE_SIZE = 1200
BATCH_SIZE = 100

REPORT = Report(
    experiment="dynamic_updates",
    title=f"absorbing a {BATCH_SIZE}-record batch into a {BASE_SIZE}-record index",
    headers=["operation", "seconds", "sec_per_record"],
    paper_note="(ablation) ViST inserts incrementally; RIST must rebuild",
)


@pytest.fixture(scope="module")
def corpus():
    gen = DblpGenerator(DblpConfig(seed=21))
    records = list(gen.records(BASE_SIZE + 2 * BATCH_SIZE))
    return records, gen.schema


def test_vist_incremental_insert(benchmark, corpus):
    records, schema = corpus
    index = build_index("vist", records[:BASE_SIZE], schema, track_refs=True)
    batch = records[BASE_SIZE : BASE_SIZE + BATCH_SIZE]

    def insert_batch():
        return [index.add(record) for record in batch]

    benchmark.pedantic(insert_batch, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.median
    REPORT.add("vist incremental insert", seconds, seconds / BATCH_SIZE)
    assert len(index) == BASE_SIZE + BATCH_SIZE


def test_rist_full_rebuild(benchmark, corpus):
    records, schema = corpus

    def rebuild():
        return build_index("rist", records[: BASE_SIZE + BATCH_SIZE], schema)

    benchmark.pedantic(rebuild, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.median
    REPORT.add("rist full rebuild", seconds, seconds / BATCH_SIZE)


def test_vist_deletion(benchmark, corpus):
    records, schema = corpus
    index = build_index("vist", records[:BASE_SIZE], schema, track_refs=True)
    victims = list(range(BATCH_SIZE))

    def delete_batch():
        for doc_id in victims:
            index.remove(doc_id)

    benchmark.pedantic(delete_batch, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.median
    REPORT.add("vist deletion", seconds, seconds / BATCH_SIZE)
    assert len(index) == BASE_SIZE - BATCH_SIZE


def test_query_under_churn(benchmark, corpus):
    """Interleave inserts, deletes and queries; results stay consistent."""
    records, schema = corpus
    index = build_index("vist", records[:BASE_SIZE], schema, track_refs=True)
    churn = records[BASE_SIZE : BASE_SIZE + BATCH_SIZE]
    expr = "//author[text='David']"

    def churn_round():
        added = [index.add(record) for record in churn]
        mid = index.query(expr)
        for doc_id in added:
            index.remove(doc_id)
        return mid

    baseline = index.query(expr)
    benchmark.pedantic(churn_round, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.median
    assert index.query(expr) == baseline  # back to the starting state
    REPORT.add("insert+query+delete round", seconds, seconds / BATCH_SIZE)
