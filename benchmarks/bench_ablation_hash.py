"""Ablation A-H — value-hash bucket count: size vs false positives.

Section 2 encodes attribute values "into integers" with a hash ``h()``
but never discusses its range.  Bucketing the hash shrinks every value
key in the index at the price of collisions — which surface as exactly
the kind of false positives the verification filter removes.  This
bench sweeps the bucket count on a DBLP-like corpus and reports index
size, raw-vs-verified answer counts for the Table 3 author query, and
the verification overhead.

Expected: monotone size/precision trade-off; with 64-bit hashes (no
buckets) the raw and verified answers coincide on value queries.
"""

import pytest

from repro.bench.harness import Report
from repro.datasets.dblp import DblpConfig, DblpGenerator
from repro.index.vist import VistIndex
from repro.sequence.transform import SequenceEncoder
from repro.sequence.vocabulary import ValueHasher

N_DOCS = 800
QUERY = "//author[text='David']"

REPORT = Report(
    experiment="ablation_hash",
    title=f"value-hash buckets: index size vs false positives (N={N_DOCS})",
    headers=["buckets", "index_kbytes", "raw_answers", "verified", "false_pos"],
    paper_note="(ablation) bucketing h() trades key size for collisions",
)

BUCKET_CHOICES = [64, 1024, 65536, None]


@pytest.fixture(scope="module")
def corpus():
    gen = DblpGenerator(DblpConfig(seed=17, david_rate=0.02))
    records = list(gen.records(N_DOCS))
    # ground truth from a full-width-hash index (verified mode): hash
    # collisions are invisible to *bucketed* verification because only
    # hashes are stored, so truth needs the collision-free configuration
    exact = VistIndex(SequenceEncoder(schema=gen.schema), track_refs=False)
    for record in records:
        exact.add(record)
    truth = set(exact.query(QUERY, verify=True))
    return records, gen.schema, truth


@pytest.mark.parametrize("buckets", BUCKET_CHOICES, ids=lambda b: str(b))
def test_ablation_hash_buckets(benchmark, corpus, buckets):
    records, schema, truth = corpus
    encoder = SequenceEncoder(schema=schema, hasher=ValueHasher(buckets=buckets))
    index = VistIndex(encoder, track_refs=False)
    for record in records:
        index.add(record)

    raw = benchmark.pedantic(lambda: index.query(QUERY), rounds=2, iterations=1)
    verified = index.query(QUERY, verify=True)
    kbytes = sum(s.total_bytes for s in index.index_stats().values()) / 1024
    REPORT.add(
        str(buckets),
        round(kbytes),
        len(raw),
        len(verified),
        len(set(verified) - truth),
    )
    assert truth <= set(raw)  # never a false negative
    if buckets is None:
        assert set(verified) == truth
