"""Ablation A-N — the naïve suffix-tree algorithm vs RIST/ViST.

Section 3.2 motivates RIST/ViST by the cost of Algorithm 1: "searching
for nodes satisfying both S-Ancestorship and D-Ancestorship is extremely
costly since we need to traverse a large portion of the subtree for each
match".  The paper asserts this without measuring it; this ablation puts
numbers on the gap at a size the naïve algorithm can still finish.

Expected: ViST (and RIST) answer the batch orders of magnitude faster
than the naïve trie traversal, with identical results.
"""

import pytest

from repro.bench.harness import Report, build_index
from repro.datasets.synthetic import SyntheticConfig, SyntheticGenerator

N_DOCS = 1200
DOC_SIZE = 18
QUERY_COUNT = 6
QUERY_LENGTH = 4

REPORT = Report(
    experiment="ablation_naive",
    title=f"Algorithm 1 vs Algorithm 2 (synthetic, N={N_DOCS}, L={DOC_SIZE})",
    headers=["kind", "seconds_per_query"],
    paper_note="(ablation) naive trie traversal should be far slower",
)

_results: dict[str, set] = {}


@pytest.fixture(scope="module")
def setup():
    gen = SyntheticGenerator(
        SyntheticConfig(height=6, fanout=4, doc_size=DOC_SIZE, seed=40)
    )
    docs = list(gen.documents(N_DOCS))
    queries = gen.queries(QUERY_COUNT, size=QUERY_LENGTH)
    return docs, queries


@pytest.mark.parametrize("kind", ["naive", "rist", "vist"])
def test_ablation_naive(benchmark, setup, kind):
    docs, queries = setup
    index = build_index(kind, docs)
    benchmark.pedantic(
        lambda: [index.query(q) for q in queries], rounds=2, iterations=1
    )
    answers = frozenset(
        (i, doc_id) for i, q in enumerate(queries) for doc_id in index.query(q)
    )
    _results[kind] = answers
    if len(_results) == 3:
        assert _results["naive"] == _results["rist"] == _results["vist"]
    REPORT.add(kind, benchmark.stats.stats.median / len(queries))
