"""Ablation A-FP — false positives of raw ViST matching (soundness caveat).

Not a paper experiment: later literature showed ViST's subsequence
matching admits false positives for branch queries whose branches share
``(symbol, prefix)`` pairs (see DESIGN.md §2).  This bench quantifies the
effect on an adversarial corpus — documents where the query's branches
are satisfied only across *different* sibling subtrees — and measures the
cost of the tree-embedding verification filter that removes them.

Expected: raw matching reports every adversarial document (100% FP rate
on the planted fraction); verified mode returns exactly the true
matches at a modest per-candidate cost.
"""

import random

import pytest

from repro.bench.harness import Report, time_call
from repro.doc.model import XmlNode
from repro.index.vist import VistIndex
from repro.sequence.transform import SequenceEncoder

N_DOCS = 600
TRUE_FRACTION = 0.3
QUERY = "/A/B[C][D]"

REPORT = Report(
    experiment="false_positives",
    title=f"raw vs verified ViST on adversarial branches ({N_DOCS} docs)",
    headers=["mode", "answers", "true_matches", "false_positives", "seconds"],
    paper_note="(not in paper) raw matching over-reports; verification is exact",
)


def _true_doc() -> XmlNode:
    a = XmlNode("A")
    b = a.element("B")
    b.element("C")
    b.element("D")
    return a


def _adversarial_doc() -> XmlNode:
    # C and D exist, but under different B siblings: /A/B[C][D] must fail.
    a = XmlNode("A")
    a.element("B").element("C")
    a.element("B").element("D")
    return a


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(5)
    index = VistIndex(SequenceEncoder())
    truth = set()
    for _ in range(N_DOCS):
        if rng.random() < TRUE_FRACTION:
            truth.add(index.add(_true_doc()))
        else:
            index.add(_adversarial_doc())
    return index, truth


def test_raw_matching_over_reports(benchmark, setup):
    index, truth = setup
    result = benchmark.pedantic(lambda: index.query(QUERY), rounds=2, iterations=1)
    fps = len(set(result) - truth)
    assert set(result) >= truth  # no false negatives here
    assert fps > 0  # the documented unsoundness is observable
    REPORT.add("raw", len(result), len(truth), fps, benchmark.stats.stats.median)


def test_verified_matching_is_exact(benchmark, setup):
    index, truth = setup
    result = benchmark.pedantic(
        lambda: index.query(QUERY, verify=True), rounds=2, iterations=1
    )
    assert set(result) == truth
    REPORT.add("verified", len(result), len(truth), 0, benchmark.stats.stats.median)
