"""Figure 10(b) — query processing time vs data size (synthetic).

Paper setup: sequences of average length 60, dataset sizes 2M–12M
elements, queries of length 6.  Paper finding: "our index structure
scales up sub-linearly with the increase of data size".

Scaled here to 500–4,000 sequences.  The report includes the ratio of
query time to data size so sub-linearity is visible at a glance: the
normalised column should *fall* (or stay flat) as N grows.
"""

import pytest

from repro.bench.harness import Report, build_index
from repro.datasets.synthetic import SyntheticConfig, SyntheticGenerator

DOC_SIZE = 60
DATA_SIZES = [500, 1000, 2000, 4000]
QUERY_LENGTH = 6
QUERY_COUNT = 8

REPORT = Report(
    experiment="fig10b",
    title=f"query time vs data size (synthetic, L={DOC_SIZE}, query length {QUERY_LENGTH})",
    headers=["n_docs", "seconds_per_query", "sec_per_query_per_1k_docs"],
    bar_column=1,
    paper_note="sub-linear scale-up: normalised column should fall with N",
)


@pytest.fixture(scope="module")
def setup():
    indexes = {}
    queries = None
    for n in DATA_SIZES:
        gen = SyntheticGenerator(SyntheticConfig(doc_size=DOC_SIZE, seed=20))
        docs = list(gen.documents(n))
        indexes[n] = build_index("vist", docs)
        if queries is None:
            # one fixed workload, drawn from the smallest corpus so every
            # query matches at every data size (corpora share a prefix)
            queries = gen.matching_queries(docs, QUERY_COUNT, size=QUERY_LENGTH)
    return indexes, queries


@pytest.mark.parametrize("n", DATA_SIZES)
def test_fig10b_data_size(benchmark, setup, n):
    from repro.index.matching import SequenceMatcher

    indexes, queries = setup
    index = indexes[n]
    matcher = SequenceMatcher(index)
    batch = [alt for q in queries for alt in index.translator.translate(q)]
    # matching phase only, excluding DocId output (as the paper measures)
    benchmark.pedantic(
        lambda: [matcher.final_scopes(qseq) for qseq in batch],
        rounds=2,
        iterations=1,
    )
    per_query = benchmark.stats.stats.median / len(queries)
    REPORT.add(n, per_query, per_query / (n / 1000))
