"""Fail when a benchmark snapshot regresses past a factor of its baseline.

Usage::

    python benchmarks/check_regression.py BENCH_table4.json BENCH_fig10a.json \
        [--factor 3.0] [--baseline-ref HEAD]

Each named file is a freshly written ``BENCH_<name>.json`` at the repo
root (see ``repro.bench.harness.write_bench_json``); the baseline is the
committed version of the same file (``git show <ref>:<file>``).  The
comparison is on the ``headline_seconds`` field — the benchmark's single
wall-clock figure of merit — so CI tolerates runner noise (default 3×)
while still catching order-of-magnitude regressions.

Snapshots carrying throughput blocks are gated too: ``parallel`` (thread
pool) and ``sharded`` (per-shard worker processes) expose qps figures,
and a *drop* below ``1/--qps-factor`` of the baseline fails the gate —
qps regresses downward, the opposite direction of seconds.  A baseline
written before a block existed skips that block with a message.

The packed-kernel figures under a top-level ``kernels`` block (descent
hit rates) are gated the same higher-is-better way: a rate dropping
below ``baseline/--qps-factor`` fails.  Baselines predating the block
skip it with the same commit-a-fresh-snapshot message.

Exit status: 0 when every benchmark is within the factor (or has no
baseline yet), 1 on a regression, 2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_baseline(name: str, ref: str) -> dict | None:
    """The committed version of ``name``, or ``None`` when not committed."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def headline_of(snapshot: object) -> float | None:
    """``headline_seconds`` as a positive float, or ``None``.

    Baselines written by older harness versions (or by hand) may lack
    the key, hold a non-numeric value, or not even be a JSON object —
    none of which should crash the gate.
    """
    if not isinstance(snapshot, dict):
        return None
    value = snapshot.get("headline_seconds")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value) if value > 0 else None


def _positive(value: object) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value) if value > 0 else None


def qps_entries(snapshot: object) -> dict[str, float]:
    """Every gateable throughput figure of a snapshot, flattened.

    ``parallel.qps`` is the thread-pool block's ``parallel_qps``;
    ``sharded.single_process_qps`` and ``sharded.w<N>.qps`` come from the
    multi-process block; ``ingest.docs_per_sec`` from the bulk-ingest
    bench.  Unusable values (missing, non-numeric, <= 0) are simply
    absent, mirroring :func:`headline_of`'s tolerance — a baseline
    written before a block existed skips that gate with a message.
    """
    out: dict[str, float] = {}
    if not isinstance(snapshot, dict):
        return out
    ingest = snapshot.get("ingest")
    if isinstance(ingest, dict):
        value = _positive(ingest.get("docs_per_sec"))
        if value is not None:
            out["ingest.docs_per_sec"] = value
    parallel = snapshot.get("parallel")
    if isinstance(parallel, dict):
        value = _positive(parallel.get("parallel_qps"))
        if value is not None:
            out["parallel.qps"] = value
    sharded = snapshot.get("sharded")
    if isinstance(sharded, dict):
        value = _positive(sharded.get("single_process_qps"))
        if value is not None:
            out["sharded.single_process_qps"] = value
        entries = sharded.get("workers")
        if isinstance(entries, list):
            for entry in entries:
                if not isinstance(entry, dict):
                    continue
                workers = entry.get("workers")
                value = _positive(entry.get("qps"))
                if isinstance(workers, int) and not isinstance(workers, bool) \
                        and value is not None:
                    out[f"sharded.w{workers}.qps"] = value
    return out


def kernel_entries(snapshot: object) -> dict[str, float]:
    """Gateable packed-kernel figures, flattened as ``kernels.<name>``.

    Only the descent hit *rates* are gated (higher is better, like qps);
    the boolean ``packed`` flag and any non-numeric or non-positive
    values are skipped with the same tolerance as :func:`qps_entries` —
    a baseline written before the block existed simply has no entries.
    """
    out: dict[str, float] = {}
    if not isinstance(snapshot, dict):
        return out
    kernels = snapshot.get("kernels")
    if not isinstance(kernels, dict):
        return out
    for key, raw in kernels.items():
        if not isinstance(key, str) or not key.endswith("_hit_rate"):
            continue
        value = _positive(raw)
        if value is not None:
            out[f"kernels.{key}"] = value
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="BENCH_*.json files at the repo root")
    parser.add_argument("--factor", type=float, default=3.0)
    parser.add_argument(
        "--qps-factor",
        type=float,
        default=3.0,
        help="fail when a qps figure drops below baseline/QPS_FACTOR",
    )
    parser.add_argument("--baseline-ref", default="HEAD")
    args = parser.parse_args(argv)

    failures = 0
    for name in args.files:
        current_path = REPO_ROOT / name
        if not current_path.exists():
            print(f"error: {name} missing — did the benchmark run?", file=sys.stderr)
            return 2
        try:
            current = json.loads(current_path.read_text())
        except json.JSONDecodeError as exc:
            print(f"{name}: current snapshot is not valid JSON ({exc}); skipping")
            continue
        baseline = load_baseline(name, args.baseline_ref)
        if baseline is None:
            print(f"{name}: no committed baseline at {args.baseline_ref}; skipping")
            continue
        now = headline_of(current)
        then = headline_of(baseline)
        if then is None:
            print(
                f"{name}: baseline has no usable headline_seconds; skipping "
                "(commit a fresh snapshot to enable the gate)"
            )
        elif now is None:
            print(f"{name}: current snapshot has no usable headline_seconds; skipping")
        else:
            ratio = now / then
            verdict = "OK" if ratio <= args.factor else "REGRESSION"
            print(
                f"{name}: {then:.4f}s -> {now:.4f}s ({ratio:.2f}x, limit "
                f"{args.factor:.1f}x) {verdict}"
            )
            if ratio > args.factor:
                failures += 1
        # throughput gates run regardless of the headline outcome: a
        # snapshot can lose its headline and still carry qps blocks
        now_qps = qps_entries(current)
        then_qps = qps_entries(baseline)
        now_qps.update(kernel_entries(current))
        then_qps.update(kernel_entries(baseline))
        floor = 1.0 / args.qps_factor
        for key in sorted(now_qps):
            if key not in then_qps:
                print(
                    f"{name} {key}: baseline has no such figure; skipping "
                    "(commit a fresh snapshot to enable the gate)"
                )
                continue
            ratio = now_qps[key] / then_qps[key]
            verdict = "OK" if ratio >= floor else "REGRESSION"
            if key.startswith("kernels."):
                figures = f"{then_qps[key]:.3f} -> {now_qps[key]:.3f}"
            else:
                figures = f"{then_qps[key]:.1f} -> {now_qps[key]:.1f} qps"
            print(
                f"{name} {key}: {figures} "
                f"({ratio:.2f}x, floor {floor:.2f}x) {verdict}"
            )
            if ratio < floor:
                failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
