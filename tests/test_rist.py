"""RIST-specific tests: finalize, trie release, sizes, label reuse."""

import pytest

from repro.errors import IndexStateError
from repro.index.rist import RistIndex
from repro.index.vist import VistIndex
from repro.labeling.dynamic import UniformAllocator
from repro.sequence.transform import SequenceEncoder
from tests.conftest import build_figure3_record, build_purchase_schema, build_record


def make_index() -> RistIndex:
    return RistIndex(SequenceEncoder(schema=build_purchase_schema()))


class TestLifecycle:
    def test_finalize_is_idempotent(self):
        index = make_index()
        index.add(build_figure3_record())
        index.finalize()
        entries = len(index.tree)
        index.finalize()
        assert len(index.tree) == entries

    def test_query_triggers_finalize(self):
        index = make_index()
        doc_id = index.add(build_figure3_record())
        assert index.query("/P/S") == [doc_id]  # no explicit finalize()

    def test_release_trie_frees_memory_keeps_queries(self):
        index = make_index()
        doc_id = index.add(build_record("boston", "newyork", ["intel"]))
        index.release_trie()
        assert index.trie is None
        assert index.trie_node_count() == 0
        assert index.query("/P[S[L='boston']]") == [doc_id]

    def test_release_then_finalize_raises(self):
        index = make_index()
        index.add(build_figure3_record())
        index.release_trie()
        index.trie = None
        index._root_scope = None  # simulate a stale handle
        with pytest.raises(IndexStateError):
            index.finalize()

    def test_remove_unsupported(self):
        index = make_index()
        doc_id = index.add(build_figure3_record())
        with pytest.raises(IndexStateError):
            index.remove(doc_id)


class TestStats:
    def test_index_stats_and_trie_count(self):
        index = make_index()
        for loc in ["boston", "austin"]:
            index.add(build_record(loc, "newyork", ["intel"]))
        index.finalize()
        stats = index.index_stats()
        assert stats["combined"].entries > 10
        assert stats["docid"].entries == 2
        assert index.trie_node_count() > 10

    def test_shared_sequences_share_trie_nodes(self):
        index = make_index()
        index.add(build_record("boston", "newyork", ["intel"]))
        index.add(build_record("boston", "newyork", ["intel"]))
        index.finalize()
        # identical records share every trie node: one entry per node,
        # plus the max-depth metadata entry
        assert index.trie_node_count() + 1 == index.index_stats()["combined"].entries
        assert index.index_stats()["docid"].entries == 2


class TestEquivalenceWithVist:
    QUERIES = [
        "/P/S/I/M",
        "/P[S[L='boston']]/B[L='newyork']",
        "/P/*[L='boston']",
        "/P//I[M='intel']",
    ]

    def test_same_results_as_vist(self):
        encoder = SequenceEncoder(schema=build_purchase_schema())
        rist = RistIndex(encoder)
        vist = VistIndex(encoder)
        docs = [
            build_figure3_record(),
            build_record("boston", "newyork", ["intel", "amd"]),
            build_record("austin", "boston", []),
        ]
        for doc in docs:
            rist.add(doc)
            vist.add(doc)
        for expr in self.QUERIES:
            assert rist.query(expr) == vist.query(expr), expr


class TestUniformAllocator:
    def test_equal_shares(self):
        from repro.labeling.dynamic import NodeState
        from repro.labeling.scope import Scope
        from repro.sequence.encoding import Item

        alloc = UniformAllocator(expected_children=4, reserve_divisor=16)
        state = NodeState(scope=Scope(0, 1600), parent_n=0)
        scopes = [alloc.place(state, None, Item(f"c{i}", ())) for i in range(4)]
        assert all(s is not None for s in scopes)
        widths = {s.size for s in scopes}
        assert len(widths) == 1  # equal shares
        # the fifth child underflows: the estimate was four
        assert alloc.place(state, None, Item("c4", ())) is None

    def test_validation(self):
        from repro.errors import LabelingError

        with pytest.raises(LabelingError):
            UniformAllocator(expected_children=0)

    def test_vist_with_uniform_allocator(self):
        index = VistIndex(
            SequenceEncoder(),
            allocator=UniformAllocator(expected_children=32),
        )
        a = index.add(build_record("boston", "newyork", ["intel"]))
        b = index.add(build_record("austin", "newyork", ["amd"]))
        assert index.query("/P[S[L='boston']]") == [a]
        assert index.query("/P/B[L='newyork']") == sorted([a, b])
