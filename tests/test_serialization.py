"""Unit and property tests for the order-preserving codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.storage.serialization import (
    decode_bytes,
    decode_int,
    decode_str,
    decode_tuple,
    decode_uint,
    encode_bytes,
    encode_int,
    encode_str,
    encode_tuple,
    encode_uint,
    prefix_range_end,
)

BIG = 2**128 + 12345


class TestUint:
    def test_zero(self):
        assert decode_uint(encode_uint(0)) == (0, 1)

    def test_roundtrip_small(self):
        for n in [1, 2, 127, 128, 255, 256, 65535, 65536]:
            data = encode_uint(n)
            assert decode_uint(data) == (n, len(data))

    def test_roundtrip_huge(self):
        data = encode_uint(BIG)
        assert decode_uint(data)[0] == BIG

    def test_rejects_negative(self):
        with pytest.raises(CodecError):
            encode_uint(-1)

    def test_rejects_gigantic(self):
        with pytest.raises(CodecError):
            encode_uint(1 << (256 * 8))

    def test_order_examples(self):
        values = [0, 1, 5, 255, 256, 1000, 2**64, BIG]
        encoded = [encode_uint(v) for v in values]
        assert encoded == sorted(encoded)

    def test_truncated(self):
        with pytest.raises(CodecError):
            decode_uint(b"")
        with pytest.raises(CodecError):
            decode_uint(b"\x02\x01")

    @given(st.integers(min_value=0, max_value=2**200), st.integers(min_value=0, max_value=2**200))
    def test_order_preserving(self, a, b):
        assert (encode_uint(a) < encode_uint(b)) == (a < b)


class TestInt:
    def test_roundtrip(self):
        for n in [0, 1, -1, 127, -127, 10**40, -(10**40)]:
            data = encode_int(n)
            assert decode_int(data) == (n, len(data))

    def test_bad_sign_byte(self):
        with pytest.raises(CodecError):
            decode_int(b"\x07\x00")

    def test_truncated(self):
        with pytest.raises(CodecError):
            decode_int(b"")
        with pytest.raises(CodecError):
            decode_int(b"\x00")

    @given(st.integers(min_value=-(2**150), max_value=2**150),
           st.integers(min_value=-(2**150), max_value=2**150))
    def test_order_preserving(self, a, b):
        assert (encode_int(a) < encode_int(b)) == (a < b)


class TestBytes:
    def test_roundtrip_plain(self):
        data = encode_bytes(b"hello")
        assert decode_bytes(data) == (b"hello", len(data))

    def test_roundtrip_with_zero_bytes(self):
        raw = b"\x00a\x00\x00b"
        data = encode_bytes(raw)
        assert decode_bytes(data) == (raw, len(data))

    def test_empty(self):
        assert decode_bytes(encode_bytes(b"")) == (b"", 2)

    def test_prefix_sorts_first(self):
        assert encode_bytes(b"ab") < encode_bytes(b"abc")
        assert encode_bytes(b"ab") < encode_bytes(b"ab\x00")

    def test_unterminated(self):
        with pytest.raises(CodecError):
            decode_bytes(b"abc")

    def test_bad_escape(self):
        with pytest.raises(CodecError):
            decode_bytes(b"a\x00\x07")

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_order_preserving(self, a, b):
        assert (encode_bytes(a) < encode_bytes(b)) == (a < b)

    @given(st.binary(max_size=64))
    def test_roundtrip_property(self, raw):
        assert decode_bytes(encode_bytes(raw))[0] == raw


class TestStr:
    def test_roundtrip(self):
        for s in ["", "abc", "naïve", "日本語"]:
            data = encode_str(s)
            assert decode_str(data) == (s, len(data))

    @given(st.text(max_size=32))
    def test_roundtrip_property(self, s):
        assert decode_str(encode_str(s))[0] == s


class TestTuple:
    def test_roundtrip_mixed(self):
        value = (1, "seller", b"\x00raw", None, -5)
        assert decode_tuple(encode_tuple(value)) == value

    def test_empty(self):
        assert decode_tuple(encode_tuple(())) == ()

    def test_rejects_bool(self):
        with pytest.raises(CodecError):
            encode_tuple((True,))

    def test_rejects_float(self):
        with pytest.raises(CodecError):
            encode_tuple((1.5,))

    def test_unknown_tag(self):
        with pytest.raises(CodecError):
            decode_tuple(b"\x99")

    def test_prefix_tuple_sorts_first(self):
        assert encode_tuple((1, "a")) < encode_tuple((1, "a", 0))

    @given(
        st.lists(
            st.one_of(st.integers(min_value=-(2**64), max_value=2**64), st.text(max_size=8)),
            max_size=4,
        ).map(tuple),
        st.lists(
            st.one_of(st.integers(min_value=-(2**64), max_value=2**64), st.text(max_size=8)),
            max_size=4,
        ).map(tuple),
    )
    def test_order_preserving_homogeneous_slots(self, a, b):
        # Only compare tuples whose common slots share types: that is the
        # contract the index layer relies on (key schemas are fixed).
        for x, y in zip(a, b):
            if type(x) is not type(y):
                return
        assert (encode_tuple(a) < encode_tuple(b)) == (a < b)


class TestPrefixRange:
    def test_simple(self):
        assert prefix_range_end(b"abc") == b"abd"

    def test_trailing_ff(self):
        assert prefix_range_end(b"a\xff") == b"b"

    def test_all_ff_sentinel(self):
        end = prefix_range_end(b"\xff\xff")
        assert end > b"\xff\xff"

    @given(st.binary(min_size=1, max_size=16), st.binary(max_size=8))
    def test_bounds_all_extensions(self, prefix, suffix):
        if prefix.rstrip(b"\xff"):
            assert prefix <= prefix + suffix < prefix_range_end(prefix)
