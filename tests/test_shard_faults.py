"""Fault tolerance for sharded serving: supervision, retries, chaos.

The contract under test (docs/INTERNALS.md section 13):

* a worker dying mid-query fails its in-flight futures *promptly* with a
  typed :class:`ShardUnavailableError` — never a 30 s spawn-timeout
  stall, never a hang;
* the supervisor restarts dead workers (capped backoff + jitter) and the
  executor returns to all-shards-healthy; past the restart budget the
  shard is marked ``down`` (sticky) and queries fail fast;
* ``partial=True`` degrades availability failures to partial results
  annotated with the missing shard set and counted in
  ``shard.K.unavailable`` — with it off, a missing shard poisons the
  outcome loudly (no silently shrunken answers, ever);
* hedged reads and per-RPC deadlines bound tail latency against slow or
  wedged workers;
* under the seeded chaos harness (:mod:`repro.testing.chaos`: worker
  kills mid-query, torn frames, delayed replies, refused respawns) the
  cross-shard differential-oracle workload never hangs, never returns a
  silently wrong answer, and always recovers.

Worker processes are real interpreters; the small configurations run in
tier-1 and the heavy sweeps are ``slow``.
"""

from __future__ import annotations

import signal
import threading
import time

import pytest

from repro.doc.model import XmlNode
from repro.errors import ShardQueryError, ShardUnavailableError
from repro.shard import ShardRouter, ShardedExecutor
from repro.shard.supervisor import (
    DOWN,
    HEALTHY,
    RestartPolicy,
    RestartTracker,
)
from repro.testing.chaos import ChaosConfig, ChaosMonkey

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _doc(i: int, label: str = "a") -> XmlNode:
    root = XmlNode("r")
    root.element(label, text=f"v{i}")
    return root


@pytest.fixture
def sharded_db(tmp_path):
    dbdir = tmp_path / "db"
    with ShardRouter(dbdir, 3) as router:
        ids = [router.add(_doc(i)) for i in range(9)]
    return dbdir, ids


def _kill_worker(executor, shard: int) -> None:
    proc = executor.clients[shard].proc
    assert proc is not None
    proc.send_signal(signal.SIGKILL)


# ---------------------------------------------------------------------------
# restart policy units (no processes)


class TestRestartPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RestartPolicy(
            max_restarts=10, base_backoff_s=0.1, max_backoff_s=0.4, jitter=0.0
        )
        tracker = policy.tracker(0)
        delays = [tracker.next_delay(now=100.0) for _ in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_budget_exhaustion_returns_none(self):
        policy = RestartPolicy(max_restarts=3, window_s=60.0, jitter=0.0)
        tracker = policy.tracker(0)
        assert all(tracker.next_delay(now=10.0) is not None for _ in range(3))
        assert tracker.next_delay(now=10.0) is None

    def test_window_slides(self):
        policy = RestartPolicy(max_restarts=2, window_s=5.0, jitter=0.0)
        tracker = policy.tracker(0)
        assert tracker.next_delay(now=0.0) is not None
        assert tracker.next_delay(now=1.0) is not None
        assert tracker.next_delay(now=2.0) is None  # budget spent
        # ... but old failures age out of the window
        assert tracker.next_delay(now=10.0) is not None

    def test_jitter_is_seeded_and_bounded(self):
        policy = RestartPolicy(jitter=0.25, seed=42)
        a = [policy.tracker(1).next_delay(now=0.0) for _ in range(3)]
        b = [policy.tracker(1).next_delay(now=0.0) for _ in range(3)]
        assert a == b  # same seed, same shard: reproducible
        base = policy.base_backoff_s
        for delay in a:
            assert base * 0.75 <= delay <= base * 1.25

    def test_trackers_differ_per_shard(self):
        policy = RestartPolicy(jitter=0.25, seed=42)
        assert isinstance(policy.tracker(0), RestartTracker)
        a = policy.tracker(0).next_delay(now=0.0)
        b = policy.tracker(1).next_delay(now=0.0)
        assert a != b


# ---------------------------------------------------------------------------
# prompt typed failure (the PR-6 regression) + supervised recovery


class TestWorkerDeath:
    def test_sigkill_mid_batch_fails_promptly_and_typed(self, sharded_db):
        """The satellite regression: in-flight futures must fail with a
        typed error as soon as the connection drops — not stall out the
        30 s spawn timeout, not hang forever."""
        dbdir, ids = sharded_db
        with ShardedExecutor(
            dbdir, supervise=False, rpc_retries=0
        ) as executor:
            # a healthy batch first, so the pipeline is warm
            assert executor.submit("//a").result(30).result == ids
            futures = [executor.submit("//a") for _ in range(6)]
            _kill_worker(executor, shard=1)
            t0 = time.monotonic()
            outcomes = [f.result(30) for f in futures]
            elapsed = time.monotonic() - t0
            assert elapsed < 10.0, f"death took {elapsed:.1f}s to surface"
            for outcome in outcomes:
                if outcome.ok:
                    assert outcome.result == ids  # answered before the kill
                else:
                    assert isinstance(outcome.error, ShardQueryError)
                    causes = list(outcome.error.shard_errors.values())
                    assert causes and all(
                        isinstance(c, ShardUnavailableError) for c in causes
                    )
            # unsupervised: the shard stays down, and says so immediately
            assert executor.clients[1].state == DOWN
            t0 = time.monotonic()
            outcome = executor.submit("//a").result(30)
            assert time.monotonic() - t0 < 5.0
            assert not outcome.ok

    def test_supervisor_restarts_and_recovers(self, sharded_db):
        dbdir, ids = sharded_db
        with ShardedExecutor(dbdir, heartbeat_s=0.2) as executor:
            assert executor.submit("//a").result(30).result == ids
            _kill_worker(executor, shard=0)
            assert executor.await_healthy(timeout_s=30), executor.shard_states()
            outcome = executor.submit("//a").result(30)
            assert outcome.ok and outcome.result == ids
            snapshot = executor.supervision_snapshot()
            assert snapshot["shard"]["0"]["restarts"] >= 1
            assert snapshot["states"] == {"0": "healthy", "1": "healthy", "2": "healthy"}

    def test_query_in_flight_during_kill_retries_to_success(self, sharded_db):
        """With supervision + retries on, a kill mid-batch is invisible:
        the retry waits out the respawn and the answer is still exact."""
        dbdir, ids = sharded_db
        with ShardedExecutor(
            dbdir, rpc_retries=4, retry_backoff_s=0.05, heartbeat_s=0.2
        ) as executor:
            futures = [executor.submit("//a") for _ in range(10)]
            _kill_worker(executor, shard=2)
            outcomes = [f.result(60) for f in futures]
            assert all(o.ok for o in outcomes), [
                o.error for o in outcomes if not o.ok
            ]
            assert all(o.result == ids for o in outcomes)

    def test_heartbeat_detects_silent_wedge(self, sharded_db):
        """A worker that stops answering but keeps its socket open is
        caught by the heartbeat, not just EOF."""
        dbdir, ids = sharded_db
        with ShardedExecutor(
            dbdir, heartbeat_s=0.2, heartbeat_timeout_s=1.0
        ) as executor:
            # SIGSTOP: process alive, socket open, zero progress
            proc = executor.clients[1].proc
            proc.send_signal(signal.SIGSTOP)
            try:
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    if executor.clients[1].generation > 0:
                        break
                    time.sleep(0.05)
                assert executor.clients[1].generation > 0, "wedge never detected"
            finally:
                try:
                    proc.send_signal(signal.SIGCONT)
                except ProcessLookupError:
                    pass
            assert executor.await_healthy(timeout_s=30)
            assert executor.submit("//a").result(30).result == ids


# ---------------------------------------------------------------------------
# restart budget, sticky down, partial results


class TestDownAndPartial:
    def _exhaust_shard(self, dbdir, **kwargs):
        """An executor whose respawns always fail: first kill → down."""
        config = ChaosConfig(seed=5, fail_start_rate=1.0)
        return ShardedExecutor(
            dbdir,
            worker_module="repro.testing.chaos",
            worker_env=config.to_env(),
            restart_policy=RestartPolicy(
                max_restarts=2, window_s=60.0, base_backoff_s=0.01, seed=1
            ),
            heartbeat_s=0.2,
            rpc_retries=1,
            retry_backoff_s=0.01,
            rpc_timeout_s=15.0,
            **kwargs,
        )

    def _await_down(self, executor, shard: int, timeout_s: float = 30.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if executor.clients[shard].state == DOWN:
                return
            time.sleep(0.05)
        raise AssertionError(
            f"shard {shard} never went down: {executor.shard_states()}"
        )

    def test_budget_exhaustion_marks_down_and_fails_loud(self, sharded_db):
        dbdir, ids = sharded_db
        with self._exhaust_shard(dbdir) as executor:
            assert executor.submit("//a").result(30).result == ids
            _kill_worker(executor, shard=1)
            self._await_down(executor, shard=1)
            outcome = executor.submit("//a").result(30)
            assert not outcome.ok
            assert isinstance(outcome.error, ShardQueryError)
            assert all(
                isinstance(c, ShardUnavailableError)
                for c in outcome.error.shard_errors.values()
            )
            assert "budget" in executor.clients[1].down_reason

    def test_partial_mode_annotates_missing_shards(self, sharded_db):
        dbdir, ids = sharded_db
        with self._exhaust_shard(dbdir, partial=True) as executor:
            _kill_worker(executor, shard=1)
            self._await_down(executor, shard=1)
            outcome = executor.submit("//a").result(30)
            assert outcome.ok  # degraded, not failed
            assert outcome.missing_shards == [1]
            lost = set(ids) - set(outcome.result)
            with ShardRouter(dbdir) as router:
                shard1_globals = set(router.map.globals_of(1))
            assert lost == shard1_globals  # exactly the down shard's docs
            assert outcome.shard_detail[1]["status"] == "missing"
            snapshot = executor.supervision_snapshot()
            assert snapshot["shard"]["1"]["unavailable"] >= 1
            assert snapshot["down"] == [1]
            assert snapshot["queries"]["partial"] >= 1

    def test_stats_survive_a_down_shard(self, sharded_db):
        dbdir, _ = sharded_db
        with self._exhaust_shard(dbdir) as executor:
            _kill_worker(executor, shard=1)
            self._await_down(executor, shard=1)
            stats = executor.stats()
            assert "error" in stats["shard"]["1"]
            assert isinstance(stats["shard"]["0"], dict)
            assert stats["supervision"]["states"]["1"] == "down"


# ---------------------------------------------------------------------------
# per-RPC deadlines and hedged reads


class TestRpcResilience:
    def test_deadline_bounds_a_delayed_worker(self, sharded_db):
        """Every reply delayed 5 s, RPC deadline 0.5 s: the query fails
        typed in ~deadline time, not in delay time."""
        dbdir, _ = sharded_db
        config = ChaosConfig(seed=3, delay_rate=1.0, delay_ms=5000.0)
        with ShardedExecutor(
            dbdir,
            worker_module="repro.testing.chaos",
            worker_env=config.to_env(),
            supervise=False,
            rpc_retries=0,
            rpc_timeout_s=0.5,
        ) as executor:
            t0 = time.monotonic()
            outcome = executor.submit("//a").result(30)
            elapsed = time.monotonic() - t0
            assert elapsed < 4.0, f"deadline did not bound latency: {elapsed:.1f}s"
            assert not outcome.ok
            assert all(
                isinstance(c, ShardUnavailableError)
                for c in outcome.error.shard_errors.values()
            )
            snapshot = executor.supervision_snapshot()
            assert any(
                snapshot["shard"][str(k)].get("rpc_timeouts", 0) > 0
                for k in range(executor.nshards)
            )

    def test_guard_deadline_derives_rpc_deadline(self, sharded_db):
        dbdir, _ = sharded_db
        with ShardedExecutor(
            dbdir, guard_spec={"deadline_ms": 250.0}, rpc_grace_s=0.5
        ) as executor:
            assert executor._rpc_deadline_s() == pytest.approx(0.75)
        with ShardedExecutor(dbdir, rpc_timeout_s=33.0) as executor:
            assert executor._rpc_deadline_s() == 33.0

    def test_hedged_reads_fire_and_answers_stay_exact(self, sharded_db):
        """Half the replies delayed past the hedge threshold: hedges must
        fire (counter moves) and every answer is still exact."""
        dbdir, ids = sharded_db
        config = ChaosConfig(seed=4, delay_rate=0.5, delay_ms=300.0)
        with ShardedExecutor(
            dbdir,
            worker_module="repro.testing.chaos",
            worker_env=config.to_env(),
            hedge_ms=30.0,
            rpc_timeout_s=30.0,
        ) as executor:
            outcomes = executor.run(["//a"] * 10)
            assert all(o.ok for o in outcomes)
            assert all(o.result == ids for o in outcomes)
            snapshot = executor.supervision_snapshot()
            hedges = sum(
                snapshot["shard"][str(k)].get("hedges", 0)
                for k in range(executor.nshards)
            )
            assert hedges > 0


# ---------------------------------------------------------------------------
# the chaos hammer: differential oracle under seeded fault injection


def _run_chaos_hammer(
    tmp_path,
    *,
    seed: int,
    docs: int,
    nshards: int,
    client_threads: int,
    submissions: int,
    chaos: ChaosConfig,
    monkey_interval_s: float | None,
    partial: bool = False,
):
    """The cross-shard differential-oracle workload under fault injection.

    Asserts the full contract: (1) no hangs — every future resolves well
    inside the global watchdog; (2) no silently wrong answers — with
    ``partial`` off every OK outcome equals the single-process reference
    exactly, and failures are typed availability errors; (3) recovery —
    once injection stops, the executor returns to all-shards-healthy and
    answers exactly; (4) the shards scrub clean afterwards.
    """
    from repro.repair import scrub_db
    from repro.sequence.transform import SequenceEncoder
    from repro.testing.generator import DocQueryGenerator
    from repro.testing.reference import reference_results

    generator = DocQueryGenerator(seed)
    corpus = generator.corpus(docs, 12)
    queries = [generator.query(corpus) for _ in range(8)]
    hasher = SequenceEncoder().hasher
    expected = [reference_results(corpus, q, hasher) for q in queries]

    dbdir = tmp_path / "db"
    with ShardRouter(dbdir, nshards) as router:
        router.add_all(corpus)

    outcomes: dict[int, object] = {}
    outcomes_lock = threading.Lock()
    errors: list[BaseException] = []

    with ShardedExecutor(
        dbdir,
        verify=True,
        worker_module="repro.testing.chaos",
        worker_env=chaos.to_env(),
        partial=partial,
        rpc_retries=3,
        retry_backoff_s=0.05,
        rpc_timeout_s=20.0,
        heartbeat_s=0.5,
        heartbeat_timeout_s=5.0,
        restart_policy=RestartPolicy(
            max_restarts=50, window_s=60.0, base_backoff_s=0.02,
            max_backoff_s=0.5, seed=seed,
        ),
    ) as executor:
        monkey = (
            ChaosMonkey(executor, seed=seed, interval_s=monkey_interval_s)
            if monkey_interval_s is not None
            else None
        )
        if monkey is not None:
            monkey.start()
        try:

            def client(offset: int) -> None:
                try:
                    for pos in range(offset, submissions, client_threads):
                        outcome = executor.submit(
                            queries[pos % len(queries)].to_xpath(), position=pos
                        ).result(60)  # the no-hang watchdog
                        with outcomes_lock:
                            outcomes[pos] = outcome
                except BaseException as exc:  # noqa: BLE001 - asserted below
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(k,))
                for k in range(client_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(180)
                assert not thread.is_alive(), "chaos hammer client hung"
            assert not errors, f"client raised through the executor: {errors[0]!r}"
        finally:
            if monkey is not None:
                monkey.stop()

        assert len(outcomes) == submissions
        ok_count = 0
        for pos, outcome in sorted(outcomes.items()):
            want = expected[pos % len(queries)]
            if outcome.ok:
                if partial and outcome.missing_shards:
                    # annotated subset: every returned id is a true match
                    assert set(outcome.result) <= set(want), (
                        f"partial result invented matches at #{pos}"
                    )
                else:
                    ok_count += 1
                    assert sorted(outcome.result) == want, (
                        f"silently wrong answer at #{pos}: "
                        f"{sorted(outcome.result)} != {want}"
                    )
            else:
                # failures must be typed availability errors, nothing raw
                assert isinstance(outcome.error, ShardQueryError), outcome.error
                for cause in outcome.error.shard_errors.values():
                    assert isinstance(cause, ShardUnavailableError), (
                        f"untyped failure at #{pos}: {cause!r}"
                    )
        assert ok_count > 0, "chaos drowned every query; nothing was asserted"

        # recovery: with injection stopped, health returns and answers
        # are exact again (retry because respawned workers also misbehave
        # until the fault schedule in their generation runs dry)
        deadline = time.monotonic() + 120
        while True:
            if executor.await_healthy(timeout_s=10):
                final = executor.submit(queries[0].to_xpath()).result(60)
                if final.ok and not final.missing_shards:
                    assert sorted(final.result) == expected[0]
                    break
            assert time.monotonic() < deadline, (
                f"executor never recovered: {executor.shard_states()}"
            )

    report = scrub_db(dbdir)
    assert report.ok, report.summary()


def test_chaos_hammer_kills_tier1(tmp_path):
    """Tier-1 smoke: worker kills + the monkey at a modest rate."""
    _run_chaos_hammer(
        tmp_path,
        seed=31,
        docs=6,
        nshards=3,
        client_threads=2,
        submissions=16,
        chaos=ChaosConfig(seed=31, kill_rate=0.03),
        monkey_interval_s=0.4,
    )


@pytest.mark.slow
@pytest.mark.parametrize(
    "seed,nshards,client_threads,submissions,chaos,monkey_interval_s",
    [
        # pure process murder, high rate
        (41, 3, 4, 40, ChaosConfig(seed=41, kill_rate=0.05), 0.2),
        # torn frames: death mid-reply, stream cut inside a frame
        (42, 3, 4, 40, ChaosConfig(seed=42, tear_rate=0.04), None),
        # delays + kills + flaky respawns together
        (
            43,
            4,
            4,
            48,
            ChaosConfig(
                seed=43,
                kill_rate=0.02,
                tear_rate=0.02,
                delay_rate=0.1,
                delay_ms=40.0,
                fail_start_rate=0.2,
            ),
            0.3,
        ),
    ],
)
def test_chaos_hammer_sweep(
    tmp_path, seed, nshards, client_threads, submissions, chaos, monkey_interval_s
):
    _run_chaos_hammer(
        tmp_path,
        seed=seed,
        docs=10,
        nshards=nshards,
        client_threads=client_threads,
        submissions=submissions,
        chaos=chaos,
        monkey_interval_s=monkey_interval_s,
    )


@pytest.mark.slow
def test_chaos_hammer_partial_mode(tmp_path):
    """Partial mode under injection: annotated subsets, never inventions."""
    _run_chaos_hammer(
        tmp_path,
        seed=44,
        docs=10,
        nshards=3,
        client_threads=3,
        submissions=30,
        chaos=ChaosConfig(seed=44, kill_rate=0.04),
        monkey_interval_s=0.3,
        partial=True,
    )
