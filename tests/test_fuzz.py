"""Fuzz-style robustness tests: parsers must parse or raise, never hang
or crash with unrelated exceptions."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.doc.parser import parse_fragment
from repro.errors import DocumentError, QueryParseError, XmlParseError
from repro.query.xpath import parse_xpath


class TestXPathFuzz:
    @settings(max_examples=300, deadline=None)
    @given(st.text(alphabet="/*[]'\"=abc()@.-", max_size=40))
    def test_parse_or_queryparseerror(self, text):
        try:
            root = parse_xpath(text)
        except QueryParseError:
            return
        # whatever parsed must render and re-parse to the same tree
        assert parse_xpath(root.to_xpath()) == root

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=30))
    def test_arbitrary_text_never_crashes_differently(self, text):
        try:
            parse_xpath(text)
        except (QueryParseError, DocumentError):
            pass


class TestXmlParserFuzz:
    @settings(max_examples=300, deadline=None)
    @given(st.text(alphabet="<>/= abc'\"&;![]-", max_size=60))
    def test_parse_or_xmlparseerror(self, text):
        try:
            parse_fragment(text)
        except XmlParseError:
            pass

    @settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.text(max_size=50))
    def test_arbitrary_text(self, text):
        try:
            parse_fragment(text)
        except (XmlParseError, DocumentError):
            pass
