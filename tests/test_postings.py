"""Query-path cache coherence: posting cache, batched matching, descent reuse.

The posting cache is a lookaside structure — the B+Trees stay the source
of truth — so every test here is an equivalence test at heart: the cached
index must answer exactly like the uncached one under inserts, removals,
reopen-from-disk, and buffer-pool eviction pressure.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.doc.model import XmlNode
from repro.index.matching import SequenceMatcher
from repro.index.postings import PostingCache, PostingGroup
from repro.index.rist import RistIndex
from repro.index.vist import VistIndex
from repro.labeling.scope import Scope
from repro.query.xpath import parse_xpath
from repro.sequence.transform import SequenceEncoder
from repro.storage.cache import BufferPool
from repro.storage.docstore import FileDocStore
from repro.storage.pager import FilePager
from tests.conftest import build_figure3_record, build_purchase_schema, build_record


def make_index(**kwargs) -> VistIndex:
    return VistIndex(SequenceEncoder(schema=build_purchase_schema()), **kwargs)


class TestPostingGroup:
    def test_sorted_by_n_and_select_bisects(self):
        entries = [((), Scope(n, 0)) for n in [40, 10, 30, 20]]
        group = PostingGroup(entries)
        assert list(group.ns) == [10, 20, 30, 40]
        # S-Ancestor range is (n, n+size]: excludes n itself, includes end
        assert [s.n for _, s in group.select(Scope(10, 20))] == [20, 30]
        assert [s.n for _, s in group.select(Scope(0, 100))] == [10, 20, 30, 40]
        assert group.select(Scope(40, 100)) == []
        assert len(group) == 4

    def test_select_boundary_inclusive_end(self):
        group = PostingGroup([((), Scope(5, 0)), ((), Scope(8, 0))])
        assert [s.n for _, s in group.select(Scope(4, 4))] == [5, 8]
        assert [s.n for _, s in group.select(Scope(5, 3))] == [8]


class TestPostingCache:
    def test_hit_miss_counters(self):
        cache = PostingCache(capacity=4)
        loader = lambda: [((), Scope(1, 0))]
        g1 = cache.lookup("A", 0, (), loader)
        g2 = cache.lookup("A", 0, (), loader)
        assert g1 is g2
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = PostingCache(capacity=2)
        for sym in "ABC":
            cache.lookup(sym, 0, (), lambda: [])
        cache.lookup("B", 0, (), lambda: [])
        cache.lookup("C", 0, (), lambda: [])
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # A was evicted: looking it up again is a miss
        misses = cache.stats.misses
        cache.lookup("A", 0, (), lambda: [])
        assert cache.stats.misses == misses + 1

    def test_invalidate_entry_matches_wildcard_groups(self):
        cache = PostingCache(capacity=8)
        # concrete key, a covering wildcard key, and two unrelated keys
        cache.lookup("A", 2, ("P", "S"), lambda: [])
        cache.lookup("A", 2, ("P",), lambda: [])
        cache.lookup("A", 2, ("P", "B"), lambda: [])  # different leading
        cache.lookup("A", 3, ("P", "S"), lambda: [])  # different prefix_len
        cache.invalidate_entry("A", ("P", "S"))
        assert len(cache) == 2
        assert cache.stats.invalidations == 2
        hits = cache.stats.hits
        cache.lookup("A", 2, ("P", "B"), lambda: [])
        cache.lookup("A", 3, ("P", "S"), lambda: [])
        assert cache.stats.hits == hits + 2  # the unrelated keys survived

    def test_invalidate_unknown_symbol_is_noop(self):
        cache = PostingCache(capacity=2)
        cache.invalidate_entry("Z", ("P",))
        assert cache.stats.invalidations == 0

    def test_clear(self):
        cache = PostingCache(capacity=4)
        cache.lookup("A", 0, (), lambda: [])
        cache.clear()
        assert len(cache) == 0
        misses = cache.stats.misses
        cache.lookup("A", 0, (), lambda: [])
        assert cache.stats.misses == misses + 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PostingCache(capacity=0)


QUERIES = [
    "/P/S/N",
    "/P[S[L='boston']]",
    "/P[S[L='boston']][B[L='newyork']]",
    "/P/S/I/M",
    "//I//M",
    "/P//N",
]


def corpus(k: int) -> list[XmlNode]:
    locs = ["boston", "newyork", "austin", "dallas"]
    makers = ["intel", "amd", "ibm"]
    rng = random.Random(k)
    docs = [build_figure3_record()]
    for i in range(k):
        docs.append(
            build_record(
                rng.choice(locs),
                rng.choice(locs),
                rng.sample(makers, rng.randint(1, 3)),
            )
        )
    return docs


class TestVistCoherence:
    def test_interleaved_insert_query_matches_uncached(self):
        cached = make_index(posting_cache_size=16)
        uncached = make_index(posting_cache_size=0)
        assert cached.postings is not None and uncached.postings is None
        for doc in corpus(12):
            cached.add(doc)
            uncached.add(doc)
            for q in QUERIES:
                assert cached.query(q) == uncached.query(q), q
        assert cached.postings.stats.hits > 0  # the cache actually engaged
        assert cached.postings.stats.invalidations > 0

    def test_remove_invalidates(self):
        cached = make_index(posting_cache_size=16)
        uncached = make_index(posting_cache_size=0)
        ids = []
        for doc in corpus(10):
            ids.append(cached.add(doc))
            uncached.add(doc)
        for q in QUERIES:  # warm the cache before removing
            cached.query(q)
        rng = random.Random(5)
        for doc_id in rng.sample(ids, 5):
            cached.remove(doc_id)
            uncached.remove(doc_id)
            for q in QUERIES:
                assert cached.query(q) == uncached.query(q), q

    def test_reopen_starts_cold_and_correct(self, tmp_path):
        pager = FilePager(tmp_path / "vist.db")
        index = make_index(
            pager=pager, docstore=FileDocStore(tmp_path / "docs.dat")
        )
        docs = corpus(8)
        for doc in docs:
            index.add(doc)
        expected = {q: index.query(q) for q in QUERIES}
        index.flush()
        index.close()
        index.docstore.close()

        reopened = make_index(
            pager=FilePager(tmp_path / "vist.db"),
            docstore=FileDocStore(tmp_path / "docs.dat"),
        )
        assert len(reopened.postings) == 0  # cache never persists
        for q in QUERIES:
            assert reopened.query(q) == expected[q], q
        assert reopened.postings.stats.hits + reopened.postings.stats.misses > 0
        reopened.close()
        reopened.docstore.close()

    def test_descent_cache_survives_buffer_pool_eviction(self, tmp_path):
        # a 4-page pool forces constant eviction under the descent cache;
        # cached pids must re-decode correctly after their pages cycle out
        pool = BufferPool(FilePager(tmp_path / "vist.db"), capacity=4)
        index = make_index(
            pager=pool, docstore=FileDocStore(tmp_path / "docs.dat")
        )
        reference = make_index(posting_cache_size=0)
        for doc in corpus(15):
            index.add(doc)
            reference.add(doc)
        for _ in range(3):
            for q in QUERIES:
                assert index.query(q) == reference.query(q), q
        stats = index.cache_stats()
        assert stats["buffer_pool"]["evictions"] > 0
        assert stats["descent"]["combined"]["hits"] > 0
        index.close()
        index.docstore.close()

    def test_rist_finalize_clears_cache(self):
        index = RistIndex(SequenceEncoder(schema=build_purchase_schema()))
        uncached = make_index(posting_cache_size=0)
        for doc in corpus(10):
            index.add(doc)
            uncached.add(doc)
        for q in QUERIES:
            assert index.query(q) == uncached.query(q), q

    def test_cache_stats_shape(self):
        index = make_index()
        index.add(build_figure3_record())
        index.query("/P/S/N")
        stats = index.cache_stats()
        for field in ("groups", "hits", "misses", "invalidations", "hit_rate"):
            assert field in stats["postings"]
        assert set(stats["descent"]) == {"combined", "docid"}

    def test_match_stats_counters(self):
        index = make_index(posting_cache_size=16)
        for doc in corpus(8):
            index.add(doc)
        index.query("/P[S[L='boston']][B[L='newyork']]")
        first = index.match_stats
        assert first.range_queries > 0
        assert first.cache_hits + first.cache_misses > 0
        index.query("/P[S[L='boston']][B[L='newyork']]")
        assert index.match_stats.cache_hits > 0  # warm second run


@settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_docs=st.integers(min_value=1, max_value=10),
)
def test_cached_batched_equals_uncached_recursive(seed, n_docs):
    """Property: all four (cache x traversal) combos yield the same scopes."""
    cached = make_index(posting_cache_size=8)
    uncached = make_index(posting_cache_size=0)
    rng = random.Random(seed)
    locs = ["boston", "newyork", "austin"]
    makers = ["intel", "amd", "ibm"]
    for _ in range(n_docs):
        doc = build_record(
            rng.choice(locs), rng.choice(locs), rng.sample(makers, rng.randint(1, 2))
        )
        cached.add(doc)
        uncached.add(doc)
    matchers = [
        SequenceMatcher(cached, batched=True),
        SequenceMatcher(cached, batched=False),
        SequenceMatcher(uncached, batched=True),
        SequenceMatcher(uncached, batched=False),
    ]
    for q in QUERIES:
        for qseq in cached.translator.translate(parse_xpath(q)):
            results = [
                sorted((s.n, s.size) for s in m.final_scopes(qseq)) for m in matchers
            ]
            assert all(r == results[0] for r in results[1:]), q


# ---------------------------------------------------------------------------
# invalidate_entry staleness property (model-based)

_LABELS = ("a", "b")
_prefixes = st.lists(st.sampled_from(_LABELS), max_size=3).map(tuple)
_cache_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), _prefixes),
        st.tuples(st.just("remove"), _prefixes),
        st.tuples(st.just("lookup"), _prefixes, st.integers(0, 3)),
    ),
    max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(ops=_cache_ops)
def test_invalidate_entry_keeps_wildcard_groups_coherent(ops):
    """Property: after any interleaving of inserts, removals, and lookups,
    every cached group equals a cold recomputation from the model store.

    The subtle case is wildcard groups: a lookup key ``(symbol, plen,
    leading)`` with ``len(leading) < plen`` covers every entry whose
    prefix *starts with* ``leading`` — so adding or removing an entry
    must invalidate each cached key whose leading labels are a (proper)
    prefix of the entry's, not just the exact-key group.
    """
    symbol = "E"
    cache = PostingCache(capacity=64)
    store: dict[tuple, list[Scope]] = {}
    next_n = [0]

    def cold(plen: int, leading: tuple) -> list[tuple[tuple, Scope]]:
        return [
            (prefix, scope)
            for prefix, scopes in store.items()
            if len(prefix) == plen and prefix[: len(leading)] == leading
            for scope in scopes
        ]

    cached_keys: list[tuple[int, tuple]] = []
    for op in ops:
        if op[0] == "add":
            prefix = op[1]
            scope = Scope(next_n[0], 0)
            next_n[0] += 10
            store.setdefault(prefix, []).append(scope)
            cache.invalidate_entry(symbol, prefix)
        elif op[0] == "remove":
            prefix = op[1]
            if store.get(prefix):
                store[prefix].pop()
                cache.invalidate_entry(symbol, prefix)
        else:
            _, prefix, lead_len = op
            leading = prefix[: min(lead_len, len(prefix))]
            plen = len(prefix)
            group = cache.lookup(
                symbol, plen, leading, lambda: cold(plen, leading)
            )
            cached_keys.append((plen, leading))
            want = sorted(cold(plen, leading), key=lambda e: e[1].n)
            assert group.entries == want, (
                f"stale group for plen={plen} leading={leading}"
            )
        # every group still resident must match a cold run right now
        for plen, leading in cached_keys:
            resident = cache._groups.get((symbol, plen, leading))
            if resident is not None:
                want = sorted(cold(plen, leading), key=lambda e: e[1].n)
                assert resident.entries == want, (
                    f"resident group went stale: plen={plen} leading={leading}"
                )
