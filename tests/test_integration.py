"""Cross-module integration and property tests.

These exercise the whole pipeline — documents → sequences → dynamic
labelling → B+Trees → matching — under random workloads, persistence
cycles, and injected storage corruption.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.doc.model import XmlNode
from repro.errors import CodecError, PageError, StorageError
from repro.index.naive import NaiveIndex
from repro.index.vist import VistIndex
from repro.sequence.transform import SequenceEncoder
from repro.storage.cache import BufferPool
from repro.storage.docstore import FileDocStore
from repro.storage.pager import FilePager, MemoryPager

LABELS = ["a", "b", "c"]
VALUES = ["x", "y"]
QUERIES = [
    "/r/a",
    "/r//b",
    "/r/*/c",
    "/r[a]/b",
    "//c[text='x']",
    "/r/a[text='y']",
]


def random_doc(rng: random.Random) -> XmlNode:
    root = XmlNode("r")
    nodes = [root]
    for _ in range(rng.randint(1, 7)):
        parent = rng.choice(nodes)
        child = parent.element(rng.choice(LABELS))
        if rng.random() < 0.4:
            child.text = rng.choice(VALUES)
        nodes.append(child)
    return root


def oracle_results(live_docs: dict[int, XmlNode], expr: str) -> list[int]:
    """Ground truth for *raw* ViST semantics: the naïve trie algorithm."""
    naive = NaiveIndex(SequenceEncoder())
    mapping = {}
    for doc_id, doc in sorted(live_docs.items()):
        mapping[naive.add(doc)] = doc_id
    return sorted(mapping[n] for n in naive.query(expr))


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["add", "remove", "query"]), st.randoms(use_true_random=False)),
        min_size=1,
        max_size=25,
    )
)
def test_stateful_add_remove_query_matches_oracle(ops):
    """Random interleavings of add/remove/query agree with the naïve
    oracle over the live documents at every query point."""
    index = VistIndex(SequenceEncoder())
    live: dict[int, XmlNode] = {}
    for op, rng in ops:
        if op == "add" or not live:
            doc = random_doc(rng)
            live[index.add(doc)] = doc
        elif op == "remove":
            victim = rng.choice(sorted(live))
            index.remove(victim)
            del live[victim]
        else:
            expr = rng.choice(QUERIES)
            assert index.query(expr) == oracle_results(live, expr), expr
    # final full check over every query
    for expr in QUERIES:
        assert index.query(expr) == oracle_results(live, expr), expr


class TestPersistenceCycles:
    def test_results_survive_multiple_reopen_cycles(self, tmp_path):
        rng = random.Random(11)
        docs = [random_doc(rng) for _ in range(30)]
        expected = {}

        index = VistIndex(
            SequenceEncoder(),
            docstore=FileDocStore(tmp_path / "docs.dat"),
            pager=FilePager(tmp_path / "vist.db"),
        )
        for doc in docs[:10]:
            index.add(doc)
        for expr in QUERIES:
            expected[expr] = index.query(expr)
        index.flush()
        index.close()
        index.docstore.close()

        for round_no in range(3):
            index = VistIndex(
                SequenceEncoder(),
                docstore=FileDocStore(tmp_path / "docs.dat"),
                pager=FilePager(tmp_path / "vist.db"),
            )
            for expr in QUERIES:
                assert index.query(expr) == expected[expr], (round_no, expr)
            for doc in docs[10 + round_no * 5 : 15 + round_no * 5]:
                index.add(doc)
            for expr in QUERIES:
                expected[expr] = index.query(expr)
            index.flush()
            index.close()
            index.docstore.close()

    def test_buffered_file_index_equals_memory_index(self, tmp_path):
        rng = random.Random(12)
        docs = [random_doc(rng) for _ in range(40)]
        mem = VistIndex(SequenceEncoder())
        buffered = VistIndex(
            SequenceEncoder(),
            pager=BufferPool(FilePager(tmp_path / "v.db", page_size=1024), capacity=16),
            max_label=1 << 64,
        )
        for doc in docs:
            mem.add(doc)
            buffered.add(doc)
        for expr in QUERIES:
            assert mem.query(expr) == buffered.query(expr), expr

    def test_remove_survives_reopen(self, tmp_path):
        encoder = SequenceEncoder()
        index = VistIndex(
            encoder,
            docstore=FileDocStore(tmp_path / "docs.dat"),
            pager=FilePager(tmp_path / "vist.db"),
        )
        doc = XmlNode("r")
        doc.element("a", text="y")
        keep = XmlNode("r")
        keep.element("b")
        gone_id = index.add(doc)
        keep_id = index.add(keep)
        index.flush()
        index.close()
        index.docstore.close()

        index = VistIndex(
            encoder,
            docstore=FileDocStore(tmp_path / "docs.dat"),
            pager=FilePager(tmp_path / "vist.db"),
        )
        index.remove(gone_id)
        assert index.query("/r/a[text='y']") == []
        assert index.query("/r/b") == [keep_id]
        index.flush()
        index.close()
        index.docstore.close()

        index = VistIndex(
            encoder,
            docstore=FileDocStore(tmp_path / "docs.dat"),
            pager=FilePager(tmp_path / "vist.db"),
        )
        assert index.query("/r/a[text='y']") == []
        assert index.query("/r/b") == [keep_id]


class TestFailureInjection:
    def test_corrupt_page_file_detected(self, tmp_path):
        path = tmp_path / "vist.db"
        pager = FilePager(path)
        index = VistIndex(SequenceEncoder(), pager=pager)
        index.add(XmlNode("r", text="v"))
        index.flush()
        index.close()
        # clobber the magic number
        raw = bytearray(path.read_bytes())
        raw[:4] = b"XXXX"
        path.write_bytes(bytes(raw))
        with pytest.raises(PageError):
            FilePager(path)

    def test_truncated_docstore_detected(self, tmp_path):
        path = tmp_path / "docs.dat"
        store = FileDocStore(path)
        store.add(b"a perfectly fine payload")
        store.close()
        path.write_bytes(path.read_bytes()[:-5])
        with pytest.raises(StorageError):
            FileDocStore(path)

    def test_garbage_node_state_detected(self):
        from repro.labeling.dynamic import NodeState

        with pytest.raises(CodecError):
            NodeState.from_bytes(5, b"\x00\x01")

    def test_oversized_document_rejected_atomically(self):
        from repro.errors import KeyTooLargeError

        index = VistIndex(SequenceEncoder())
        deep = XmlNode("segment" + "x" * 33)
        node = deep
        for i in range(1, 25):
            node = node.element(f"segment{'x' * 25}{i:08d}")
        entries_before = len(index.tree)
        docs_before = len(index.docstore)
        with pytest.raises(KeyTooLargeError):
            index.add(deep)
        # nothing was half-written
        assert len(index.tree) == entries_before
        assert len(index.docstore) == docs_before

    def test_index_still_usable_after_rejected_add(self):
        from repro.errors import KeyTooLargeError

        index = VistIndex(SequenceEncoder())
        ok = XmlNode("r")
        ok.element("a")
        good_id = index.add(ok)
        deep = XmlNode("x" * 800)
        with pytest.raises(KeyTooLargeError):
            index.add(deep)
        assert index.query("/r/a") == [good_id]
