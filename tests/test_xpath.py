"""Tests for the XPath-subset parser (every query of paper Tables 2 & 3)."""

import pytest

from repro.errors import QueryParseError
from repro.query.ast import DSLASH_LABEL, STAR_LABEL, QueryNode
from repro.query.xpath import parse_xpath


def chain_labels(node: QueryNode) -> list[str]:
    """Labels along the last-child spine."""
    out = [node.label]
    while node.children:
        node = node.children[-1]
        out.append(node.label)
    return out


class TestSimplePaths:
    def test_single_step(self):
        root = parse_xpath("/purchase")
        assert root.label == "purchase"
        assert not root.children

    def test_table3_q1(self):
        root = parse_xpath("/inproceedings/title")
        assert chain_labels(root) == ["inproceedings", "title"]

    def test_paper_q1_four_steps(self):
        root = parse_xpath("/Purchase/Seller/Item/Manufacturer")
        assert chain_labels(root) == ["Purchase", "Seller", "Item", "Manufacturer"]

    def test_attribute_step(self):
        root = parse_xpath("/book/@key")
        assert chain_labels(root) == ["book", "key"]


class TestValuePredicates:
    def test_table3_q2(self):
        root = parse_xpath("/book/author[text='David']")
        author = root.children[0]
        assert author.label == "author"
        assert author.value == "David"

    def test_text_function_form(self):
        root = parse_xpath("/book/author[text()='David']")
        assert root.children[0].value == "David"

    def test_child_equality(self):
        root = parse_xpath("/book[key='books/bc/MaierW88']/author")
        key_branch = root.children[0]
        assert key_branch.label == "key"
        assert key_branch.value == "books/bc/MaierW88"
        assert root.children[1].label == "author"

    def test_double_quotes(self):
        root = parse_xpath('/a[b="x y"]')
        assert root.children[0].value == "x y"

    def test_element_named_textfield_is_a_branch(self):
        root = parse_xpath("/a[textfield='v']/b")
        assert root.children[0].label == "textfield"
        assert root.children[0].value == "v"
        assert root.value is None


class TestWildcards:
    def test_table3_q3_star(self):
        root = parse_xpath("/*/author[text='David']")
        assert root.label == STAR_LABEL
        assert root.children[0].label == "author"

    def test_table3_q4_leading_dslash(self):
        root = parse_xpath("//author[text='David']")
        assert root.label == DSLASH_LABEL
        assert root.children[0].label == "author"
        assert root.children[0].value == "David"

    def test_mid_path_dslash(self):
        root = parse_xpath("/site//item")
        assert root.label == "site"
        assert root.children[0].label == DSLASH_LABEL
        assert root.children[0].children[0].label == "item"

    def test_paper_q3_star_with_branch(self):
        root = parse_xpath("/Purchase/*[Loc='boston']")
        star = root.children[0]
        assert star.label == STAR_LABEL
        assert star.children[0].label == "Loc"
        assert star.children[0].value == "boston"


class TestComplexQueries:
    def test_table3_q6(self):
        root = parse_xpath(
            "/site//item[location='US']/mail/date[text='12/15/1999']"
        )
        assert root.label == "site"
        dslash = root.children[0]
        item = dslash.children[0]
        assert item.label == "item"
        assert item.children[0].label == "location"
        assert item.children[0].value == "US"
        assert chain_labels(item.children[1]) == ["mail", "date"]
        assert item.children[1].children[0].value == "12/15/1999"

    def test_table3_q7(self):
        root = parse_xpath("/site//person/*/city[text='Pocatello']")
        person = root.children[0].children[0]
        assert person.label == "person"
        assert person.children[0].label == STAR_LABEL
        assert person.children[0].children[0].label == "city"

    def test_table3_q8(self):
        root = parse_xpath(
            "//closed_auction[*[person='person1']]/date[text='12/15/1999']"
        )
        assert root.label == DSLASH_LABEL
        auction = root.children[0]
        assert auction.label == "closed_auction"
        star = auction.children[0]
        assert star.label == STAR_LABEL
        assert star.children[0].label == "person"
        assert star.children[0].value == "person1"
        assert auction.children[1].label == "date"

    def test_paper_q2_two_branches(self):
        root = parse_xpath("/Purchase[Seller[Loc='boston']]/Buyer[Loc='newyork']")
        seller = root.children[0]
        buyer = root.children[1]
        assert seller.label == "Seller"
        assert seller.children[0].label == "Loc"
        assert seller.children[0].value == "boston"
        assert buyer.label == "Buyer"
        assert buyer.children[0].value == "newyork"

    def test_q5_same_label_branches(self):
        root = parse_xpath("/A[B/C]/B/D")
        assert [c.label for c in root.children] == ["B", "B"]
        assert root.children[0].children[0].label == "C"
        assert root.children[1].children[0].label == "D"

    def test_nested_predicate_path_equality(self):
        root = parse_xpath("/a[b/c='v']/d")
        b = root.children[0]
        assert b.label == "b"
        assert b.children[0].label == "c"
        assert b.children[0].value == "v"


class TestRoundTrip:
    @pytest.mark.parametrize(
        "expr",
        [
            "/inproceedings/title",
            "/book/author[text()='David']",
            "/a[b/c]/d",
            "/site//item",
            "/a[//d]/b",
            "/a[//d[text()='7']]/c",
            "/a[b//c='v']/d",
        ],
    )
    def test_to_xpath_reparses_equal(self, expr):
        first = parse_xpath(expr)
        again = parse_xpath(first.to_xpath())
        assert again == first

    def test_descendant_predicate_renders_parseable(self):
        # regression: a // branch inside a predicate used to render as
        # [/d] which the parser itself rejected
        query = parse_xpath("/a[//d[text()='7']]/c")
        assert "[//d" in query.to_xpath()
        assert parse_xpath(query.to_xpath()) == query


class TestParseErrors:
    @pytest.mark.parametrize(
        "expr",
        [
            "",
            "author",  # relative queries must be inside predicates
            "/a[",
            "/a[b",
            "/a[]",
            "/a[b='unterminated]",
            "/a/b=",
            "/a//",
            "/a[b=v]",  # literal must be quoted
            "/a/b extra",
        ],
    )
    def test_rejects(self, expr):
        with pytest.raises(QueryParseError):
            parse_xpath(expr)
