"""Tests for the query plan introspection API (explain)."""

import pytest

from repro.baselines.pathindex import PathIndex
from repro.index.vist import VistIndex
from repro.sequence.transform import SequenceEncoder


@pytest.fixture
def index():
    return VistIndex(SequenceEncoder(), max_alternatives=6)


class TestExplain:
    def test_simple_path(self, index):
        plan = index.explain("/a/b")
        assert plan.index_type == "VistIndex"
        assert plan.xpath == "/a/b"
        assert len(plan.alternatives) == 1
        assert "(a,)" in plan.alternatives[0]
        assert not plan.auto_verified
        assert not plan.relaxed_candidates

    def test_same_label_branches_flagged(self, index):
        plan = index.explain("/A[B/C]/B/D")
        assert len(plan.alternatives) == 2  # the Q5 permutations
        assert plan.relaxed_candidates

    def test_childless_wildcard_auto_verified(self, index):
        plan = index.explain("/a/*")
        assert plan.auto_verified

    def test_range_predicate_flags(self, index):
        plan = index.explain("/book[year>'1999']")
        assert plan.needs_raw_values
        assert plan.auto_verified

    def test_translation_fallback_reported(self, index):
        plan = index.explain("/A[B/C][B/D]/B/E")  # 6 permutations > cap 6? 3! = 6 ok
        plan = index.explain("/A[B/C][B/D][B/E]/B/F")  # 4! = 24 > 6
        assert plan.translation_error is not None
        assert plan.auto_verified

    def test_baseline_plans_have_no_alternatives(self):
        path = PathIndex(SequenceEncoder())
        plan = path.explain("/a[b]/c")
        assert plan.alternatives == []
        assert any("join-based" in note for note in plan.notes)

    def test_all_wildcard_note(self, index):
        plan = index.explain("/*")
        assert any("all-wildcard" in note for note in plan.notes)

    def test_str_rendering(self, index):
        text = str(index.explain("/A[B/C]/B/D"))
        assert "query plan (VistIndex)" in text
        assert "sequence alternatives: 2" in text
        assert "relaxed candidates" in text

    def test_explain_does_not_touch_data(self, index):
        # no documents indexed; explain must still work
        plan = index.explain("//x[y='1']")
        assert plan.alternatives
