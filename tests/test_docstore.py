"""Tests for the document stores."""

import pytest

from repro.errors import StorageError
from repro.storage.docstore import FileDocStore, MemoryDocStore


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        s = MemoryDocStore()
    else:
        s = FileDocStore(tmp_path / "docs.dat")
    yield s
    s.close()


class TestDocStoreContract:
    def test_add_assigns_dense_ids(self, store):
        assert store.add(b"first") == 0
        assert store.add(b"second") == 1
        assert store.add(b"third") == 2

    def test_get_roundtrip(self, store):
        doc_id = store.add(b"payload bytes \x00\xff")
        assert store.get(doc_id) == b"payload bytes \x00\xff"

    def test_len_and_contains(self, store):
        a = store.add(b"aaaa")
        store.add(b"bbbb")
        assert len(store) == 2
        assert a in store
        assert 99 not in store

    def test_remove(self, store):
        a = store.add(b"aaaa")
        b = store.add(b"bbbb")
        store.remove(a)
        assert a not in store
        assert len(store) == 1
        assert store.get(b) == b"bbbb"
        with pytest.raises(StorageError):
            store.get(a)
        with pytest.raises(StorageError):
            store.remove(a)

    def test_ids_iterates_live_only(self, store):
        ids = [store.add(f"doc{i:02d}".encode()) for i in range(5)]
        store.remove(ids[1])
        store.remove(ids[3])
        assert list(store.ids()) == [ids[0], ids[2], ids[4]]

    def test_get_unknown(self, store):
        with pytest.raises(StorageError):
            store.get(42)


class TestFileDocStore:
    def test_reopen_preserves_docs_and_tombstones(self, tmp_path):
        path = tmp_path / "docs.dat"
        s = FileDocStore(path)
        ids = [s.add(f"document number {i}".encode()) for i in range(4)]
        s.remove(ids[2])
        s.close()

        r = FileDocStore(path)
        assert len(r) == 3
        assert r.get(ids[0]) == b"document number 0"
        assert ids[2] not in r
        # New ids continue after the highest ever assigned.
        assert r.add(b"new doc") == 4
        r.close()

    def test_closed_store_rejects_ops(self, tmp_path):
        s = FileDocStore(tmp_path / "docs.dat")
        s.close()
        with pytest.raises(StorageError):
            s.add(b"late")

    def test_large_payload(self, tmp_path):
        s = FileDocStore(tmp_path / "docs.dat")
        blob = bytes(range(256)) * 1000
        doc_id = s.add(blob)
        assert s.get(doc_id) == blob
        s.close()
