"""Coverage for smaller API surfaces: add_all, match stats, pager stacking."""

import pytest

from repro.doc.model import XmlDocument, XmlNode
from repro.index.matching import SequenceMatcher
from repro.index.vist import VistIndex
from repro.sequence.transform import SequenceEncoder
from repro.storage.bptree import BPlusTree
from repro.storage.cache import BufferPool
from repro.storage.wal import WalPager


def docs(n=3):
    out = []
    for i in range(n):
        root = XmlNode("r")
        root.element("a", text=f"v{i}")
        out.append(root)
    return out


class TestAddAll:
    def test_returns_ids_in_order(self):
        index = VistIndex(SequenceEncoder())
        ids = index.add_all(docs(4))
        assert ids == [0, 1, 2, 3]
        assert len(index) == 4

    def test_accepts_documents_and_nodes(self):
        index = VistIndex(SequenceEncoder())
        mixed = [docs(1)[0], XmlDocument(docs(1)[0], name="wrapped")]
        ids = index.add_all(mixed)
        assert ids == [0, 1]


class TestMatchStats:
    def test_stats_populated_after_match(self):
        from repro.query.xpath import parse_xpath

        index = VistIndex(SequenceEncoder())
        index.add_all(docs(5))
        matcher = SequenceMatcher(index)
        (alt,) = index.translator.translate(parse_xpath("/r/a"))
        finals = matcher.final_scopes(alt)
        assert matcher.stats.final_nodes == len(finals)
        assert matcher.stats.range_queries >= 2  # one per query item
        assert matcher.stats.candidates >= 1
        assert matcher.stats.search_states >= 1

    def test_stats_reset_between_matches(self):
        from repro.query.xpath import parse_xpath

        index = VistIndex(SequenceEncoder())
        index.add_all(docs(5))
        matcher = SequenceMatcher(index)
        (hit,) = index.translator.translate(parse_xpath("/r/a"))
        (miss,) = index.translator.translate(parse_xpath("/zzz"))
        matcher.final_scopes(hit)
        busy = matcher.stats.candidates
        matcher.final_scopes(miss)
        assert matcher.stats.candidates < busy
        assert matcher.stats.final_nodes == 0


class TestPagerStacking:
    def test_buffer_pool_over_wal_pager(self, tmp_path):
        """The LRU pool composes with the WAL pager underneath."""
        wal = WalPager(tmp_path / "w.db", page_size=512)
        pool = BufferPool(wal, capacity=4)
        tree = BPlusTree(pool)
        for i in range(200):
            tree.insert(f"k{i:04d}".encode(), b"v")
        tree.checkpoint()  # flush pool -> wal overlay -> commit
        tree.close()
        pool.close()

        reopened = WalPager(tmp_path / "w.db")
        tree2 = BPlusTree(reopened)
        assert len(tree2) == 200
        assert tree2.get(b"k0123") == b"v"
        reopened.close()

    def test_vist_over_buffered_wal(self, tmp_path):
        pool = BufferPool(WalPager(tmp_path / "v.db"), capacity=32)
        index = VistIndex(SequenceEncoder(), pager=pool)
        ids = index.add_all(docs(10))
        index.flush()
        assert index.query("/r/a[text='v3']") == [ids[3]]
        index.close()


class TestCliEdges:
    def test_stats_on_fresh_db(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["stats", str(tmp_path / "empty-db")]) == 0
        assert "documents: 0" in capsys.readouterr().out

    def test_query_on_empty_db(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["query", str(tmp_path / "db"), "/a/b"]) == 0
        assert "0 match(es)" in capsys.readouterr().out

    def test_unparseable_xml_reports_error(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.xml"
        bad.write_text("<oops>")
        assert main(["index", str(tmp_path / "db"), str(bad)]) == 1
        assert "error:" in capsys.readouterr().err
