"""Crash-safety tests for the write-ahead-logged pager."""

import os

import pytest

from repro.errors import PageError
from repro.storage.bptree import BPlusTree
from repro.storage.pager import FilePager
from repro.storage.wal import WalPager


class TestBasicPagerBehaviour:
    def test_pager_contract(self, tmp_path):
        pager = WalPager(tmp_path / "w.db", page_size=256)
        a = pager.allocate()
        pager.write(a, b"hello")
        assert pager.read(a)[:5] == b"hello"
        pager.set_metadata(b"meta")
        assert pager.get_metadata() == b"meta"
        pager.free(a)
        assert pager.allocate() == a  # recycled
        pager.close()

    def test_commit_then_reopen(self, tmp_path):
        pager = WalPager(tmp_path / "w.db", page_size=256)
        pid = pager.allocate()
        pager.write(pid, b"durable")
        pager.set_metadata(b"m1")
        pager.commit()
        pager.close()
        again = WalPager(tmp_path / "w.db")
        assert again.read(pid)[:7] == b"durable"
        assert again.get_metadata() == b"m1"
        again.close()

    def test_file_layout_is_filepager_compatible(self, tmp_path):
        pager = WalPager(tmp_path / "w.db", page_size=256)
        pid = pager.allocate()
        pager.write(pid, b"shared layout")
        pager.close()
        plain = FilePager(tmp_path / "w.db")
        assert plain.read(pid)[:13] == b"shared layout"
        plain.close()

    def test_rollback_discards_changes(self, tmp_path):
        pager = WalPager(tmp_path / "w.db", page_size=256)
        pid = pager.allocate()
        pager.write(pid, b"keep")
        pager.commit()
        pager.write(pid, b"drop")
        pager.set_metadata(b"drop-meta")
        pager.rollback()
        assert pager.read(pid)[:4] == b"keep"
        assert pager.get_metadata() == b""
        pager.close()

    def test_dirty_page_count(self, tmp_path):
        pager = WalPager(tmp_path / "w.db", page_size=256)
        assert pager.dirty_page_count == 0
        pid = pager.allocate()
        pager.write(pid, b"x")
        assert pager.dirty_page_count == 2  # page + header
        pager.commit()
        assert pager.dirty_page_count == 0
        pager.close()


class TestCrashRecovery:
    def populate(self, path):
        pager = WalPager(path, page_size=256)
        pid = pager.allocate()
        pager.write(pid, b"v1")
        pager.commit()
        return pager, pid

    def test_crash_after_journal_before_apply(self, tmp_path):
        """Journal written + fsynced, main file untouched: replay wins."""
        path = tmp_path / "w.db"
        pager, pid = self.populate(path)
        pager.write(pid, b"v2")
        pager._write_journal()  # step 1 of commit only — simulated crash here
        pager._file.close()

        recovered = WalPager(path)
        assert recovered.read(pid)[:2] == b"v2"
        assert not os.path.exists(recovered.journal_path)
        recovered.close()

    def test_crash_during_journal_write(self, tmp_path):
        """A torn journal (no commit marker) is discarded: old state wins."""
        path = tmp_path / "w.db"
        pager, pid = self.populate(path)
        pager.write(pid, b"v2")
        pager._write_journal()
        # chop the tail: the commit marker (and some bytes) never hit disk
        with open(pager.journal_path, "r+b") as journal:
            journal.truncate(os.path.getsize(pager.journal_path) - 11)
        pager._file.close()

        recovered = WalPager(path)
        assert recovered.read(pid)[:2] == b"v1"
        assert not os.path.exists(recovered.journal_path)
        recovered.close()

    def test_corrupted_journal_body_discarded(self, tmp_path):
        path = tmp_path / "w.db"
        pager, pid = self.populate(path)
        pager.write(pid, b"v2")
        pager._write_journal()
        raw = bytearray((tmp_path / "w.db.wal").read_bytes())
        raw[40] ^= 0xFF  # flip a bit inside the body: CRC must catch it
        (tmp_path / "w.db.wal").write_bytes(bytes(raw))
        pager._file.close()

        recovered = WalPager(path)
        assert recovered.read(pid)[:2] == b"v1"
        recovered.close()

    def test_replay_is_idempotent(self, tmp_path):
        """Crash after apply but before journal removal: replay re-applies."""
        path = tmp_path / "w.db"
        pager, pid = self.populate(path)
        pager.write(pid, b"v2")
        pager._write_journal()
        pager._apply_overlay()  # applied, but journal still on disk
        pager._file.close()

        recovered = WalPager(path)
        assert recovered.read(pid)[:2] == b"v2"
        recovered.close()


class TestBPlusTreeOnWal:
    def test_checkpoint_is_a_transaction(self, tmp_path):
        path = tmp_path / "w.db"
        pager = WalPager(path, page_size=256)
        tree = BPlusTree(pager)
        for i in range(150):
            tree.insert(f"k{i:04d}".encode(), b"v")
        tree.checkpoint()  # flush + pager.sync => commit
        # more inserts, never committed
        for i in range(150, 200):
            tree.insert(f"k{i:04d}".encode(), b"v")
        tree.flush()
        pager._file.close()  # crash: flush wrote the overlay, not the disk

        recovered = WalPager(path)
        tree2 = BPlusTree(recovered)
        assert len(tree2) == 150
        assert tree2.get(b"k0149") == b"v"
        assert tree2.get(b"k0150") is None
        recovered.close()

    def test_vist_index_on_wal_pager(self, tmp_path):
        from repro.doc.model import XmlNode
        from repro.index.vist import VistIndex
        from repro.sequence.transform import SequenceEncoder

        pager = WalPager(tmp_path / "vist.db")
        index = VistIndex(SequenceEncoder(), pager=pager)
        doc = XmlNode("r")
        doc.element("a", text="x")
        doc_id = index.add(doc)
        index.flush()  # commits through pager.sync()
        index.close()

        reopened = VistIndex(SequenceEncoder(), pager=WalPager(tmp_path / "vist.db"))
        assert reopened.query("/r/a[text='x']") == [doc_id]
        reopened.close()

    def test_min_page_size_enforced(self, tmp_path):
        with pytest.raises(PageError):
            WalPager(tmp_path / "w.db", page_size=32)
