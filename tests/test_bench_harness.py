"""Tests for the benchmark harness and workloads."""

import json

import pytest

from repro.bench.harness import (
    INDEX_KINDS,
    Report,
    bench_json_path,
    build_index,
    query_cache_enabled,
    read_bench_json,
    time_call,
    time_queries,
    write_bench_json,
)
from repro.bench.workloads import TABLE3_QUERIES
from repro.doc.model import XmlNode
from repro.query.xpath import parse_xpath


def tiny_corpus():
    docs = []
    for loc in ["boston", "newyork"]:
        root = XmlNode("p")
        root.element("s", text=loc)
        docs.append(root)
    return docs


class TestBuildIndex:
    @pytest.mark.parametrize("kind", INDEX_KINDS)
    def test_every_kind_builds_and_answers(self, kind):
        index = build_index(kind, tiny_corpus())
        assert index.query("/p/s[text='boston']") == [0]
        assert index.query("/p") == [0, 1]

    def test_vist_defaults_to_no_refcounts(self):
        index = build_index("vist", tiny_corpus())
        assert index.track_refs is False

    def test_vist_refcounts_can_be_enabled(self):
        index = build_index("vist", tiny_corpus(), track_refs=True)
        index.remove(0)
        assert index.query("/p") == [1]

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            build_index("btree-of-doom", tiny_corpus())


class TestTiming:
    def test_time_call_returns_result(self):
        seconds, value = time_call(lambda: 41 + 1)
        assert value == 42
        assert seconds >= 0

    def test_time_queries(self):
        index = build_index("vist", tiny_corpus())
        seconds = time_queries(index, ["/p", "/p/s"], repeats=2)
        assert seconds > 0


class TestReport:
    def test_render_alignment(self):
        report = Report("exp", "a title", ["col_a", "b"], paper_note="note!")
        report.add("x", 1.23456)
        report.add("longer-label", 7)
        text = report.render()
        lines = text.splitlines()
        assert lines[0] == "== exp: a title =="
        assert "paper: note!" in lines[1]
        assert "col_a" in lines[2]
        assert "1.2346" in text  # floats rendered at 4 decimals
        assert "longer-label" in text

    def test_emit_appends_to_file(self, tmp_path, capsys):
        report = Report("myexp", "t", ["h"])
        report.add("row1")
        report.emit(directory=str(tmp_path))
        report.emit(directory=str(tmp_path))
        out = capsys.readouterr().out
        assert "myexp" in out
        content = (tmp_path / "myexp.txt").read_text()
        assert content.count("row1") == 2

    def test_empty_report_renders_headers(self):
        report = Report("e", "t", ["only", "headers"])
        assert "only" in report.render()

    def test_bar_column(self):
        report = Report("e", "t", ["n", "time"], bar_column=1)
        report.add(1, 0.5)
        report.add(2, 1.0)
        report.add(3, 0.25)
        lines = report.render().splitlines()
        bars = [line.count("▌") for line in lines[2:]]
        assert bars[1] == max(bars)  # the 1.0 row gets the longest bar
        assert all(b >= 1 for b in bars)

    def test_bar_column_handles_zeroes(self):
        report = Report("e", "t", ["n", "time"], bar_column=1)
        report.add(1, 0.0)
        assert "▌" in report.render()  # min one tick, no division by zero


class TestBenchJson:
    def test_write_and_read_roundtrip(self, tmp_path):
        path = write_bench_json(
            "myexp", {"headline_seconds": 1.5, "rows": [1, 2]}, directory=tmp_path
        )
        assert path == bench_json_path("myexp", directory=tmp_path)
        assert path.endswith("BENCH_myexp.json")
        data = read_bench_json("myexp", directory=tmp_path)
        assert data["experiment"] == "myexp"
        assert data["headline_seconds"] == 1.5
        assert data["rows"] == [1, 2]
        assert data["query_cache"] is query_cache_enabled()

    def test_written_file_is_stable_json(self, tmp_path):
        write_bench_json("exp", {"b": 1, "a": 2}, directory=tmp_path)
        text = (tmp_path / "BENCH_exp.json").read_text()
        assert text.endswith("\n")
        assert json.loads(text) == json.loads(text)  # valid JSON
        assert text.index('"a"') < text.index('"b"')  # sorted keys → clean diffs

    def test_query_cache_env_toggle(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUERY_CACHE", raising=False)
        assert query_cache_enabled() is True
        monkeypatch.setenv("REPRO_QUERY_CACHE", "0")
        assert query_cache_enabled() is False
        index = build_index("vist", tiny_corpus())
        assert index.postings is None

    def test_build_index_cache_on_by_default(self):
        index = build_index("vist", tiny_corpus())
        assert index.postings is not None


class TestWorkloads:
    def test_table3_has_eight_queries(self):
        assert len(TABLE3_QUERIES) == 8
        assert [q.qid for q in TABLE3_QUERIES] == [f"Q{i}" for i in range(1, 9)]

    def test_datasets_split_as_in_paper(self):
        dblp = [q for q in TABLE3_QUERIES if q.dataset == "dblp"]
        xmark = [q for q in TABLE3_QUERIES if q.dataset == "xmark"]
        assert len(dblp) == 5 and len(xmark) == 3

    def test_all_queries_parse(self):
        for query in TABLE3_QUERIES:
            assert parse_xpath(query.xpath) is not None
