"""Sharded serving: routing, the embedded router, worker processes, and
the scatter-gather executor.

Layers covered, bottom up:

* :func:`repro.shard.routing.shard_of` stability and the derivable
  global<->local :class:`ShardMap` (append, route, recovery);
* :class:`ShardRouter` edge cases: empty shards, all-documents-one-shard
  skew, remove-then-readd id stability, reshard to fewer/more shards
  preserving every differential-oracle answer, crash-stale manifests;
* the frame protocol (roundtrip, truncation, error rehydration);
* :class:`ShardedExecutor` end-to-end over real worker processes:
  answers equal the embedded router's, per-shard failures are captured
  per outcome (not fatal), routed writes land where the router says;
* the cross-shard differential-oracle hammer: K client threads fan
  verified queries over every worker process while a writer interleaves
  adds/removes through the same executor; every answer must equal the
  single-directory reference and every shard must scrub clean after.

The worker-process tests spawn real interpreters; the small
configurations run in tier-1 and the full hammer sweep is ``slow``.
"""

from __future__ import annotations

import json
import random
import threading
import time
from zlib import crc32

import pytest

from repro.doc.model import XmlNode
from repro.errors import (
    IndexStateError,
    QueryBudgetExceededError,
    ShardError,
    ShardQueryError,
)
from repro.sequence.transform import SequenceEncoder
from repro.shard import (
    MANIFEST_FILE,
    ShardMap,
    ShardRouter,
    ShardedExecutor,
    is_sharded,
    reshard_db,
    shard_of,
)
from repro.shard.protocol import (
    FrameError,
    recv_frame,
    rehydrate_error,
    send_frame,
)
from repro.testing.generator import DocQueryGenerator
from repro.testing.invariants import assert_invariants
from repro.testing.reference import reference_results

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _doc(i: int, label: str = "a") -> XmlNode:
    root = XmlNode("r")
    root.element(label, text=f"v{i}")
    return root


def _all_to_shard(target: int):
    """A hash override that routes every document to one shard."""
    return lambda payload: target


# ---------------------------------------------------------------------------
# routing units


class TestShardOf:
    def test_stable_across_calls_and_orderings(self):
        first = [shard_of(g, 5) for g in range(200)]
        again = [shard_of(g, 5) for g in range(200)]
        assert first == again

    def test_matches_documented_rule(self):
        # the on-disk contract: crc32 of the 8-byte little-endian id
        for g in (0, 1, 7, 12345, 2**40):
            assert shard_of(g, 7) == crc32(g.to_bytes(8, "little")) % 7

    def test_spread_is_not_degenerate(self):
        counts = [0] * 4
        for g in range(400):
            counts[shard_of(g, 4)] += 1
        assert min(counts) > 0  # every shard gets something at this scale

    def test_single_shard_takes_all(self):
        assert {shard_of(g, 1) for g in range(50)} == {0}


class TestShardMap:
    def test_append_route_globals_roundtrip(self):
        m = ShardMap(3)
        placed = [m.append_next() for _ in range(30)]
        for g, s, local in placed:
            assert m.route(g) == (s, local)
            assert m.global_of(s, local) == g
        assert sum(m.shard_counts()) == 30

    def test_locals_are_dense_per_shard(self):
        m = ShardMap(4)
        for _ in range(40):
            m.append_next()
        for s in range(4):
            globals_ = m.globals_of(s)
            assert [m.route(g)[1] for g in globals_] == list(range(len(globals_)))

    def test_recover_replays_unaccounted_ids(self):
        live = ShardMap(3)
        for _ in range(20):
            live.append_next()
        bounds = list(live.shard_counts())
        stale = ShardMap(3, next_doc_id=12)  # manifest lagged the stores
        assert stale.recover(bounds) == 8
        assert stale.next_doc_id == 20
        assert list(stale.shard_counts()) == bounds

    def test_recover_rejects_unexplainable_drift(self):
        m = ShardMap(3, next_doc_id=10)
        bounds = list(m.shard_counts())
        bounds[0] -= 1  # a shard holding fewer slots than routed to it
        with pytest.raises(IndexStateError):
            ShardMap(3, next_doc_id=10).recover(bounds)


# ---------------------------------------------------------------------------
# embedded router


class TestShardRouter:
    def test_add_query_remove_roundtrip(self, tmp_path):
        with ShardRouter(tmp_path / "db", 3) as router:
            ids = [router.add(_doc(i)) for i in range(10)]
            assert ids == list(range(10))
            assert sorted(router.query("//a")) == ids
            router.remove(4)
            assert sorted(router.query("//a")) == [g for g in ids if g != 4]
            assert len(router) == 9

    def test_reopen_preserves_everything(self, tmp_path):
        with ShardRouter(tmp_path / "db", 3) as router:
            for i in range(8):
                router.add(_doc(i))
            router.remove(2)
        with ShardRouter(tmp_path / "db") as router:
            assert router.nshards == 3
            assert sorted(router.query("//a")) == [0, 1, 3, 4, 5, 6, 7]
            assert router.add(_doc(99)) == 8  # ids continue, never reused

    def test_empty_shard_is_fine(self, tmp_path):
        # more shards than documents: some shards never see a record but
        # queries, stats, and invariants must all work
        with ShardRouter(tmp_path / "db", 6) as router:
            ids = [router.add(_doc(i)) for i in range(3)]
            counts = router.map.shard_counts()
            assert 0 in counts
            assert sorted(router.query("//a")) == ids
            for shard in router.shards:
                assert_invariants(shard)
        with ShardRouter(tmp_path / "db") as router:
            assert sorted(router.query("//a")) == ids

    def test_all_docs_one_shard_skew(self, tmp_path):
        hash_fn = _all_to_shard(2)
        with ShardRouter(tmp_path / "db", 4, hash_fn=hash_fn) as router:
            ids = [router.add(_doc(i)) for i in range(12)]
            assert router.map.shard_counts() == [0, 0, 12, 0]
            assert sorted(router.query("//a")) == ids
            router.remove(5)
        with ShardRouter(tmp_path / "db", hash_fn=hash_fn) as router:
            assert sorted(router.query("//a")) == [g for g in ids if g != 5]

    def test_remove_then_readd_routing_stability(self, tmp_path):
        with ShardRouter(tmp_path / "db", 3) as router:
            ids = [router.add(_doc(i)) for i in range(9)]
            routes_before = {g: router.map.route(g) for g in ids}
            router.remove(3)
            router.remove(7)
            new_ids = [router.add(_doc(100 + i)) for i in range(2)]
            # fresh ids, never a reuse of the tombstoned ones
            assert new_ids == [9, 10]
            # and the surviving documents still route exactly as before
            for g in ids:
                assert router.map.route(g) == routes_before[g]
            expected = sorted(set(ids) - {3, 7}) + new_ids
            assert sorted(router.query("//a")) == expected
        with ShardRouter(tmp_path / "db") as router:
            assert sorted(router.query("//a")) == expected

    def test_query_nodes_maps_to_global_ids(self, tmp_path):
        with ShardRouter(tmp_path / "db", 3) as router:
            ids = [router.add(_doc(i)) for i in range(6)]
            nodes = router.query_nodes("//a")
            assert sorted(nodes) == ids
            assert all(positions for positions in nodes.values())

    def test_stale_manifest_is_recovered_on_open(self, tmp_path):
        dbdir = tmp_path / "db"
        with ShardRouter(dbdir, 3) as router:
            for i in range(10):
                router.add(_doc(i))
        # simulate the crash window: stores persisted, manifest lagging
        manifest = json.loads((dbdir / MANIFEST_FILE).read_text())
        manifest["next_doc_id"] = 4
        (dbdir / MANIFEST_FILE).write_text(json.dumps(manifest))
        with ShardRouter(dbdir) as router:
            assert router.map.next_doc_id == 10
            assert sorted(router.query("//a")) == list(range(10))
        # and the recovery was persisted
        assert json.loads((dbdir / MANIFEST_FILE).read_text())["next_doc_id"] == 10

    def test_nshards_mismatch_is_loud(self, tmp_path):
        with ShardRouter(tmp_path / "db", 3) as router:
            router.add(_doc(0))
        with pytest.raises(IndexStateError, match="reshard"):
            ShardRouter(tmp_path / "db", 5)

    def test_metrics_nest_per_shard(self, tmp_path):
        with ShardRouter(tmp_path / "db", 3) as router:
            for i in range(6):
                router.add(_doc(i))
            snapshot = router.metrics.snapshot()
            assert set(snapshot["shard"]) == {"0", "1", "2"}
            routing = snapshot["routing"]
            assert routing["nshards"] == 3
            assert sum(routing["routed"]) == 6


class _Oracle:
    """Seeded corpus + queries + single-process reference answers."""

    def __init__(self, seed: int, docs: int, queries: int) -> None:
        generator = DocQueryGenerator(seed)
        self.corpus = generator.corpus(docs, 12)
        self.queries = [generator.query(self.corpus) for _ in range(queries)]
        hasher = SequenceEncoder().hasher
        self.expected = [
            reference_results(self.corpus, query, hasher)
            for query in self.queries
        ]


class TestReshard:
    @pytest.mark.parametrize("new_nshards", [1, 2, 5])
    def test_reshard_preserves_oracle_answers(self, tmp_path, new_nshards):
        oracle = _Oracle(seed=7, docs=10, queries=8)
        dbdir = tmp_path / "db"
        with ShardRouter(dbdir, 3) as router:
            ids = router.add_all(oracle.corpus)
            router.remove(ids[4])  # a tombstone must survive the move
            before = [
                sorted(router.query(q, verify=True)) for q in oracle.queries
            ]
        report = reshard_db(dbdir, new_nshards)
        assert report["old_nshards"] == 3
        assert report["new_nshards"] == new_nshards
        assert report["documents"] == len(oracle.corpus) - 1
        assert report["tombstones"] == 1
        with ShardRouter(dbdir) as router:
            assert router.nshards == new_nshards
            after = [
                sorted(router.query(q, verify=True)) for q in oracle.queries
            ]
            assert after == before
            # global ids still advance from where the old layout stopped
            assert router.add(_doc(0)) == len(oracle.corpus)
            for shard in router.shards:
                assert_invariants(shard)

    def test_reshard_answers_match_reference(self, tmp_path):
        oracle = _Oracle(seed=13, docs=8, queries=6)
        dbdir = tmp_path / "db"
        with ShardRouter(dbdir, 2) as router:
            router.add_all(oracle.corpus)
        reshard_db(dbdir, 4)
        with ShardRouter(dbdir) as router:
            for query, want in zip(oracle.queries, oracle.expected):
                assert sorted(router.query(query, verify=True)) == want

    def test_reshard_leaves_no_scaffolding(self, tmp_path):
        dbdir = tmp_path / "db"
        with ShardRouter(dbdir, 2) as router:
            router.add_all([_doc(i) for i in range(6)])
        reshard_db(dbdir, 3)
        leftovers = {p.name for p in dbdir.iterdir()}
        assert "reshard.tmp" not in leftovers
        assert "reshard.old" not in leftovers
        assert is_sharded(dbdir)


# ---------------------------------------------------------------------------
# frame protocol


class _FakeSock:
    """Just enough socket for send_frame/recv_frame."""

    def __init__(self) -> None:
        self.buffer = b""
        self.pos = 0

    def sendall(self, data: bytes) -> None:
        self.buffer += data

    def recv(self, n: int) -> bytes:
        chunk = self.buffer[self.pos : self.pos + n]
        self.pos += len(chunk)
        return chunk


class TestProtocol:
    def test_roundtrip(self):
        sock = _FakeSock()
        send_frame(sock, {"op": "query", "xpath": "//a", "id": 7})
        send_frame(sock, "bare string")
        assert recv_frame(sock) == {"op": "query", "xpath": "//a", "id": 7}
        assert recv_frame(sock) == "bare string"
        assert recv_frame(sock) is None  # clean EOF

    def test_mid_frame_eof_is_an_error(self):
        sock = _FakeSock()
        send_frame(sock, {"op": "ping"})
        sock.buffer = sock.buffer[:-2]  # lose the tail of the payload
        with pytest.raises(FrameError):
            recv_frame(sock)

    def test_oversized_frame_rejected(self):
        sock = _FakeSock()
        sock.buffer = (64 * 1024 * 1024 + 1).to_bytes(4, "big")
        with pytest.raises(FrameError):
            recv_frame(sock)

    def test_rehydrate_known_error_class(self):
        exc = rehydrate_error({
            "error": "query exceeded its matcher-step budget (9 > 1)",
            "error_type": "QueryBudgetExceededError",
        })
        assert isinstance(exc, QueryBudgetExceededError)
        assert "matcher-step budget" in str(exc)

    def test_rehydrate_unknown_class_degrades_to_shard_error(self):
        exc = rehydrate_error({"error": "boom", "error_type": "WeirdError"})
        assert isinstance(exc, ShardError)
        assert "WeirdError" in str(exc)

    def test_rehydrate_never_builds_non_errors(self):
        # a hostile/buggy worker naming a non-exception type must not
        # make the client instantiate it
        exc = rehydrate_error({"error": "x", "error_type": "ShardMap"})
        assert isinstance(exc, ShardError)

    def test_frame_errors_are_protocol_errors(self):
        # the typed taxonomy: framing damage is ProtocolError (exit code
        # 7), never a raw ValueError/JSONDecodeError
        from repro.errors import ProtocolError, ReproError

        assert issubclass(FrameError, ProtocolError)
        assert issubclass(ProtocolError, ReproError)
        sock = _FakeSock()
        sock.buffer = (64 * 1024 * 1024 + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            recv_frame(sock)

    def test_undecodable_payload_is_typed(self):
        sock = _FakeSock()
        bad = b"\xff\xfe not json"
        sock.buffer = len(bad).to_bytes(4, "big") + bad
        with pytest.raises(FrameError, match="undecodable"):
            recv_frame(sock)

    def test_send_frame_unserialisable_payload_is_typed(self):
        sock = _FakeSock()
        circular: dict = {}
        circular["self"] = circular
        with pytest.raises(FrameError, match="JSON"):
            send_frame(sock, circular)
        # ...and nothing was half-written to the wire
        assert sock.buffer == b""

    def test_rehydrate_non_dict_response_degrades(self):
        for junk in (None, "boom", 7, ["err"]):
            exc = rehydrate_error(junk)
            assert isinstance(exc, ShardError)

    def test_rehydrate_missing_fields_degrades(self):
        exc = rehydrate_error({})
        assert isinstance(exc, ShardError)
        assert "unknown worker error" in str(exc)


# ---------------------------------------------------------------------------
# worker processes + scatter-gather executor


@pytest.fixture
def sharded_db(tmp_path):
    dbdir = tmp_path / "db"
    with ShardRouter(dbdir, 3) as router:
        ids = [router.add(_doc(i)) for i in range(9)]
    return dbdir, ids


class TestShardedExecutor:
    def test_answers_match_embedded_router(self, sharded_db):
        dbdir, ids = sharded_db
        with ShardedExecutor(dbdir) as executor:
            outcome = executor.submit("//a").result(30)
        assert outcome.ok
        assert outcome.result == ids

    def test_batch_preserves_submission_order(self, sharded_db):
        dbdir, ids = sharded_db
        with ShardedExecutor(dbdir) as executor:
            outcomes = executor.run(["//a"] * 8)
        assert [o.position for o in outcomes] == list(range(8))
        assert all(o.result == ids for o in outcomes)

    def test_workers_mismatch_is_loud(self, sharded_db):
        dbdir, _ = sharded_db
        with pytest.raises(ShardError, match="reshard"):
            ShardedExecutor(dbdir, workers=5)

    def test_guard_errors_are_captured_not_fatal(self, sharded_db):
        dbdir, ids = sharded_db
        with ShardedExecutor(dbdir, guard_spec={"max_steps": 1}) as executor:
            outcome = executor.submit("//a").result(30)
            assert not outcome.ok
            assert isinstance(outcome.error, ShardQueryError)
            assert all(
                isinstance(cause, QueryBudgetExceededError)
                for cause in outcome.error.shard_errors.values()
            )
            # the executor survives: an unguarded submission still answers
            ok = executor.submit("//a", verify=True).result(30)
            assert ok.error is not None  # guard_spec applies executor-wide
        with ShardedExecutor(dbdir) as executor:
            assert executor.submit("//a").result(30).result == ids

    def test_routed_writes_land_and_persist(self, sharded_db):
        dbdir, ids = sharded_db
        with ShardedExecutor(dbdir) as executor:
            new_id = executor.add(_doc(100, label="b"))
            assert new_id == len(ids)
            executor.remove(ids[2])
            outcome = executor.submit("//a").result(30)
            assert outcome.result == [g for g in ids if g != ids[2]]
            assert executor.submit("//b").result(30).result == [new_id]
        # the embedded view agrees after the workers are gone
        with ShardRouter(dbdir) as router:
            assert sorted(router.query("//b")) == [new_id]
            assert sorted(router.query("//a")) == [g for g in ids if g != ids[2]]

    def test_stats_carry_per_shard_snapshots(self, sharded_db):
        dbdir, ids = sharded_db
        with ShardedExecutor(dbdir) as executor:
            executor.submit("//a").result(30)
            stats = executor.stats()
        assert set(stats["shard"]) == {"0", "1", "2"}
        assert stats["routing"]["next_doc_id"] == len(ids)
        assert all(isinstance(s, dict) for s in stats["shard"].values())

    def test_closed_executor_refuses_submissions(self, sharded_db):
        dbdir, _ = sharded_db
        executor = ShardedExecutor(dbdir)
        executor.close()
        with pytest.raises(ShardError):
            executor.submit("//a")


# ---------------------------------------------------------------------------
# the cross-shard differential-oracle hammer


def _noise_doc(i: int) -> XmlNode:
    # labels disjoint from DocQueryGenerator's alphabet, as in the
    # thread-hammer: wildcard hits are filtered by the seeded projection
    root = XmlNode("z1")
    root.element("z2", text=f"n{i}")
    return root


def _run_cross_shard_hammer(
    tmp_path, *, seed, docs, nshards, client_threads, submissions, writer_ops
):
    """K client threads of verified scatter-gather vs the reference."""
    from repro.repair import scrub_db
    from repro.testing.invariants import check_index

    oracle = _Oracle(seed, docs, 10)
    dbdir = tmp_path / "db"
    with ShardRouter(dbdir, nshards) as router:
        seeded_ids = set(router.add_all(oracle.corpus))

    workload = [
        oracle.queries[i % len(oracle.queries)] for i in range(submissions)
    ]
    outcomes: dict[int, object] = {}
    outcomes_lock = threading.Lock()
    noise_live: list[int] = []
    errors: list[BaseException] = []

    with ShardedExecutor(dbdir, verify=True) as executor:

        def client(offset: int) -> None:
            try:
                for pos in range(offset, len(workload), client_threads):
                    outcome = executor.submit(
                        workload[pos].to_xpath(), position=pos
                    ).result(60)
                    with outcomes_lock:
                        outcomes[pos] = outcome
            except BaseException as exc:  # noqa: BLE001 - asserted below
                errors.append(exc)

        def writer() -> None:
            try:
                rng = random.Random(seed + 1)
                for i in range(writer_ops):
                    noise_live.append(executor.add(_noise_doc(i)))
                    if len(noise_live) > 2 and rng.random() < 0.4:
                        executor.remove(noise_live.pop(0))
                    time.sleep(0.001)
            except BaseException as exc:  # noqa: BLE001 - asserted below
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(k,))
            for k in range(client_threads)
        ] + [threading.Thread(target=writer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
            assert not thread.is_alive(), "hammer thread hung"
        assert not errors, f"hammer thread failed: {errors[0]!r}"

        assert len(outcomes) == len(workload)
        for pos, outcome in sorted(outcomes.items()):
            assert outcome.ok, (
                f"query #{pos} {workload[pos].to_xpath()!r} "
                f"raised: {outcome.error!r}"
            )
            got = sorted(g for g in outcome.result if g in seeded_ids)
            want = oracle.expected[pos % len(oracle.queries)]
            assert got == want, (
                f"query #{pos} {workload[pos].to_xpath()!r}: "
                f"scatter-gather={got} reference={want}"
            )

        # surviving noise documents are really indexed, cross-shard
        live = executor.submit("/z1").result(60)
        assert live.ok and live.result == sorted(noise_live)

    # afterwards: `repro check`/`scrub` semantics hold on every shard
    with ShardRouter(dbdir) as router:
        assert sorted(router.query("/z1")) == sorted(noise_live)
        for k, shard in enumerate(router.shards):
            for report in check_index(shard):
                assert report.ok, f"shard {k}: {report.summary()}"
    report = scrub_db(dbdir)
    assert report.ok, report.summary()


def test_cross_shard_hammer_first_config(tmp_path):
    """Tier-1 hammer: 3 shards, 3 client threads, interleaved writer."""
    _run_cross_shard_hammer(
        tmp_path,
        seed=21,
        docs=8,
        nshards=3,
        client_threads=3,
        submissions=24,
        writer_ops=15,
    )


@pytest.mark.slow
@pytest.mark.parametrize(
    "seed,nshards,client_threads,submissions,writer_ops",
    [
        (22, 2, 4, 60, 40),
        (23, 4, 4, 60, 40),
        (24, 5, 8, 90, 60),
    ],
)
def test_cross_shard_hammer_sweep(
    tmp_path, seed, nshards, client_threads, submissions, writer_ops
):
    _run_cross_shard_hammer(
        tmp_path,
        seed=seed,
        docs=12,
        nshards=nshards,
        client_threads=client_threads,
        submissions=submissions,
        writer_ops=writer_ops,
    )
