"""Tests for the three dataset generators."""

import pytest

from repro.datasets.dblp import MAIER_KEY, DblpConfig, DblpGenerator
from repro.datasets.synthetic import SyntheticConfig, SyntheticGenerator
from repro.datasets.xmark import TARGET_DATE, XmarkConfig, XmarkGenerator
from repro.doc.model import XmlDocument
from repro.errors import DatasetError
from repro.index.vist import VistIndex
from repro.sequence.transform import SequenceEncoder


class TestSynthetic:
    def test_document_size(self):
        gen = SyntheticGenerator(SyntheticConfig(doc_size=30, seed=1))
        doc = gen.document()
        assert doc.size() == 30

    def test_height_bound(self):
        gen = SyntheticGenerator(SyntheticConfig(height=3, fanout=2, doc_size=7, seed=1))
        for doc in gen.documents(20):
            assert doc.depth() <= 3

    def test_fanout_bound(self):
        gen = SyntheticGenerator(SyntheticConfig(height=4, fanout=2, doc_size=10, seed=3))
        for doc in gen.documents(20):
            for node in doc.preorder():
                assert len(node.children) <= 2

    def test_labels_are_child_positions(self):
        gen = SyntheticGenerator(SyntheticConfig(fanout=3, seed=5))
        doc = gen.document()
        for node in doc.preorder():
            if node.label != "r":
                assert node.label in {"e0", "e1", "e2"}

    def test_reproducible_with_seed(self):
        a = SyntheticGenerator(SyntheticConfig(seed=9)).document()
        b = SyntheticGenerator(SyntheticConfig(seed=9)).document()
        assert a == b

    def test_statistics_collected(self):
        gen = SyntheticGenerator(SyntheticConfig(doc_size=20, seed=2))
        list(gen.documents(10))
        assert gen.stats.documents == 10
        assert gen.stats.expected_fanout("r") > 0

    def test_queries_are_subtrees(self):
        gen = SyntheticGenerator(SyntheticConfig(seed=4))
        query = gen.query(size=5)
        count = sum(1 for _ in query.preorder())
        assert count == 5
        assert query.label == "r"

    def test_sequence_length_matches_doc_size(self):
        gen = SyntheticGenerator(SyntheticConfig(doc_size=30, seed=6))
        encoder = SequenceEncoder()
        seq = encoder.encode_node(gen.document())
        assert len(seq) == 30  # structural nodes only, no values

    def test_invalid_configs(self):
        with pytest.raises(DatasetError):
            SyntheticConfig(height=0)
        with pytest.raises(DatasetError):
            SyntheticConfig(fanout=0)
        with pytest.raises(DatasetError):
            SyntheticConfig(height=2, fanout=2, doc_size=100)

    def test_some_queries_match_indexed_documents(self):
        cfg = SyntheticConfig(height=4, fanout=3, doc_size=12, seed=11)
        gen = SyntheticGenerator(cfg)
        index = VistIndex(SequenceEncoder())
        for doc in gen.documents(50):
            index.add(doc)
        hits = sum(
            1 for q in gen.queries(20, size=3) if index.query(q)
        )
        assert hits > 0


class TestDblp:
    def test_record_shape(self):
        gen = DblpGenerator(DblpConfig(seed=1))
        records = list(gen.records(50))
        assert len(records) == 50
        for record in records:
            assert record.label in {
                "article", "inproceedings", "book", "incollection", "phdthesis"
            }
            assert "key" in record.attributes
            labels = {c.label for c in record.children}
            assert "author" in labels and "title" in labels and "year" in labels

    def test_maier_book_planted(self):
        gen = DblpGenerator(DblpConfig(seed=1))
        first = next(iter(gen.records(5)))
        assert first.attributes["key"] == MAIER_KEY

    def test_no_planting_when_disabled(self):
        gen = DblpGenerator(DblpConfig(seed=1, plant_targets=False))
        keys = [r.attributes["key"] for r in gen.records(20)]
        assert MAIER_KEY not in keys

    def test_depth_at_most_6(self):
        gen = DblpGenerator(DblpConfig(seed=2))
        for record in gen.records(50):
            assert XmlDocument(record).root.expanded().depth() <= 6

    def test_average_sequence_length_near_paper(self):
        """DBLP sequences average ≈ 31 items in the paper; stay in range."""
        gen = DblpGenerator(DblpConfig(seed=3))
        encoder = SequenceEncoder(schema=gen.schema)
        lengths = [len(encoder.encode_node(r)) for r in gen.records(200)]
        mean = sum(lengths) / len(lengths)
        assert 10 <= mean <= 40

    def test_david_rate_controls_selectivity(self):
        low = DblpGenerator(DblpConfig(seed=4, david_rate=0.0, plant_targets=False))
        authors = [
            c.text
            for r in low.records(100)
            for c in r.children
            if c.label == "author"
        ]
        assert "David" not in authors

    def test_table3_queries_have_answers(self):
        gen = DblpGenerator(DblpConfig(seed=5, david_rate=0.05))
        index = VistIndex(SequenceEncoder(schema=gen.schema))
        for record in gen.records(150):
            index.add(record)
        assert index.query("/inproceedings/title")
        assert index.query("/book/author[text='David']")
        assert index.query("/*/author[text='David']")
        assert index.query("//author[text='David']")
        assert index.query(f"/book[key='{MAIER_KEY}']/author") == [0]


class TestXmark:
    def test_record_kinds(self):
        gen = XmarkGenerator(XmarkConfig(seed=1))
        kinds = set()
        for record in gen.records(80):
            assert record.label == "site"
            node = record
            while node.children:
                node = node.children[0]
                kinds.add(node.label)
        assert {"item", "person", "open_auction", "closed_auction"} <= kinds

    def test_single_kind(self):
        gen = XmarkGenerator(XmarkConfig(seed=2))
        for record in gen.records(20, kind="item"):
            assert any(True for _ in record.find_all("item"))

    def test_unknown_kind(self):
        gen = XmarkGenerator()
        with pytest.raises(DatasetError):
            gen.record("widget", 0)

    def test_table3_queries_have_answers(self):
        cfg = XmarkConfig(
            seed=3, us_rate=0.5, target_date_rate=0.3, pocatello_rate=0.3,
            person1_rate=0.3,
        )
        gen = XmarkGenerator(cfg)
        index = VistIndex(SequenceEncoder(schema=gen.schema))
        for record in gen.records(300):
            index.add(record)
        q6 = index.query(
            f"/site//item[location='US']/mail/date[text='{TARGET_DATE}']"
        )
        q7 = index.query("/site//person/*/city[text='Pocatello']")
        q8 = index.query(
            f"//closed_auction[*[person='person1']]/date[text='{TARGET_DATE}']"
        )
        assert q6, "Q6 should have matches at these rates"
        assert q7, "Q7 should have matches at these rates"
        assert q8, "Q8 should have matches at these rates"

    def test_queries_agree_with_verification(self):
        gen = XmarkGenerator(XmarkConfig(seed=4, target_date_rate=0.3, person1_rate=0.2))
        index = VistIndex(SequenceEncoder(schema=gen.schema))
        for record in gen.records(150):
            index.add(record)
        for expr in [
            f"/site//item[location='US']/mail/date[text='{TARGET_DATE}']",
            "/site//person/*/city[text='Pocatello']",
        ]:
            raw = index.query(expr)
            verified = index.query(expr, verify=True)
            assert set(verified) <= set(raw)
            assert verified == index.query(expr, verify=True)
