"""Query guards, degraded mode, transient-I/O retry, cache hygiene.

:class:`~repro.index.guard.QueryGuard` must interrupt evaluation on a
wall-clock deadline, a matcher-step budget, a page-read budget, or a
cooperative cancel — on every index type that threads it through.  The
degraded-mode contract is exercised directly (a corrupt page mid-match
flips health to read-suspect and the answer still comes back correct,
via the docstore).  :class:`~repro.testing.faults.FlakyFilePager` proves
transient read faults are retried invisibly while persistent ones
escape loudly, and the BufferPool test pins the rule that a frame
failing its checksum is never cached.
"""

from __future__ import annotations

import time

import pytest

from repro.doc.parser import parse_document
from repro.errors import (
    CorruptPageError,
    QueryBudgetExceededError,
    QueryCancelledError,
    QueryTimeoutError,
    TransientIOError,
)
from repro.index.guard import IndexHealth, QueryGuard
from repro.index.naive import NaiveIndex
from repro.index.rist import RistIndex
from repro.index.vist import VistIndex
from repro.storage.cache import BufferPool
from repro.storage.docstore import FileDocStore
from repro.storage.pager import FilePager, page_offset
from repro.testing.faults import FlakyFilePager


def _small_index(cls=VistIndex, **kwargs):
    index = cls(**kwargs)
    for i in range(6):
        index.add(
            parse_document(
                f"<site><item><location>US</location>"
                f"<name>v{i}</name></item></site>"
            )
        )
    return index


# ---------------------------------------------------------------------------
# QueryGuard unit behaviour


class TestQueryGuard:
    def test_unlimited_guard_is_inert(self):
        guard = QueryGuard().start()
        for _ in range(1000):
            guard.step()
        assert guard.steps == 1000

    def test_deadline(self):
        guard = QueryGuard(deadline_ms=5).start()
        time.sleep(0.02)
        with pytest.raises(QueryTimeoutError) as exc:
            guard.step()
        assert exc.value.deadline_ms == 5
        assert exc.value.elapsed_ms >= 5

    def test_step_budget(self):
        guard = QueryGuard(max_steps=3).start()
        guard.step(3)
        with pytest.raises(QueryBudgetExceededError) as exc:
            guard.step()
        assert exc.value.resource == "matcher-step"
        assert exc.value.limit == 3

    def test_page_budget_uses_counter_delta(self):
        reads = [100]  # counter starts non-zero: only the delta counts
        guard = QueryGuard(max_page_reads=2).start(lambda: reads[0])
        reads[0] += 2
        guard.check()
        reads[0] += 1
        with pytest.raises(QueryBudgetExceededError) as exc:
            guard.check()
        assert exc.value.resource == "page-read"
        assert guard.page_reads == 3

    def test_cancel(self):
        guard = QueryGuard().start()
        guard.step()
        guard.cancel()
        with pytest.raises(QueryCancelledError):
            guard.step()
        assert guard.cancelled

    def test_lazy_deadline_start_preserves_step_budget(self):
        """Regression: ``check()``'s lazy clock start used to call
        ``start()``, which wiped ``steps`` already counted — the first
        deadline tick silently re-armed the step budget."""
        guard = QueryGuard(deadline_ms=60_000, max_steps=3)
        guard.step(2)  # ticks before anything started the clock
        assert guard.steps == 2
        with pytest.raises(QueryBudgetExceededError) as exc:
            guard.step(2)
        assert exc.value.limit == 3 and exc.value.used == 4

    def test_cancelled_guard_does_not_poison_the_next_query(self):
        """Regression: a pending ``cancel()`` used to survive into the
        next ``start()``, so a guard cancelled once was cancelled forever
        and the following (innocent) query died immediately."""
        guard = QueryGuard().start()
        guard.cancel()
        with pytest.raises(QueryCancelledError):
            guard.step()
        guard.start()  # next query reuses the guard
        guard.step(100)  # must not raise
        assert not guard.cancelled
        assert guard.steps == 100

    def test_reset_clears_lazily_armed_clock_and_cancellation(self):
        """``reset()`` returns the guard to its pristine state, including
        a ``_t0`` armed lazily by ``check()`` before any ``start()``."""
        guard = QueryGuard(deadline_ms=60_000, max_steps=5)
        guard.step(2)  # check() lazily arms the deadline clock
        assert guard._t0 is not None
        guard.cancel()
        guard.reset()
        assert guard._t0 is None
        assert guard.steps == 0
        assert not guard.cancelled
        guard.step(5)  # the full step budget is available again
        with pytest.raises(QueryBudgetExceededError):
            guard.step()

    def test_cross_thread_cancel_hits_query_in_flight(self):
        """The executor contract: cancel() from another thread kills the
        query at its next tick, and only that query."""
        import threading

        guard = QueryGuard().start()
        ticking = threading.Event()

        def victim():
            while True:
                guard.step()
                ticking.set()

        errors: list[BaseException] = []

        def run():
            try:
                victim()
            except BaseException as exc:
                errors.append(exc)

        thread = threading.Thread(target=run)
        thread.start()
        assert ticking.wait(10)
        guard.cancel()
        thread.join(10)
        assert not thread.is_alive()
        assert isinstance(errors[0], QueryCancelledError)
        guard.start()  # and the guard is reusable afterwards
        guard.step()

    def test_lazy_deadline_start_preserves_page_counter(self):
        """Same regression, page-read side: an explicit ``start()`` with a
        counter followed by a deadline check must not detach the counter."""
        reads = [0]
        guard = QueryGuard(deadline_ms=60_000, max_page_reads=1)
        guard.start(lambda: reads[0])
        guard._t0 = None  # simulate the pre-start checked state
        reads[0] += 2
        with pytest.raises(QueryBudgetExceededError) as exc:
            guard.check()
        assert exc.value.resource == "page-read"
        assert guard.page_reads == 2


# ---------------------------------------------------------------------------
# guard threading through the indexes


@pytest.mark.parametrize("cls", [VistIndex, RistIndex, NaiveIndex])
def test_step_budget_interrupts_matching(cls):
    index = _small_index(cls)
    assert index.query("/site//item[location='US']") == list(range(6))
    with pytest.raises(QueryBudgetExceededError):
        index.query("/site//item[location='US']", guard=QueryGuard(max_steps=1))


def test_zero_deadline_times_out():
    index = _small_index()
    with pytest.raises(QueryTimeoutError):
        index.query("/site//item", guard=QueryGuard(deadline_ms=0))


def test_pathological_wildcard_fails_fast():
    """A deep // query on a deep document dies at the deadline, not at
    the end of the exponential sweep — the CI corruption job runs the
    same scenario through the CLI."""
    index = VistIndex()
    xml = "<a>" * 60 + "x" + "</a>" * 60
    for _ in range(4):
        index.add(parse_document(xml))
    query = "/" + "/".join(["a"] * 3) + "//a//a//a//a"
    t0 = time.monotonic()
    with pytest.raises((QueryTimeoutError, QueryBudgetExceededError)):
        index.query(query, guard=QueryGuard(deadline_ms=100, max_steps=2_000_000))
    assert time.monotonic() - t0 < 2.0


def test_page_read_budget_on_disk_index(tmp_path):
    index = _small_index(
        VistIndex,
        pager=FilePager(tmp_path / "v.db"),
        docstore=FileDocStore(tmp_path / "d.dat"),
    )
    assert index.query("/site//item[location='US']") == list(range(6))
    index.flush()
    index.close()
    index.docstore.close()
    # reopen cold: the in-memory tree caches are empty, so matching must
    # actually read pages and the budget has something to count
    reopened = VistIndex(
        pager=FilePager(tmp_path / "v.db"),
        docstore=FileDocStore(tmp_path / "d.dat"),
    )
    try:
        with pytest.raises(QueryBudgetExceededError) as exc:
            reopened.query(
                "/site//item[location='US']", guard=QueryGuard(max_page_reads=0)
            )
        assert exc.value.resource == "page-read"
    finally:
        reopened.close()
        reopened.docstore.close()


def test_all_wildcard_query_respects_guard():
    index = _small_index()
    with pytest.raises(QueryBudgetExceededError):
        index.query("/*", guard=QueryGuard(max_steps=2))


# ---------------------------------------------------------------------------
# degraded mode


def _corrupt_page(path, page_id, page_size):
    with open(path, "r+b") as fh:
        offset = page_offset(page_id, page_size) + 64
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))


def test_corruption_mid_query_degrades_and_stays_correct(tmp_path):
    index = _small_index(
        VistIndex,
        pager=FilePager(tmp_path / "v.db"),
        docstore=FileDocStore(tmp_path / "d.dat"),
    )
    expected = index.query("/site//item[location='US']", verify=True)
    index.flush()
    index.close()
    index.docstore.close()

    npages = (tmp_path / "v.db").stat().st_size // page_offset(1, 4096)
    degraded_seen = False
    for page_id in range(1, npages):
        for name in ("v.db", "d.dat"):
            dst = tmp_path / f"p{page_id}-{name}"
            dst.write_bytes((tmp_path / name).read_bytes())
        _corrupt_page(tmp_path / f"p{page_id}-v.db", page_id, 4096)
        try:
            reopened = VistIndex(
                pager=FilePager(tmp_path / f"p{page_id}-v.db"),
                docstore=FileDocStore(tmp_path / f"p{page_id}-d.dat"),
            )
        except CorruptPageError:
            continue  # the open itself read the bad page: loud, allowed
        try:
            got = reopened.query("/site//item[location='US']", verify=True)
        except CorruptPageError:
            continue  # loud failure: allowed (e.g. docstore-less verify path)
        finally:
            reopened.close()
            reopened.docstore.close()
        assert got == expected
        if not reopened.health.ok:
            degraded_seen = True
            assert reopened.health.status == "read-suspect"
            assert reopened.health.degraded_queries == 1
            assert reopened.health.events
            assert "checksum mismatch" in reopened.health.events[0].detail
    assert degraded_seen


def test_degraded_fallback_can_be_disabled(tmp_path):
    index = _small_index(
        VistIndex,
        pager=FilePager(tmp_path / "v.db"),
        docstore=FileDocStore(tmp_path / "d.dat"),
    )
    index.flush()
    index.close()
    index.docstore.close()
    npages = (tmp_path / "v.db").stat().st_size // page_offset(1, 4096)
    _corrupt_page(tmp_path / "v.db", npages - 1, 4096)
    reopened = VistIndex(
        pager=FilePager(tmp_path / "v.db"),
        docstore=FileDocStore(tmp_path / "d.dat"),
    )
    reopened.degraded_fallback = False
    with pytest.raises(CorruptPageError):
        # touch every page: some query path must hit the corrupt one
        reopened.query("/site//item[location='US']", verify=True)
    assert reopened.health.ok  # no fallback -> no degraded bookkeeping


def test_health_report_shape():
    health = IndexHealth()
    assert health.ok and health.report()["status"] == "ok"
    health.record_corruption(ValueError("boom"))
    report = health.report()
    assert report["status"] == "read-suspect"
    assert report["events"] == [{"kind": "ValueError", "detail": "boom"}]
    assert report["dropped_events"] == 0
    assert "read-suspect" in health.summary()


def test_health_counts_events_dropped_past_the_cap():
    """Sustained corruption keeps the report bounded but not silently so:
    events past ``_MAX_EVENTS`` are counted, reported, and summarised."""
    health = IndexHealth()
    for i in range(40):
        health.record_corruption(ValueError(f"e{i}"))
    assert len(health.events) == IndexHealth._MAX_EVENTS == 32
    assert health.dropped_events == 8
    assert health.report()["dropped_events"] == 8
    summary = health.summary()
    assert "40 corruption event(s)" in summary
    assert "8 more event(s) not retained" in summary


# ---------------------------------------------------------------------------
# transient-I/O retry


class TestFlakyReads:
    def _make_file(self, tmp_path):
        pager = FilePager(tmp_path / "flaky.db")
        pid = pager.allocate()
        pager.write(pid, b"z" * pager.page_size)
        pager.sync()
        pager.close()
        return pid

    def test_transient_faults_are_retried_invisibly(self, tmp_path):
        pid = self._make_file(tmp_path)
        pager = FlakyFilePager(tmp_path / "flaky.db", fail_reads=2)
        try:
            assert pager.read(pid) == b"z" * pager.page_size
            assert pager.fault_count == 2
        finally:
            pager.close()

    def test_persistent_fault_escapes_after_retries(self, tmp_path):
        pid = self._make_file(tmp_path)
        pager = FlakyFilePager(tmp_path / "flaky.db", fail_reads=1, persistent=True)
        try:
            with pytest.raises(TransientIOError):
                pager.read(pid)
            assert pager.fault_count == 3  # io_attempts exhausted
        finally:
            pager.close()


# ---------------------------------------------------------------------------
# buffer pool hygiene


def test_buffer_pool_never_caches_corrupt_frame(tmp_path):
    base = FilePager(tmp_path / "pool.db")
    pid = base.allocate()
    base.write(pid, b"q" * base.page_size)
    base.sync()
    base.close()

    _corrupt_page(tmp_path / "pool.db", pid, 4096)
    base = FilePager(tmp_path / "pool.db")
    pool = BufferPool(base, capacity=8)
    with pytest.raises(CorruptPageError):
        pool.read(pid)
    assert pid not in pool._pages  # the bad frame was not installed

    # heal the underlying file; an honest miss must now succeed, which it
    # could not if the corrupt (or a negative) frame had been cached
    with open(tmp_path / "pool.db", "r+b") as fh:
        offset = page_offset(pid, 4096) + 64
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))
    assert pool.read(pid) == b"q" * base.page_size
    pool.close()
