"""Bulk ingest: batch/incremental equivalence, CLI `repro ingest`, datasets.

The differential oracle here is the whole contract: a corpus ingested
through ``add_batch`` (any batch size, any durability mode) must be
indistinguishable — same doc ids, same query answers — from the same
corpus fed through a loop of per-document ``add`` calls.
"""

import pytest

from repro.cli import main, open_index
from repro.datasets.dblp import (
    RECORD_LABELS as DBLP_LABELS,
    DblpConfig,
    DblpGenerator,
    write_corpus,
)
from repro.datasets.xmark import XmarkGenerator
from repro.doc import iter_stream_records
from repro.errors import IndexStateError
from repro.index.vist import VistIndex
from repro.sequence.transform import SequenceEncoder
from repro.storage.docstore import MemoryDocStore

QUERIES = [
    "//book",
    "//article",
    "//book[author='David Maier']",
    "//phdthesis/year",
    "//author",
]


def _records(count=60, seed=3):
    return list(DblpGenerator(DblpConfig(seed=seed)).records(count))


def _memory_index():
    return VistIndex(
        SequenceEncoder(schema=None),
        docstore=MemoryDocStore(),
        source_store=MemoryDocStore(),
    )


def _answers(index):
    return {q: sorted(index.query(q)) for q in QUERIES}


class TestBatchEquivalence:
    def test_add_batch_matches_per_document_add(self):
        records = _records()
        a = _memory_index()
        ids_a = [a.add(r) for r in records]
        for batch_size in (1, 7, 1000):
            b = _memory_index()
            ids_b = b.add_batch(records, batch_size=batch_size)
            assert ids_b == ids_a
            assert _answers(b) == _answers(a)

    def test_add_all_routes_through_batch(self):
        records = _records(30)
        a = _memory_index()
        ids_a = [a.add(r) for r in records]
        b = _memory_index()
        ids_b = b.add_all(records)
        assert ids_b == ids_a
        assert _answers(b) == _answers(a)

    def test_durability_none_defers_commit(self):
        index = _memory_index()
        ids = index.add_batch(_records(10), batch_size=3, durability="none")
        assert ids == list(range(10))
        assert len(index) == 10

    def test_batch_accepts_lazy_iterators(self):
        index = _memory_index()
        ids = index.add_batch(
            DblpGenerator(DblpConfig(seed=5)).records(25), batch_size=8
        )
        assert ids == list(range(25))

    def test_incremental_batches_extend(self):
        records = _records(20)
        a = _memory_index()
        a.add_batch(records, batch_size=6)
        b = _memory_index()
        b.add_batch(records[:11], batch_size=6)
        b.add_batch(records[11:], batch_size=6)
        assert _answers(b) == _answers(a)

    def test_bad_arguments(self):
        index = _memory_index()
        with pytest.raises(IndexStateError):
            index.add_batch([], durability="eventually")
        with pytest.raises(IndexStateError):
            index.add_batch([], batch_size=0)


class TestStreamingOracle:
    def test_streamed_corpus_equals_in_memory_records(self, tmp_path):
        corpus = tmp_path / "dblp.xml"
        generator = DblpGenerator(DblpConfig(seed=9))
        count = generator.write_corpus(corpus, 40)
        assert count == 40
        a = _memory_index()
        a.add_batch(DblpGenerator(DblpConfig(seed=9)).records(40))
        b = _memory_index()
        ids = b.add_batch(
            iter_stream_records(corpus, list(DBLP_LABELS), keep_spine=False),
            batch_size=9,
        )
        assert ids == list(range(40))
        assert _answers(b) == _answers(a)


class TestIngestCommand:
    def _corpus(self, tmp_path, count=40, seed=2):
        corpus = tmp_path / "dblp.xml"
        write_corpus(corpus, count, DblpConfig(seed=seed))
        return corpus

    def test_ingest_matches_index_command(self, tmp_path, capsys):
        corpus = self._corpus(tmp_path)
        split = ",".join(DBLP_LABELS)
        assert main(["index", str(tmp_path / "a"), str(corpus), "--split", split]) == 0
        assert (
            main(
                [
                    "ingest",
                    str(tmp_path / "b"),
                    str(corpus),
                    "--split",
                    split,
                    "--batch-size",
                    "16",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ingested 40 record(s)" in out
        a = open_index(tmp_path / "a")
        b = open_index(tmp_path / "b")
        try:
            assert len(a) == len(b) == 40
            for q in QUERIES:
                assert sorted(a.query(q)) == sorted(b.query(q))
        finally:
            for idx in (a, b):
                idx.close()
                idx.docstore.close()
                idx.source_store.close()

    def test_ingest_then_query_cli(self, tmp_path, capsys):
        corpus = self._corpus(tmp_path)
        db = str(tmp_path / "db")
        split = ",".join(DBLP_LABELS)
        assert main(["ingest", db, str(corpus), "--split", split]) == 0
        capsys.readouterr()
        assert main(["query", db, "//book[author='David Maier']"]) == 0
        assert "1 match(es)" in capsys.readouterr().out
        assert main(["check", db]) == 0

    def test_ingest_sharded(self, tmp_path, capsys):
        corpus = self._corpus(tmp_path)
        split = ",".join(DBLP_LABELS)
        single = str(tmp_path / "single")
        sharded = str(tmp_path / "sharded")
        assert main(["ingest", single, str(corpus), "--split", split]) == 0
        assert (
            main(
                [
                    "ingest",
                    sharded,
                    str(corpus),
                    "--split",
                    split,
                    "--shards",
                    "3",
                    "--batch-size",
                    "11",
                ]
            )
            == 0
        )
        assert "3 shard(s)" in capsys.readouterr().out
        capsys.readouterr()
        for q in ("//book", "//article"):
            assert main(["query", single, q]) == 0
            single_out = capsys.readouterr().out
            assert main(["query", sharded, q]) == 0
            sharded_out = capsys.readouterr().out
            # global ids are assigned in stream order in both layouts,
            # so the answer sets must be identical (the render differs:
            # set for single-directory, sorted list for sharded)
            def ids_of(out):
                import re

                return sorted(int(x) for x in re.findall(r"\d+", out.split("): ")[1]))

            assert ids_of(single_out) == ids_of(sharded_out)

    def test_ingest_durability_none(self, tmp_path, capsys):
        corpus = self._corpus(tmp_path, count=15)
        db = str(tmp_path / "db")
        split = ",".join(DBLP_LABELS)
        assert (
            main(["ingest", db, str(corpus), "--split", split, "--durability", "none"])
            == 0
        )
        assert "ingested 15 record(s)" in capsys.readouterr().out
        assert main(["check", db]) == 0


class TestEncodingRegression:
    def test_index_honours_declared_encoding(self, tmp_path, capsys):
        # regression: cmd_index used read_text() (locale decoding) and
        # either crashed or mojibake'd non-UTF-8 corpora
        text = (
            '<?xml version="1.0" encoding="ISO-8859-1"?>\n'
            "<shop><item><name>café</name></item></shop>"
        )
        path = tmp_path / "latin1.xml"
        path.write_bytes(text.encode("latin-1"))
        db = str(tmp_path / "db")
        assert main(["index", db, str(path)]) == 0
        capsys.readouterr()
        assert main(["query", db, "//item[name='café']"]) == 0
        assert "1 match(es)" in capsys.readouterr().out


class TestDatasetWriters:
    def test_dblp_corpus_roundtrip(self, tmp_path):
        corpus = tmp_path / "dblp.xml"
        assert write_corpus(corpus, 25, DblpConfig(seed=1)) == 25
        head = corpus.read_text(encoding="utf-8")
        assert head.startswith('<?xml version="1.0" encoding="UTF-8"?>')
        records = list(
            iter_stream_records(corpus, list(DBLP_LABELS), keep_spine=False)
        )
        assert len(records) == 25
        assert records[0].attributes["key"] == "books/bc/MaierW88"

    def test_xmark_corpus_roundtrip(self, tmp_path):
        corpus = tmp_path / "xmark.xml"
        generator = XmarkGenerator()
        assert generator.write_corpus(corpus, 30) == 30
        records = list(iter_stream_records(corpus, ["site"], keep_spine=False))
        assert len(records) == 30
        assert all(r.label == "site" for r in records)
