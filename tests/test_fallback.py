"""Tests for the footnote-2 fallback: relax → raw match → verify."""

import pytest

from repro.doc.model import XmlNode
from repro.errors import TranslationError
from repro.index.naive import NaiveIndex
from repro.index.vist import VistIndex
from repro.query.translate import QueryTranslator, relax_query_tree
from repro.query.xpath import parse_xpath
from repro.sequence.transform import SequenceEncoder

# four same-label branches: 4! = 24 permutations > the cap below
WIDE_QUERY = "/A[B/C][B/D][B/E]/B/F"


def doc_with(*grandchildren: str) -> XmlNode:
    a = XmlNode("A")
    for label in grandchildren:
        a.element("B").element(label)
    return a


class TestRelaxQueryTree:
    def test_same_label_branches_collapse(self):
        root = parse_xpath(WIDE_QUERY)
        relaxed = relax_query_tree(root)
        b_children = [c for c in relaxed.children if c.label == "B"]
        assert len(b_children) == 1

    def test_largest_branch_survives(self):
        root = parse_xpath("/A[B/C/D/E]/B")  # first branch is deeper
        relaxed = relax_query_tree(root)
        (branch,) = relaxed.children
        assert branch.children  # the deep branch, not the bare /B

    def test_relaxation_preserves_values(self):
        root = parse_xpath("/A[text='v']/B[text='w']")
        relaxed = relax_query_tree(root)
        assert relaxed.value == "v"
        assert relaxed.children[0].value == "w"

    def test_wildcards_deduplicated(self):
        # wildcard-only siblings: the largest wildcard branch survives
        root = parse_xpath("/A[*[x]][*/y/z]")
        relaxed = relax_query_tree(root)
        stars = [c for c in relaxed.children if c.is_wildcard]
        assert len(stars) == 1
        assert len(relaxed.children) == 1

    def test_wildcard_branch_dropped_beside_concrete_sibling(self):
        """A wildcard branch may bind the same node as a concrete sibling
        (its items land *inside* the sibling's subtree in document
        order), so relaxation must drop it, not try to place it."""
        root = parse_xpath("/A[*[x]][*[y]]/B")
        relaxed = relax_query_tree(root)
        assert [c.label for c in relaxed.children] == ["B"]

    def test_relaxed_is_weaker(self):
        """Every doc matching the original matches the relaxed query."""
        from repro.index.verification import verify_document
        from repro.sequence.vocabulary import ValueHasher

        encoder = SequenceEncoder()
        original = parse_xpath(WIDE_QUERY)
        relaxed = relax_query_tree(original)
        hasher = ValueHasher()
        full = doc_with("C", "D", "E", "F")
        partial = doc_with("C", "D")
        for doc in (full, partial):
            seq = encoder.encode_node(doc)
            if verify_document(seq, original, hasher):
                assert verify_document(seq, relaxed, hasher)


class TestQueryFallback:
    def make_index(self) -> VistIndex:
        return VistIndex(SequenceEncoder(), max_alternatives=6)

    def test_translation_error_without_fallback(self):
        index = self.make_index()
        index.add(doc_with("C", "D", "E", "F"))
        with pytest.raises(TranslationError):
            index.query(WIDE_QUERY, fallback=False)

    def test_fallback_returns_exact_results(self):
        index = self.make_index()
        yes = index.add(doc_with("C", "D", "E", "F"))
        index.add(doc_with("C", "D", "E"))  # missing F
        index.add(doc_with("F"))
        assert index.query(WIDE_QUERY) == [yes]

    def test_fallback_matches_unconstrained_translator(self):
        """The fallback result equals what a translator with a huge cap
        plus verification would produce."""
        small = self.make_index()
        big = VistIndex(SequenceEncoder(), max_alternatives=1000)
        docs = [
            doc_with("C", "D", "E", "F"),
            doc_with("F", "E", "D", "C"),
            doc_with("C", "F"),
            doc_with("C", "D", "F"),
        ]
        for doc in docs:
            small.add(doc)
            big.add(doc)
        assert small.query(WIDE_QUERY) == big.query(WIDE_QUERY, verify=True)

    def test_fallback_applies_to_naive_index_too(self):
        index = NaiveIndex(SequenceEncoder(), max_alternatives=6)
        yes = index.add(doc_with("C", "D", "E", "F"))
        index.add(doc_with("C"))
        assert index.query(WIDE_QUERY) == [yes]

    def test_small_queries_unaffected(self):
        index = self.make_index()
        doc_id = index.add(doc_with("C", "D"))
        assert index.query("/A[B/C]/B/D") == [doc_id]
